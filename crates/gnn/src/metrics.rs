//! Evaluation metrics: classification accuracy (Fig. 3/5a/6a) and the
//! ROC-AUC score for link prediction (Fig. 4/5b/6b; the paper's ref [44]).

use lumos_tensor::nn::argmax_rows;
use lumos_tensor::Tensor;

/// Classification accuracy over masked rows: the predicted class is the
/// argmax of each logit row.
///
/// # Panics
/// Panics if lengths disagree or the mask selects nothing.
pub fn accuracy_masked(logits: &Tensor, labels: &[u32], mask: &[bool]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "row/label mismatch");
    assert_eq!(labels.len(), mask.len(), "label/mask mismatch");
    let preds = argmax_rows(logits);
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..labels.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] {
                correct += 1;
            }
        }
    }
    assert!(total > 0, "mask selects no rows");
    correct as f64 / total as f64
}

/// ROC-AUC via the rank statistic: the probability that a random positive
/// scores above a random negative, with ties counted half (equivalent to
/// the Mann–Whitney U).
///
/// # Panics
/// Panics if either class is empty or scores contain NaN.
pub fn roc_auc(pos_scores: &[f32], neg_scores: &[f32]) -> f64 {
    assert!(!pos_scores.is_empty(), "need positive examples");
    assert!(!neg_scores.is_empty(), "need negative examples");
    let mut all: Vec<(f32, bool)> = pos_scores
        .iter()
        .map(|&s| (s, true))
        .chain(neg_scores.iter().map(|&s| (s, false)))
        .collect();
    assert!(all.iter().all(|(s, _)| !s.is_nan()), "NaN score");
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    // Average ranks over tie groups.
    let n = all.len();
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        // 1-based average rank of the tie group [i, j].
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let np = pos_scores.len() as f64;
    let nn = neg_scores.len() as f64;
    (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_masked_rows_only() {
        let logits = Tensor::from_vec(3, 2, vec![2.0, 1.0, 0.0, 3.0, 5.0, -1.0]);
        let labels = vec![0u32, 1, 1];
        // Row 2 is wrong (pred 0, label 1) but masked out.
        let acc = accuracy_masked(&logits, &labels, &[true, true, false]);
        assert_eq!(acc, 1.0);
        let acc_all = accuracy_masked(&logits, &labels, &[true, true, true]);
        assert!((acc_all - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        assert_eq!(roc_auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
        assert_eq!(roc_auc(&[0.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(3);
        let pos: Vec<f32> = (0..4000).map(|_| rng.next_f32()).collect();
        let neg: Vec<f32> = (0..4000).map(|_| rng.next_f32()).collect();
        let auc = roc_auc(&pos, &neg);
        assert!((auc - 0.5).abs() < 0.03, "auc {auc}");
    }

    #[test]
    fn auc_handles_ties_as_half() {
        // All scores identical: AUC must be exactly 0.5.
        assert_eq!(roc_auc(&[1.0, 1.0, 1.0], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn auc_invariant_under_monotone_transform() {
        let pos = [0.1f32, 0.4, 0.35, 0.8];
        let neg = [0.05f32, 0.3, 0.2];
        let auc1 = roc_auc(&pos, &neg);
        let f = |x: f32| (5.0 * x).exp();
        let pos2: Vec<f32> = pos.iter().map(|&x| f(x)).collect();
        let neg2: Vec<f32> = neg.iter().map(|&x| f(x)).collect();
        let auc2 = roc_auc(&pos2, &neg2);
        assert!((auc1 - auc2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn auc_rejects_empty_class() {
        roc_auc(&[], &[1.0]);
    }
}
