//! GraphSAGE layer (Hamilton et al., the paper's ref [24]) — an extension
//! backbone beyond the paper's GCN/GAT evaluation.
//!
//! Mean-aggregator variant: `h'_v = W_self·h_v + W_neigh·mean h_u + b`.
//! The open-neighborhood mean is computed from the shared [`MessageGraph`]
//! by zeroing self-loop arcs, so the same batched tree structure drives all
//! three backbones.

use std::rc::Rc;

use lumos_common::rng::Xoshiro256pp;
use lumos_tensor::{ParamId, ParamStore, Tape, Tensor, VarId};

use crate::adj::MessageGraph;

/// A GraphSAGE layer with mean aggregation.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: ParamId,
    w_neigh: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl SageLayer {
    /// Registers the layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        Self {
            w_self: store.add(
                format!("{name}.w_self"),
                Tensor::glorot(in_dim, out_dim, rng),
            ),
            w_neigh: store.add(
                format!("{name}.w_neigh"),
                Tensor::glorot(in_dim, out_dim, rng),
            ),
            b: store.add(format!("{name}.bias"), Tensor::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Per-arc open-neighborhood mean coefficients: self-loop arcs get 0,
    /// others `1/(indeg(dst) − 1)` (the −1 discounts the self-loop the
    /// message graph always adds).
    fn mean_coefficients(mg: &MessageGraph) -> Rc<Vec<f32>> {
        let mut indeg = vec![0u32; mg.num_nodes];
        for &d in mg.dst.iter() {
            indeg[d as usize] += 1;
        }
        let coeff = mg
            .src
            .iter()
            .zip(mg.dst.iter())
            .map(|(&s, &d)| {
                let open = indeg[d as usize].saturating_sub(1);
                if s == d || open == 0 {
                    0.0
                } else {
                    1.0 / open as f32
                }
            })
            .collect();
        Rc::new(coeff)
    }

    /// One propagation step.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: VarId,
        mg: &MessageGraph,
    ) -> VarId {
        let w_self = tape.param(store, self.w_self);
        let w_neigh = tape.param(store, self.w_neigh);
        let b = tape.param(store, self.b);
        let self_term = tape.matmul(x, w_self);
        let xw = tape.matmul(x, w_neigh);
        let gathered = tape.gather_rows(xw, mg.src.clone());
        let averaged = tape.scale_rows(gathered, Self::mean_coefficients(mg));
        let agg = tape.scatter_add_rows(averaged, mg.dst.clone(), mg.num_nodes);
        let sum = tape.add(self_term, agg);
        tape.add_row_broadcast(sum, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_tensor::gradcheck::numeric_grad;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(321)
    }

    #[test]
    fn forward_shape_and_isolated_nodes() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = SageLayer::new(&mut store, "sage", 3, 2, &mut r);
        // Node 2 is isolated: its output must equal x·W_self + b.
        let mg = MessageGraph::from_undirected(3, &[(0, 1)]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(
            3,
            3,
            vec![0.1, 0.2, 0.3, -0.1, 0.5, 0.9, 1.0, -1.0, 0.5],
        ));
        let y = layer.forward(&mut tape, &store, x, &mg);
        assert_eq!(tape.value(y).dims(), (3, 2));
        // Hand-compute node 2: x2 · W_self (+ zero bias).
        let x2 = [1.0f32, -1.0, 0.5];
        let w = store.value(layer.w_self);
        for j in 0..2 {
            let expect: f32 = (0..3).map(|k| x2[k] * w.at(k, j)).sum();
            assert!((tape.value(y).at(2, j) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn neighborhood_mean_is_exact_on_a_star() {
        // Star 0-{1,2}: node 0's aggregate = mean of nodes 1 and 2.
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = SageLayer::new(&mut store, "sage", 1, 1, &mut r);
        // Make the transforms identities to read off the mean directly.
        store.get_mut(layer.w_self).value = Tensor::zeros(1, 1);
        store.get_mut(layer.w_neigh).value = Tensor::scalar(1.0);
        let mg = MessageGraph::from_undirected(3, &[(0, 1), (0, 2)]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(3, 1, vec![10.0, 2.0, 4.0]));
        let y = layer.forward(&mut tape, &store, x, &mg);
        assert!((tape.value(y).at(0, 0) - 3.0).abs() < 1e-6, "mean(2,4) = 3");
        assert!(
            (tape.value(y).at(1, 0) - 10.0).abs() < 1e-6,
            "mean(10) = 10"
        );
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = SageLayer::new(&mut store, "sage", 3, 2, &mut r);
        let mg = MessageGraph::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let x = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut r);
        let eval = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = layer.forward(&mut tape, store, xv, &mg);
            let s = tape.sigmoid(y);
            let l = tape.mean_all(s);
            tape.value(l).item()
        };
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, &store, xv, &mg);
        let s = tape.sigmoid(y);
        let l = tape.mean_all(s);
        let grads = tape.backward(l);
        store.zero_grad();
        tape.accumulate_param_grads(&grads, &mut store);
        for pid in [layer.w_self, layer.w_neigh, layer.b] {
            let numeric = numeric_grad(&mut store, pid, &eval, 1e-2);
            assert!(
                store.get(pid).grad.max_abs_diff(&numeric) < 5e-2,
                "param {} gradient mismatch",
                store.get(pid).name
            );
        }
    }
}
