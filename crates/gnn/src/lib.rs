//! `lumos-gnn` — hand-rolled graph neural network layers and training
//! utilities.
//!
//! Implements the two backbones of the paper's evaluation (§VIII-B): a GCN
//! layer with symmetric normalization and a multi-head GAT layer, stacked
//! into the 2-layer/16-dim encoder, plus the classification and link
//! decoders (§VI-C), loss functions, and the accuracy/ROC-AUC metrics of
//! Figures 3–6. Layers operate on a [`MessageGraph`](adj::MessageGraph)
//! edge-index, so they run unchanged on the global graph (baselines) and on
//! Lumos's batched virtual-node trees.

#![forbid(unsafe_code)]
pub mod adj;
pub mod decoder;
pub mod encoder;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod sage;

pub use adj::MessageGraph;
pub use decoder::{link_logits, LinearDecoder};
pub use encoder::{Backbone, EncoderConfig, GnnEncoder};
pub use layers::{GatLayer, GcnLayer, Layer};
pub use loss::{cross_entropy_masked, link_prediction_loss};
pub use metrics::{accuracy_masked, roc_auc};
pub use sage::SageLayer;
