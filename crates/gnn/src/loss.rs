//! Loss computation (§VI-C).
//!
//! Supervised: per-device cross-entropy on local labels (labels never leave
//! the device; the loss is aggregated). Unsupervised: the negative-sampling
//! link-prediction loss of Eq. 33 — neighbors should have proximate
//! embeddings, sampled non-neighbors distant ones.

use std::rc::Rc;

use lumos_tensor::{Tape, VarId};

/// Masked cross-entropy over class logits: softmax + NLL restricted to the
/// rows selected by `mask` (training vertices).
pub fn cross_entropy_masked(
    tape: &mut Tape,
    logits: VarId,
    targets: Rc<Vec<u32>>,
    mask: Rc<Vec<f32>>,
) -> VarId {
    let logp = tape.log_softmax_rows(logits);
    tape.nll_masked(logp, targets, mask)
}

/// Negative-sampling link loss (Eq. 33):
/// `L = −Σ log σ(h_u·h_v) − Σ log σ(−h_u·h_{v'})`, averaged. `pos_logits`
/// and `neg_logits` are `[P,1]` dot-product columns; the two BCE means are
/// combined weighted by their pair counts so the result equals the mean
/// over all pairs.
pub fn link_prediction_loss(tape: &mut Tape, pos_logits: VarId, neg_logits: VarId) -> VarId {
    let n_pos = tape.value(pos_logits).rows();
    let n_neg = tape.value(neg_logits).rows();
    assert!(n_pos > 0 && n_neg > 0, "need positive and negative pairs");
    let pos_targets = Rc::new(vec![1.0f32; n_pos]);
    let neg_targets = Rc::new(vec![0.0f32; n_neg]);
    let pos_loss = tape.bce_with_logits_mean(pos_logits, pos_targets);
    let neg_loss = tape.bce_with_logits_mean(neg_logits, neg_targets);
    let total = (n_pos + n_neg) as f32;
    let pos_scaled = tape.scale(pos_loss, n_pos as f32 / total);
    let neg_scaled = tape.scale(neg_loss, n_neg as f32 / total);
    tape.add(pos_scaled, neg_scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_tensor::Tensor;

    #[test]
    fn cross_entropy_prefers_correct_logits() {
        let targets = Rc::new(vec![0u32, 1]);
        let mask = Rc::new(vec![1.0f32, 1.0]);
        let mut tape = Tape::new();
        let good = tape.constant(Tensor::from_vec(2, 2, vec![5.0, -5.0, -5.0, 5.0]));
        let bad = tape.constant(Tensor::from_vec(2, 2, vec![-5.0, 5.0, 5.0, -5.0]));
        let lg = cross_entropy_masked(&mut tape, good, targets.clone(), mask.clone());
        let lb = cross_entropy_masked(&mut tape, bad, targets, mask);
        assert!(tape.value(lg).item() < 0.01);
        assert!(tape.value(lb).item() > 5.0);
    }

    #[test]
    fn mask_excludes_rows() {
        let targets = Rc::new(vec![0u32, 0]);
        // Only row 0 counts; row 1 has terrible logits but is masked out.
        let mask = Rc::new(vec![1.0f32, 0.0]);
        let mut tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 2, vec![8.0, -8.0, -9.0, 9.0]));
        let l = cross_entropy_masked(&mut tape, logits, targets, mask);
        assert!(tape.value(l).item() < 0.01);
    }

    #[test]
    fn link_loss_rewards_separated_scores() {
        let mut tape = Tape::new();
        let good_pos = tape.constant(Tensor::from_vec(2, 1, vec![6.0, 7.0]));
        let good_neg = tape.constant(Tensor::from_vec(2, 1, vec![-6.0, -7.0]));
        let l_good = link_prediction_loss(&mut tape, good_pos, good_neg);
        let bad_pos = tape.constant(Tensor::from_vec(2, 1, vec![-6.0, -7.0]));
        let bad_neg = tape.constant(Tensor::from_vec(2, 1, vec![6.0, 7.0]));
        let l_bad = link_prediction_loss(&mut tape, bad_pos, bad_neg);
        assert!(tape.value(l_good).item() < 0.01);
        assert!(tape.value(l_bad).item() > 5.0);
    }

    #[test]
    fn link_loss_weights_by_pair_counts() {
        // With unequal pos/neg counts, the loss equals the mean over all
        // pairs: verify against a hand computation at logit 0 (= ln 2).
        let mut tape = Tape::new();
        let pos = tape.constant(Tensor::zeros(3, 1));
        let neg = tape.constant(Tensor::zeros(1, 1));
        let l = link_prediction_loss(&mut tape, pos, neg);
        assert!((tape.value(l).item() - std::f32::consts::LN_2).abs() < 1e-6);
    }
}
