//! The 2-layer GNN encoder of §VIII-B: backbone ∈ {GCN, GAT}, hidden and
//! output dimension 16, ReLU + dropout(0.01) between layers, GAT with four
//! attention heads.

use lumos_common::rng::Xoshiro256pp;
use lumos_tensor::{ParamStore, Tape, VarId};

use crate::adj::MessageGraph;
use crate::layers::{apply_dropout, GatLayer, GcnLayer, Layer};

/// Backbone architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backbone {
    /// Graph convolutional network (Kipf & Welling).
    Gcn,
    /// Graph attention network (Veličković et al.), 4 heads.
    Gat,
    /// GraphSAGE with mean aggregation (Hamilton et al.) — an extension
    /// backbone beyond the paper's GCN/GAT evaluation.
    Sage,
}

impl Backbone {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Backbone::Gcn => "GCN",
            Backbone::Gat => "GAT",
            Backbone::Sage => "SAGE",
        }
    }
}

/// Encoder hyperparameters (defaults follow §VIII-B).
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Backbone architecture.
    pub backbone: Backbone,
    /// Input feature dimensionality.
    pub in_dim: usize,
    /// Hidden dimensionality (16 in the paper).
    pub hidden_dim: usize,
    /// Output embedding dimensionality (16 in the paper).
    pub out_dim: usize,
    /// Number of message-passing layers (2 in the paper).
    pub num_layers: usize,
    /// GAT attention heads (4 in the paper).
    pub heads: usize,
    /// Dropout probability between layers (0.01 in the paper).
    pub dropout: f32,
}

impl EncoderConfig {
    /// The paper's configuration for a given backbone and input size.
    pub fn paper(backbone: Backbone, in_dim: usize) -> Self {
        Self {
            backbone,
            in_dim,
            hidden_dim: 16,
            out_dim: 16,
            num_layers: 2,
            heads: 4,
            dropout: 0.01,
        }
    }
}

/// A stack of GNN layers producing node embeddings.
#[derive(Debug, Clone)]
pub struct GnnEncoder {
    layers: Vec<Layer>,
    dropout: f32,
    out_dim: usize,
}

impl GnnEncoder {
    /// Registers all layer parameters in `store`.
    ///
    /// For GAT, hidden layers concatenate `heads` heads of `hidden_dim`
    /// outputs each; the final layer averages `heads` heads of `out_dim`.
    ///
    /// # Panics
    /// Panics if `num_layers == 0`.
    pub fn new(store: &mut ParamStore, cfg: &EncoderConfig, rng: &mut Xoshiro256pp) -> Self {
        assert!(cfg.num_layers >= 1, "encoder needs at least one layer");
        let mut layers = Vec::with_capacity(cfg.num_layers);
        let mut dim = cfg.in_dim;
        for i in 0..cfg.num_layers {
            let last = i + 1 == cfg.num_layers;
            let name = format!("enc{i}");
            match cfg.backbone {
                Backbone::Gcn => {
                    let out = if last { cfg.out_dim } else { cfg.hidden_dim };
                    let layer = GcnLayer::new(store, &name, dim, out, rng);
                    dim = layer.out_dim();
                    layers.push(Layer::Gcn(layer));
                }
                Backbone::Gat => {
                    let (head_dim, concat) = if last {
                        (cfg.out_dim, false)
                    } else {
                        (cfg.hidden_dim, true)
                    };
                    let layer = GatLayer::new(store, &name, dim, head_dim, cfg.heads, concat, rng);
                    dim = layer.out_dim();
                    layers.push(Layer::Gat(layer));
                }
                Backbone::Sage => {
                    let out = if last { cfg.out_dim } else { cfg.hidden_dim };
                    let layer = crate::sage::SageLayer::new(store, &name, dim, out, rng);
                    dim = layer.out_dim();
                    layers.push(Layer::Sage(layer));
                }
            }
        }
        Self {
            layers,
            dropout: cfg.dropout,
            out_dim: dim,
        }
    }

    /// Output embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Full forward pass: layer → (ReLU → dropout) between layers.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: VarId,
        mg: &MessageGraph,
        training: bool,
        rng: &mut Xoshiro256pp,
    ) -> VarId {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h, mg);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
                h = apply_dropout(tape, h, self.dropout, training, rng);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_tensor::Tensor;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(555)
    }

    #[test]
    fn gcn_encoder_dimensions() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::paper(Backbone::Gcn, 32);
        let enc = GnnEncoder::new(&mut store, &cfg, &mut r);
        assert_eq!(enc.num_layers(), 2);
        assert_eq!(enc.out_dim(), 16);
        let mg = MessageGraph::from_undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform(5, 32, 0.0, 1.0, &mut r));
        let h = enc.forward(&mut tape, &store, x, &mg, true, &mut r);
        assert_eq!(tape.value(h).dims(), (5, 16));
        assert!(tape.value(h).all_finite());
    }

    #[test]
    fn gat_encoder_dimensions() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::paper(Backbone::Gat, 12);
        let enc = GnnEncoder::new(&mut store, &cfg, &mut r);
        // Hidden layer: 4 heads × 16 concat = 64; final: 4 heads avg → 16.
        assert_eq!(enc.out_dim(), 16);
        let mg = MessageGraph::from_undirected(4, &[(0, 1), (2, 3)]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform(4, 12, 0.0, 1.0, &mut r));
        let h = enc.forward(&mut tape, &store, x, &mg, false, &mut r);
        assert_eq!(tape.value(h).dims(), (4, 16));
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::paper(Backbone::Gcn, 8);
        let enc = GnnEncoder::new(&mut store, &cfg, &mut r);
        let mg = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        let x_data = Tensor::rand_uniform(3, 8, 0.0, 1.0, &mut r);
        let run = |rng: &mut Xoshiro256pp| {
            let mut tape = Tape::new();
            let x = tape.constant(x_data.clone());
            let h = enc.forward(&mut tape, &store, x, &mg, false, rng);
            tape.value(h).clone()
        };
        let mut r1 = Xoshiro256pp::seed_from_u64(1);
        let mut r2 = Xoshiro256pp::seed_from_u64(2);
        assert_eq!(run(&mut r1), run(&mut r2), "no stochasticity in eval mode");
    }

    #[test]
    fn param_counts() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::paper(Backbone::Gcn, 10);
        let _ = GnnEncoder::new(&mut store, &cfg, &mut r);
        // Two GCN layers: W + b each.
        assert_eq!(store.len(), 4);
        assert_eq!(store.num_scalars(), 10 * 16 + 16 + 16 * 16 + 16);
        let mut store2 = ParamStore::new();
        let cfg2 = EncoderConfig::paper(Backbone::Gat, 10);
        let _ = GnnEncoder::new(&mut store2, &cfg2, &mut r);
        // Layer 1: 4 heads × (W + a_src + a_dst) + bias; layer 2 likewise.
        assert_eq!(store2.len(), 4 * 3 + 1 + 4 * 3 + 1);
    }
}
