//! Decoders: the linear classification head (Eq. 32 / Eq. 3) and the
//! pairwise dot-product link decoder (Eq. 4).

use std::rc::Rc;

use lumos_common::rng::Xoshiro256pp;
use lumos_tensor::{ParamId, ParamStore, Tape, Tensor, VarId};

/// Linear classification head: `z_u = LINEAR(h_u)` (Eq. 32).
#[derive(Debug, Clone)]
pub struct LinearDecoder {
    w: ParamId,
    b: ParamId,
    num_classes: usize,
}

impl LinearDecoder {
    /// Registers the head's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        num_classes: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        Self {
            w: store.add(
                format!("{name}.weight"),
                Tensor::glorot(in_dim, num_classes, rng),
            ),
            b: store.add(format!("{name}.bias"), Tensor::zeros(1, num_classes)),
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Produces per-node class logits `[n, L]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, h: VarId) -> VarId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let z = tape.matmul(h, w);
        tape.add_row_broadcast(z, b)
    }
}

/// Pairwise link logits: `z_(u,v) = h_u · h_v` (the decoder of Eq. 4 /
/// Eq. 33). Returns a `[P, 1]` column of dot products for pairs
/// `(src[i], dst[i])`.
pub fn link_logits(tape: &mut Tape, h: VarId, src: Rc<Vec<u32>>, dst: Rc<Vec<u32>>) -> VarId {
    assert_eq!(src.len(), dst.len(), "pair endpoint lists must align");
    let d = tape.value(h).cols();
    let hu = tape.gather_rows(h, src);
    let hv = tape.gather_rows(h, dst);
    let prod = tape.mul(hu, hv);
    // Row-wise sum via multiplication with a ones column.
    let ones = tape.constant(Tensor::ones(d, 1));
    tape.matmul(prod, ones)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(808)
    }

    #[test]
    fn linear_decoder_shapes() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let dec = LinearDecoder::new(&mut store, "head", 16, 4, &mut r);
        assert_eq!(dec.num_classes(), 4);
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::rand_uniform(7, 16, -1.0, 1.0, &mut r));
        let z = dec.forward(&mut tape, &store, h);
        assert_eq!(tape.value(z).dims(), (7, 4));
    }

    #[test]
    fn link_logits_are_dot_products() {
        let mut tape = Tape::new();
        let h = tape.constant(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.5]));
        let z = link_logits(&mut tape, h, Rc::new(vec![0, 1, 2]), Rc::new(vec![1, 2, 0]));
        let v = tape.value(z);
        assert_eq!(v.dims(), (3, 1));
        assert!((v.at(0, 0) - (1.0 * 3.0 + 2.0 * 4.0)).abs() < 1e-6);
        assert!((v.at(1, 0) - (-3.0 + 4.0 * 0.5)).abs() < 1e-6);
        assert!((v.at(2, 0) - (-1.0 + 0.5 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn link_logits_gradients_flow() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let hid = store.add("h", Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut r));
        let src = Rc::new(vec![0u32, 2]);
        let dst = Rc::new(vec![1u32, 3]);
        let mut tape = Tape::new();
        let h = tape.param(&store, hid);
        let z = link_logits(&mut tape, h, src, dst);
        let l = tape.sum_all(z);
        let grads = tape.backward(l);
        tape.accumulate_param_grads(&grads, &mut store);
        // d(h0·h1)/dh0 = h1 etc.
        let h_val = store.value(hid).clone();
        let g = &store.get(hid).grad;
        for j in 0..3 {
            assert!((g.at(0, j) - h_val.at(1, j)).abs() < 1e-6);
            assert!((g.at(1, j) - h_val.at(0, j)).abs() < 1e-6);
        }
    }
}
