//! Hand-rolled GNN layers: GCN (Kipf & Welling) and GAT (Veličković et al.),
//! the two backbones the paper evaluates (§VIII-B).

use lumos_common::rng::Xoshiro256pp;
use lumos_tensor::{ParamId, ParamStore, Tape, Tensor, VarId};

use crate::adj::MessageGraph;

/// A graph-convolution layer: `H' = Â H W + b` with symmetric normalization.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Registers the layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        let w = store.add(
            format!("{name}.weight"),
            Tensor::glorot(in_dim, out_dim, rng),
        );
        let b = store.add(format!("{name}.bias"), Tensor::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// One propagation step over the message graph.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: VarId,
        mg: &MessageGraph,
    ) -> VarId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        let gathered = tape.gather_rows(xw, mg.src.clone());
        let scaled = tape.scale_rows(gathered, mg.gcn_coeff.clone());
        let agg = tape.scatter_add_rows(scaled, mg.dst.clone(), mg.num_nodes);
        tape.add_row_broadcast(agg, b)
    }
}

/// One attention head of a GAT layer.
#[derive(Debug, Clone)]
struct GatHead {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
}

/// A multi-head graph-attention layer.
///
/// Per head: `e_(u→v) = LeakyReLU(a_srcᵀ W h_u + a_dstᵀ W h_v)`, attention
/// `α = segment-softmax over incoming arcs of v`, output
/// `h'_v = Σ_u α_(u→v) W h_u`. Heads are concatenated (hidden layers) or
/// averaged (output layer), as in the original GAT.
#[derive(Debug, Clone)]
pub struct GatLayer {
    heads: Vec<GatHead>,
    bias: ParamId,
    in_dim: usize,
    head_dim: usize,
    concat: bool,
    leaky_slope: f32,
}

impl GatLayer {
    /// Registers a GAT layer with `heads` attention heads of `head_dim`
    /// outputs each. If `concat` is true the heads are concatenated
    /// (output dim `heads·head_dim`), otherwise averaged (`head_dim`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        head_dim: usize,
        num_heads: usize,
        concat: bool,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        assert!(num_heads >= 1, "GAT needs at least one head");
        let heads = (0..num_heads)
            .map(|h| GatHead {
                w: store.add(
                    format!("{name}.head{h}.weight"),
                    Tensor::glorot(in_dim, head_dim, rng),
                ),
                a_src: store.add(
                    format!("{name}.head{h}.a_src"),
                    Tensor::glorot(head_dim, 1, rng),
                ),
                a_dst: store.add(
                    format!("{name}.head{h}.a_dst"),
                    Tensor::glorot(head_dim, 1, rng),
                ),
            })
            .collect();
        let out_dim = if concat {
            num_heads * head_dim
        } else {
            head_dim
        };
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(1, out_dim));
        Self {
            heads,
            bias,
            in_dim,
            head_dim,
            concat,
            leaky_slope: 0.2,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        if self.concat {
            self.heads.len() * self.head_dim
        } else {
            self.head_dim
        }
    }

    /// One attention propagation step.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: VarId,
        mg: &MessageGraph,
    ) -> VarId {
        let mut head_outputs: Vec<VarId> = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = tape.param(store, head.w);
            let a_src = tape.param(store, head.a_src);
            let a_dst = tape.param(store, head.a_dst);
            let wh = tape.matmul(x, w); // [n, f']
            let s_src = tape.matmul(wh, a_src); // [n, 1]
            let s_dst = tape.matmul(wh, a_dst); // [n, 1]
            let e_src = tape.gather_rows(s_src, mg.src.clone()); // [E, 1]
            let e_dst = tape.gather_rows(s_dst, mg.dst.clone()); // [E, 1]
            let logits = tape.add(e_src, e_dst);
            let logits = tape.leaky_relu(logits, self.leaky_slope);
            let alpha = tape.segment_softmax(logits, mg.dst.clone(), mg.num_nodes); // [E,1]
            let msgs = tape.gather_rows(wh, mg.src.clone()); // [E, f']
            let weighted = tape.mul_col_broadcast(msgs, alpha);
            let agg = tape.scatter_add_rows(weighted, mg.dst.clone(), mg.num_nodes);
            head_outputs.push(agg);
        }
        let combined = if self.concat {
            tape.concat_cols(&head_outputs)
        } else {
            // Average the heads.
            let mut acc = head_outputs[0];
            for &h in &head_outputs[1..] {
                acc = tape.add(acc, h);
            }
            tape.scale(acc, 1.0 / self.heads.len() as f32)
        };
        let b = tape.param(store, self.bias);
        tape.add_row_broadcast(combined, b)
    }
}

/// Either backbone layer, type-erased for the encoder stack.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Graph convolution.
    Gcn(GcnLayer),
    /// Graph attention.
    Gat(GatLayer),
    /// GraphSAGE (mean aggregator; extension backbone).
    Sage(crate::sage::SageLayer),
}

impl Layer {
    /// Forward dispatch.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: VarId,
        mg: &MessageGraph,
    ) -> VarId {
        match self {
            Layer::Gcn(l) => l.forward(tape, store, x, mg),
            Layer::Gat(l) => l.forward(tape, store, x, mg),
            Layer::Sage(l) => l.forward(tape, store, x, mg),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        match self {
            Layer::Gcn(l) => l.out_dim(),
            Layer::Gat(l) => l.out_dim(),
            Layer::Sage(l) => l.out_dim(),
        }
    }
}

/// Helper shared by tests: a constant input var for a feature matrix.
pub fn input_var(tape: &mut Tape, features: Tensor) -> VarId {
    tape.constant(features)
}

/// Dropout wrapper used between layers (inverted dropout, `p = 0.01` in the
/// paper). A no-op when `training` is false.
pub fn apply_dropout(
    tape: &mut Tape,
    x: VarId,
    p: f32,
    training: bool,
    rng: &mut Xoshiro256pp,
) -> VarId {
    if !training || p == 0.0 {
        return x;
    }
    let len = tape.value(x).len();
    let mask = lumos_tensor::nn::dropout_mask(len, p, rng);
    tape.dropout(x, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_tensor::gradcheck::numeric_grad;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(1000)
    }

    fn tiny_graph() -> MessageGraph {
        MessageGraph::from_undirected(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn gcn_forward_shape_and_finiteness() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "gcn", 5, 3, &mut r);
        let mg = tiny_graph();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform(4, 5, -1.0, 1.0, &mut r));
        let y = layer.forward(&mut tape, &store, x, &mg);
        assert_eq!(tape.value(y).dims(), (4, 3));
        assert!(tape.value(y).all_finite());
    }

    #[test]
    fn gcn_on_isolated_node_is_self_transform() {
        // A single node with only a self-loop: output = x W + b with
        // coefficient 1.
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "gcn", 2, 2, &mut r);
        let mg = MessageGraph::from_undirected(1, &[]);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let y = layer.forward(&mut tape, &store, x, &mg);
        let w = store.value(layer.w);
        let expected0 = 1.0 * w.at(0, 0) - 1.0 * w.at(1, 0);
        assert!((tape.value(y).at(0, 0) - expected0).abs() < 1e-5);
    }

    #[test]
    fn gcn_gradients_match_finite_difference() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "gcn", 3, 2, &mut r);
        let mg = tiny_graph();
        let x = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut r);
        let wid = layer.w;

        let eval = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = layer.forward(&mut tape, store, xv, &mg);
            let s = tape.sigmoid(y);
            let l = tape.mean_all(s);
            tape.value(l).item()
        };

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, &store, xv, &mg);
        let s = tape.sigmoid(y);
        let l = tape.mean_all(s);
        let grads = tape.backward(l);
        store.zero_grad();
        tape.accumulate_param_grads(&grads, &mut store);
        let numeric = numeric_grad(&mut store, wid, &eval, 1e-2);
        assert!(
            store.get(wid).grad.max_abs_diff(&numeric) < 5e-2,
            "{:?} vs {numeric:?}",
            store.get(wid).grad
        );
    }

    #[test]
    fn gat_forward_shapes_concat_and_mean() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let concat = GatLayer::new(&mut store, "gat1", 5, 4, 4, true, &mut r);
        let avg = GatLayer::new(&mut store, "gat2", 16, 6, 4, false, &mut r);
        assert_eq!(concat.out_dim(), 16);
        assert_eq!(avg.out_dim(), 6);
        let mg = tiny_graph();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::rand_uniform(4, 5, -1.0, 1.0, &mut r));
        let h = concat.forward(&mut tape, &store, x, &mg);
        assert_eq!(tape.value(h).dims(), (4, 16));
        let out = avg.forward(&mut tape, &store, h, &mg);
        assert_eq!(tape.value(out).dims(), (4, 6));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn gat_attention_is_a_convex_combination() {
        // With identical inputs everywhere, the GAT output (pre-bias) equals
        // W h for every node: attention weights sum to 1.
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, "gat", 3, 2, 1, true, &mut r);
        let mg = tiny_graph();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(4, 3, vec![0.5; 12]));
        let y = layer.forward(&mut tape, &store, x, &mg);
        // All rows identical (same neighborhood value distribution).
        let v = tape.value(y);
        for i in 1..4 {
            for j in 0..2 {
                assert!((v.at(i, j) - v.at(0, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gat_gradients_match_finite_difference() {
        let mut r = rng();
        let mut store = ParamStore::new();
        let layer = GatLayer::new(&mut store, "gat", 3, 2, 2, true, &mut r);
        let mg = tiny_graph();
        let x = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut r);
        let wid = layer.heads[0].w;
        let aid = layer.heads[0].a_src;

        let eval = |store: &ParamStore| -> f32 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = layer.forward(&mut tape, store, xv, &mg);
            let s = tape.sigmoid(y);
            let l = tape.mean_all(s);
            tape.value(l).item()
        };

        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, &store, xv, &mg);
        let s = tape.sigmoid(y);
        let l = tape.mean_all(s);
        let grads = tape.backward(l);
        store.zero_grad();
        tape.accumulate_param_grads(&grads, &mut store);
        for pid in [wid, aid] {
            let numeric = numeric_grad(&mut store, pid, &eval, 1e-2);
            assert!(
                store.get(pid).grad.max_abs_diff(&numeric) < 5e-2,
                "param {}: {:?} vs {numeric:?}",
                store.get(pid).name,
                store.get(pid).grad
            );
        }
    }

    #[test]
    fn dropout_wrapper_noop_in_eval_mode() {
        let mut r = rng();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(2, 4));
        let y = apply_dropout(&mut tape, x, 0.5, false, &mut r);
        assert_eq!(y, x, "eval mode must not insert a node");
        let z = apply_dropout(&mut tape, x, 0.5, true, &mut r);
        assert_ne!(z, x);
    }
}
