//! Message-passing structure: directed arcs with GCN normalization.
//!
//! A [`MessageGraph`] is the edge-index form every layer consumes. It is
//! deliberately independent of `lumos-graph`'s `Graph` so the same layers
//! run on ordinary graphs *and* on the batched virtual-node trees built by
//! `lumos-core` (§V-A).

use std::rc::Rc;

/// Directed message arcs over `num_nodes` nodes, with self-loops added and
/// per-arc symmetric-normalization coefficients `1/√(d̂_src · d̂_dst)`
/// (Kipf & Welling's GCN normalization with `d̂ = deg + 1`).
#[derive(Debug, Clone)]
pub struct MessageGraph {
    /// Number of nodes in the message-passing domain.
    pub num_nodes: usize,
    /// Source node of each arc.
    pub src: Rc<Vec<u32>>,
    /// Destination node of each arc.
    pub dst: Rc<Vec<u32>>,
    /// GCN normalization coefficient of each arc.
    pub gcn_coeff: Rc<Vec<f32>>,
}

impl MessageGraph {
    /// Builds a message graph from undirected edges: each edge contributes
    /// both directed arcs, and every node gets a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_undirected(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(2 * edges.len() + num_nodes);
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u},{v}) out of range"
            );
            arcs.push((u, v));
            arcs.push((v, u));
        }
        for v in 0..num_nodes as u32 {
            arcs.push((v, v));
        }
        Self::from_arcs_with_self_loops(num_nodes, arcs)
    }

    /// Builds from a prepared arc list that already contains self-loops.
    fn from_arcs_with_self_loops(num_nodes: usize, arcs: Vec<(u32, u32)>) -> Self {
        // In-degree (== out-degree for symmetric arc sets) including loops.
        let mut deg = vec![0u32; num_nodes];
        for &(_, d) in &arcs {
            deg[d as usize] += 1;
        }
        let mut src = Vec::with_capacity(arcs.len());
        let mut dst = Vec::with_capacity(arcs.len());
        let mut coeff = Vec::with_capacity(arcs.len());
        for &(s, d) in &arcs {
            src.push(s);
            dst.push(d);
            coeff.push(1.0 / ((deg[s as usize] as f32).sqrt() * (deg[d as usize] as f32).sqrt()));
        }
        Self {
            num_nodes,
            src: Rc::new(src),
            dst: Rc::new(dst),
            gcn_coeff: Rc::new(coeff),
        }
    }

    /// Number of directed arcs (including self-loops).
    pub fn num_arcs(&self) -> usize {
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_counts_include_self_loops() {
        let mg = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        // 2 edges * 2 directions + 3 self-loops.
        assert_eq!(mg.num_arcs(), 7);
        assert_eq!(mg.num_nodes, 3);
    }

    #[test]
    fn gcn_coefficients_match_hand_computation() {
        // Path 0-1-2: degrees with loops are d̂ = [2, 3, 2].
        let mg = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        for i in 0..mg.num_arcs() {
            let (s, d) = (mg.src[i] as usize, mg.dst[i] as usize);
            let dh = [2.0f32, 3.0, 2.0];
            let expected = 1.0 / (dh[s].sqrt() * dh[d].sqrt());
            assert!(
                (mg.gcn_coeff[i] - expected).abs() < 1e-6,
                "arc {s}->{d}: {} vs {expected}",
                mg.gcn_coeff[i]
            );
        }
    }

    #[test]
    fn isolated_nodes_still_get_self_loops() {
        let mg = MessageGraph::from_undirected(4, &[(0, 1)]);
        assert_eq!(mg.num_arcs(), 2 + 4);
        // Self-loop of an isolated node has coefficient 1.
        let idx = (0..mg.num_arcs())
            .find(|&i| mg.src[i] == 3 && mg.dst[i] == 3)
            .expect("self-loop exists");
        assert!((mg.gcn_coeff[idx] - 1.0).abs() < 1e-6);
    }
}
