//! Property tests for the discrete-event core: the virtual clock never
//! runs backwards, and the epoch simulator's invariants hold for arbitrary
//! seeded fleets and workloads.

use proptest::prelude::*;

use lumos_common::rng::Xoshiro256pp;
use lumos_sim::{simulate_epoch, DeviceProfile, DeviceWork, EventQueue, VirtualTime};

/// Random fleet + workload of `n` devices from one seed.
fn random_fleet(seed: u64, n: usize) -> (Vec<DeviceProfile>, Vec<DeviceWork>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let profiles = (0..n)
        .map(|_| DeviceProfile {
            compute_rate: rng.range_f64(0.5, 500.0),
            uplink_bytes_per_sec: rng.range_f64(64.0, 1e5),
            downlink_bytes_per_sec: rng.range_f64(64.0, 1e5),
            latency_secs: rng.range_f64(0.0, 0.5),
            available: rng.bernoulli(0.9),
        })
        .collect();
    let work = (0..n)
        .map(|_| DeviceWork {
            compute_units: rng.range_f64(0.0, 5000.0),
            messages_out: rng.next_below(32),
            bytes_out: rng.next_below(1 << 16),
            bytes_in: rng.next_below(1 << 16),
        })
        .collect();
    (profiles, work)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Virtual-clock monotonicity: however events are pushed, pops are
    /// non-decreasing in time, FIFO at ties, and nothing is lost.
    #[test]
    fn event_pops_are_monotone_in_time(seed in any::<u64>(), len in 1usize..256) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut queue = EventQueue::new();
        for i in 0..len {
            queue.push(VirtualTime::new(rng.range_f64(0.0, 1e6)), i);
        }
        prop_assert_eq!(queue.len(), len);
        let mut popped = 0usize;
        let mut last = VirtualTime::ZERO;
        let mut last_seq = 0usize;
        while let Some((t, seq)) = queue.pop() {
            prop_assert!(t >= last, "clock ran backwards: {} < {}", t.secs(), last.secs());
            if t == last && popped > 0 {
                prop_assert!(seq > last_seq, "ties must pop in push order");
            }
            last = t;
            last_seq = seq;
            popped += 1;
        }
        prop_assert_eq!(popped, len);
    }

    /// The synchronous barrier dominates every device: busy time never
    /// exceeds the makespan, idle is the exact complement for available
    /// devices, and utilization stays in [0, 1].
    #[test]
    fn epoch_invariants_hold_for_random_fleets(seed in any::<u64>(), n in 1usize..48) {
        let (profiles, work) = random_fleet(seed, n);
        let stats = simulate_epoch(&profiles, &work);
        prop_assert!(stats.makespan_secs >= 0.0);
        for (d, p) in profiles.iter().enumerate() {
            prop_assert!(
                stats.busy_secs[d] <= stats.makespan_secs + 1e-9,
                "device {} busy {} exceeds makespan {}",
                d, stats.busy_secs[d], stats.makespan_secs
            );
            prop_assert!(stats.idle_secs[d] >= 0.0);
            if p.available {
                let sum = stats.busy_secs[d] + stats.idle_secs[d];
                prop_assert!(
                    (sum - stats.makespan_secs).abs() < 1e-9 || stats.makespan_secs == 0.0,
                    "busy + idle must equal makespan for device {}", d
                );
            } else {
                prop_assert_eq!(stats.busy_secs[d], 0.0);
                prop_assert_eq!(stats.idle_secs[d], 0.0);
            }
        }
        let u = stats.mean_utilization();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utilization {} out of range", u);
        // Straggler exists iff some available device had work.
        let any_ran = profiles.iter().zip(&work).any(|(p, w)| p.available && !w.is_idle());
        prop_assert_eq!(stats.straggler.is_some(), any_ran);
    }

    /// Bit-identical replay: the simulator is a pure function of its
    /// inputs, with no hidden clock or iteration-order dependence.
    #[test]
    fn epoch_simulation_is_replayable(seed in any::<u64>(), n in 1usize..32) {
        let (profiles, work) = random_fleet(seed, n);
        let a = simulate_epoch(&profiles, &work);
        let b = simulate_epoch(&profiles, &work);
        prop_assert_eq!(a, b);
    }
}
