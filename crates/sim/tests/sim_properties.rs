//! Property tests for the discrete-event core: the virtual clock never
//! runs backwards, the epoch simulator's invariants hold for arbitrary
//! seeded fleets and workloads, and the per-destination schedule dominates
//! the aggregate one — collapsing to it bit-for-bit exactly when every
//! sender lands at or before its receiver's own burst barrier.

use proptest::prelude::*;

use lumos_common::rng::Xoshiro256pp;
use lumos_sim::{
    simulate_epoch, AggregationPolicy, DeviceProfile, DeviceWork, EventDrivenRuntime, EventQueue,
    Inbound, RoundPolicy, StalenessBuffer, VirtualTime, SERVER_SENDER, STALENESS_CAP,
};

/// Random fleet + aggregate workload of `n` devices from one seed.
fn random_fleet(seed: u64, n: usize) -> (Vec<DeviceProfile>, Vec<DeviceWork>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let profiles = (0..n)
        .map(|_| DeviceProfile {
            compute_rate: rng.range_f64(0.5, 500.0),
            uplink_bytes_per_sec: rng.range_f64(64.0, 1e5),
            downlink_bytes_per_sec: rng.range_f64(64.0, 1e5),
            latency_secs: rng.range_f64(0.0, 0.5),
            available: rng.bernoulli(0.9),
        })
        .collect();
    let work = (0..n)
        .map(|_| {
            DeviceWork::aggregate(
                rng.range_f64(0.0, 5000.0),
                rng.next_below(32),
                rng.next_below(1 << 16),
                rng.next_below(1 << 16),
            )
        })
        .collect();
    (profiles, work)
}

/// Splits each device's aggregate inbound bytes across random senders
/// (peers, itself, or the server), preserving the per-device totals.
fn scatter_inbound(seed: u64, work: &[DeviceWork]) -> Vec<DeviceWork> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5EED_CA57);
    let n = work.len() as u64;
    work.iter()
        .map(|w| {
            let total = w.bytes_in();
            let mut remaining = total;
            let mut list = Vec::new();
            while remaining > 0 {
                let chunk = (rng.next_below(remaining) + 1).min(remaining);
                let sender = match rng.next_below(n + 2) {
                    s if s < n => s as u32,
                    s if s == n => SERVER_SENDER,
                    _ => SERVER_SENDER, // second server slot keeps draws simple
                };
                list.push((sender, chunk));
                remaining -= chunk;
            }
            DeviceWork {
                inbound: Inbound::PerSender(list),
                ..w.clone()
            }
        })
        .collect()
}

/// The sender's burst barrier, with the exact float operations of the
/// simulator's event chain.
fn barrier_secs(p: &DeviceProfile, w: &DeviceWork) -> f64 {
    (p.compute_secs(w.compute_units) + p.upload_secs(w.bytes_out)) + p.latency_secs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Virtual-clock monotonicity: however events are pushed, pops are
    /// non-decreasing in time, FIFO at ties, and nothing is lost.
    #[test]
    fn event_pops_are_monotone_in_time(seed in any::<u64>(), len in 1usize..256) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut queue = EventQueue::new();
        for i in 0..len {
            queue.push(VirtualTime::new(rng.range_f64(0.0, 1e6)), i);
        }
        prop_assert_eq!(queue.len(), len);
        let mut popped = 0usize;
        let mut last = VirtualTime::ZERO;
        let mut last_seq = 0usize;
        while let Some((t, seq)) = queue.pop() {
            prop_assert!(t >= last, "clock ran backwards: {} < {}", t.secs(), last.secs());
            if t == last && popped > 0 {
                prop_assert!(seq > last_seq, "ties must pop in push order");
            }
            last = t;
            last_seq = seq;
            popped += 1;
        }
        prop_assert_eq!(popped, len);
    }

    /// The synchronous barrier dominates every device: busy time never
    /// exceeds the makespan, idle is the exact complement for available
    /// devices, and utilization stays in [0, 1] — under both inbound
    /// representations.
    #[test]
    fn epoch_invariants_hold_for_random_fleets(seed in any::<u64>(), n in 1usize..48) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let per_sender = scatter_inbound(seed, &aggregate);
        for work in [&aggregate, &per_sender] {
            let stats = simulate_epoch(&profiles, work);
            prop_assert!(stats.makespan_secs >= 0.0);
            for (d, p) in profiles.iter().enumerate() {
                prop_assert!(
                    stats.busy_secs[d] <= stats.makespan_secs + 1e-9,
                    "device {} busy {} exceeds makespan {}",
                    d, stats.busy_secs[d], stats.makespan_secs
                );
                prop_assert!(stats.idle_secs[d] >= 0.0);
                if p.available {
                    let sum = stats.busy_secs[d] + stats.idle_secs[d];
                    prop_assert!(
                        (sum - stats.makespan_secs).abs() < 1e-9 || stats.makespan_secs == 0.0,
                        "busy + idle must equal makespan for device {}", d
                    );
                } else {
                    prop_assert_eq!(stats.busy_secs[d], 0.0);
                    prop_assert_eq!(stats.idle_secs[d], 0.0);
                    prop_assert_eq!(stats.update_delivery_secs[d], None);
                }
            }
            let u = stats.mean_utilization();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utilization {} out of range", u);
            // Straggler exists iff some available device had work.
            let any_ran = profiles.iter().zip(work.iter()).any(|(p, w)| p.available && !w.is_idle());
            prop_assert_eq!(stats.straggler.is_some(), any_ran);
        }
    }

    /// Naming senders can only delay drains: on the same work, the
    /// per-destination makespan dominates the aggregate (self-timed) one.
    #[test]
    fn per_destination_makespan_dominates_aggregate(seed in any::<u64>(), n in 1usize..32) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let per_sender = scatter_inbound(seed, &aggregate);
        let agg = simulate_epoch(&profiles, &aggregate);
        let per = simulate_epoch(&profiles, &per_sender);
        prop_assert!(
            per.makespan_secs >= agg.makespan_secs,
            "per-destination {} fell below aggregate {}",
            per.makespan_secs, agg.makespan_secs
        );
        // Busy time is the device's own critical path either way: waiting
        // for senders is idle, never busy.
        for d in 0..n {
            prop_assert_eq!(per.busy_secs[d].to_bits(), agg.busy_secs[d].to_bits());
        }
    }

    /// Degenerate case, bit for bit: when every inbound byte originates at
    /// or before its receiver's own burst barrier, the per-destination
    /// schedule IS the aggregate schedule — same makespan bits, same
    /// straggler, same busy/idle bits.
    #[test]
    fn early_senders_collapse_to_the_aggregate_schedule(seed in any::<u64>(), n in 1usize..32) {
        let (profiles, aggregate) = random_fleet(seed, n);
        // Keep only the cross-sender contributions that land at or before
        // the receiver's own barrier; reroute the rest to the receiver
        // itself (self-timed by definition). Totals are preserved.
        let scattered = scatter_inbound(seed, &aggregate);
        let filtered: Vec<DeviceWork> = scattered
            .iter()
            .enumerate()
            .map(|(d, w)| {
                let Inbound::PerSender(list) = &w.inbound else { unreachable!() };
                let own = barrier_secs(&profiles[d], w);
                let list = list
                    .iter()
                    .map(|&(s, b)| {
                        let keep = s != SERVER_SENDER
                            && (s as usize) < n
                            && profiles[s as usize].available
                            && !scattered[s as usize].is_idle()
                            && barrier_secs(&profiles[s as usize], &scattered[s as usize]) <= own;
                        if keep { (s, b) } else { (d as u32, b) }
                    })
                    .collect();
                DeviceWork { inbound: Inbound::PerSender(list), ..w.clone() }
            })
            .collect();
        let agg = simulate_epoch(&profiles, &aggregate);
        let per = simulate_epoch(&profiles, &filtered);
        prop_assert_eq!(per.makespan_secs.to_bits(), agg.makespan_secs.to_bits());
        prop_assert_eq!(per.straggler, agg.straggler);
        for d in 0..n {
            prop_assert_eq!(per.busy_secs[d].to_bits(), agg.busy_secs[d].to_bits());
            prop_assert_eq!(per.idle_secs[d].to_bits(), agg.idle_secs[d].to_bits());
        }
    }

    /// Bit-identical replay: the simulator is a pure function of its
    /// inputs, with no hidden clock or iteration-order dependence.
    #[test]
    fn epoch_simulation_is_replayable(seed in any::<u64>(), n in 1usize..32) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        let a = simulate_epoch(&profiles, &work);
        let b = simulate_epoch(&profiles, &work);
        prop_assert_eq!(a, b);
    }

    /// The deadline policy can never empty a round: the median device (and
    /// with it at least half the participants) always survives, and only
    /// participants are ever dropped.
    #[test]
    fn deadline_keeps_at_least_half_the_round(
        seed in any::<u64>(), n in 1usize..32, factor in 1.0f64..4.0
    ) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        let stats = simulate_epoch(&profiles, &work);
        let late = AggregationPolicy::Deadline { factor }.late_devices(&stats);
        let participants = stats.update_delivery_secs.iter().flatten().count();
        prop_assert!(late.len() <= participants / 2);
        for &d in &late {
            prop_assert!(stats.update_delivery_secs[d as usize].is_some());
        }
        prop_assert!(AggregationPolicy::FullSync.late_devices(&stats).is_empty());
    }

    /// Staleness-buffer conservation: however pushes and rounds interleave,
    /// every buffered update arrives exactly once within [`STALENESS_CAP`]
    /// rounds, at exactly `decay^staleness` weight — no update is lost, none
    /// outlives the cap.
    #[test]
    fn staleness_buffer_loses_no_update(
        seed in any::<u64>(), n in 1usize..16, rounds in 1usize..24, decay in 0.0f64..=1.0
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut buf = StalenessBuffer::new(decay);
        let mut pushed = 0u64;
        let mut expected = 0.0f64;
        let mut delivered = 0.0f64;
        for _ in 0..rounds {
            delivered += buf.advance(n).iter().sum::<f64>();
            for _ in 0..rng.next_below(4) {
                let d = rng.next_below(n as u64) as u32;
                // Deliberately overshoot the cap sometimes: the buffer must
                // clamp, never defer (or discount) unboundedly.
                let s = rng.next_below(2 * STALENESS_CAP as u64) as u32;
                buf.push(d, s);
                pushed += 1;
                expected += decay.powi(s.clamp(1, STALENESS_CAP) as i32);
            }
        }
        for _ in 0..STALENESS_CAP {
            delivered += buf.advance(n).iter().sum::<f64>();
        }
        prop_assert_eq!(buf.in_flight(), 0, "an update outlived STALENESS_CAP");
        prop_assert_eq!(buf.total_buffered(), pushed);
        prop_assert!(
            (delivered - expected).abs() < 1e-9 * (1.0 + expected.abs()),
            "delivered weight {} != expected {}", delivered, expected
        );
    }

    /// Staleness weights discount monotonically: an older update never
    /// outweighs a fresher one, and every weight stays in [0, 1].
    #[test]
    fn staleness_weights_decay_monotonically(decay in 0.0f64..=1.0) {
        let buf = StalenessBuffer::new(decay);
        let mut prev = 1.0f64;
        for s in 1..=STALENESS_CAP {
            let w = buf.weight(s);
            prop_assert!((0.0..=1.0).contains(&w), "weight {} out of range", w);
            prop_assert!(w <= prev, "weight rose with age: {} > {}", w, prev);
            prev = w;
        }
    }

    /// The buffered policy's cut is the deadline's cut — identical late set
    /// on any simulated round, stalenesses always within the cap — and at
    /// `decay = 0` the whole policy resolves to the deadline.
    #[test]
    fn buffered_cut_matches_deadline_and_zero_decay_collapses(
        seed in any::<u64>(), n in 1usize..32, factor in 1.0f64..4.0, decay in 0.0f64..=1.0
    ) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        let stats = simulate_epoch(&profiles, &work);
        let deadline = AggregationPolicy::Deadline { factor };
        let buffered = AggregationPolicy::Buffered { factor, decay };
        prop_assert_eq!(buffered.late_devices(&stats), deadline.late_devices(&stats));
        for (d, s) in buffered.late_with_staleness(&stats) {
            prop_assert!((1..=STALENESS_CAP).contains(&s), "device {} staleness {}", d, s);
        }
        prop_assert_eq!(
            AggregationPolicy::Buffered { factor, decay: 0.0 }.effective(),
            deadline
        );
    }

    /// The arrival-time handler is the post-hoc policy: for any fleet and
    /// any policy, judging updates as their landing events pop yields the
    /// exact `(device, staleness)` pairs the finished-round computation
    /// does. This is the seam that makes the lockstep and event-driven
    /// trainer probes interchangeable.
    #[test]
    fn round_policy_verdicts_equal_the_post_hoc_cut(
        seed in any::<u64>(), n in 1usize..32, factor in 1.0f64..4.0,
        decay in 0.01f64..=1.0, quorum in 1usize..40
    ) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        for policy in [
            AggregationPolicy::FullSync,
            AggregationPolicy::Deadline { factor },
            AggregationPolicy::Buffered { factor, decay },
            AggregationPolicy::Async { min_updates: quorum },
        ] {
            let schedule = EventDrivenRuntime::new(&profiles, &work);
            let mut round = RoundPolicy::new(&policy, &schedule);
            let stats = schedule.run(|t, ev| round.on_event(t, ev));
            prop_assert_eq!(
                round.verdicts(),
                policy.late_with_staleness(&stats),
                "{} handler disagreed with the post-hoc path", policy.name()
            );
        }
    }

    /// `Async` with a quorum the whole round fits inside never closes
    /// early: the run is the synchronous barrier, bit for bit — the
    /// sim-level half of the `min_updates >= n_devices` ⇒ `FullSync`
    /// collapse.
    #[test]
    fn async_full_quorum_is_the_barrier_bitwise(seed in any::<u64>(), n in 1usize..32) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        let barrier = simulate_epoch(&profiles, &work);
        let schedule = EventDrivenRuntime::new(&profiles, &work);
        let mut round = RoundPolicy::new(
            &AggregationPolicy::Async { min_updates: n },
            &schedule,
        );
        let stats = schedule.run(|t, ev| round.on_event(t, ev));
        prop_assert_eq!(&stats, &barrier);
        prop_assert!(round.verdicts().is_empty(), "nobody misses a full quorum");
    }

    /// An async round closes exactly when its quorum completes: the
    /// makespan is the quorum's latest landing time (bitwise), never the
    /// barrier's.
    #[test]
    fn async_round_closes_at_the_quorum_landing(
        seed in any::<u64>(), n in 2usize..32, quorum in 1usize..31
    ) {
        let (profiles, aggregate) = random_fleet(seed, n);
        let work = scatter_inbound(seed, &aggregate);
        let schedule = EventDrivenRuntime::new(&profiles, &work);
        // Quorum boundary from the static signal: `min_updates`-th landing
        // in (time, device) order.
        let mut landings: Vec<(f64, u32)> = schedule
            .update_delivery_secs()
            .iter()
            .enumerate()
            .filter_map(|(d, t)| t.map(|t| (t, d as u32)))
            .collect();
        landings.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Only rounds where someone actually misses the quorum close early.
        if quorum < landings.len() {
            let close_at = landings[quorum - 1].0;
            let mut round = RoundPolicy::new(
                &AggregationPolicy::Async { min_updates: quorum },
                &schedule,
            );
            let stats = schedule.run(|t, ev| round.on_event(t, ev));
            prop_assert_eq!(
                stats.makespan_secs.to_bits(), close_at.to_bits(),
                "round closed at {} instead of the quorum landing {}",
                stats.makespan_secs, close_at
            );
            prop_assert_eq!(round.verdicts().len(), landings.len() - quorum);
        }
    }
}
