//! Virtual time and the deterministic event queue.
//!
//! The simulator never reads a real clock: every event carries a
//! [`VirtualTime`], and ties are broken by insertion sequence number, so the
//! pop order — and therefore every statistic derived from it — is a pure
//! function of the pushed events. This is what keeps the same-seed →
//! bit-identical contract of `tests/determinism.rs` intact when scenarios
//! are enabled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point on the simulator's virtual clock, in abstract seconds.
///
/// Wraps an `f64` with a *total* order (`f64::total_cmp`) so it can key a
/// `BinaryHeap`. Construction rejects NaN and negative values, so ordinary
/// comparisons never hit the exotic corners of the total order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The epoch origin, t = 0.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a virtual time at `secs`.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative.
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "virtual time must be finite and >= 0, got {secs}"
        );
        Self(secs)
    }

    /// The time as abstract seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// This time advanced by `delta` seconds.
    ///
    /// # Panics
    /// Panics if `delta` is NaN or negative.
    pub fn after(self, delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "time delta must be finite and >= 0, got {delta}"
        );
        Self(self.0 + delta)
    }
}

impl Eq for VirtualTime {}

impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One scheduled entry: `(time, seq)` orders the heap; `seq` is the push
/// counter, so simultaneous events pop in insertion order.
struct Entry<E> {
    time: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// Pops are non-decreasing in time; events at equal times pop in push order.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: VirtualTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: VirtualTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last pop.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the simulated past (before the last pop).
    pub fn push(&mut self, time: VirtualTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time.secs(),
            self.now.secs()
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::new(2.0), "late");
        q.push(VirtualTime::new(1.0), "tie-a");
        q.push(VirtualTime::new(1.0), "tie-b");
        q.push(VirtualTime::new(0.5), "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "tie-a", "tie-b", "late"]);
        assert_eq!(q.now().secs(), 2.0);
        assert!(q.is_empty());
    }

    #[test]
    fn clock_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), VirtualTime::ZERO);
        q.push(VirtualTime::new(3.5), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.secs(), 3.5);
        assert_eq!(q.now().secs(), 3.5);
        // Scheduling at the current instant is allowed.
        q.push(q.now(), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::new(2.0), ());
        q.pop();
        q.push(VirtualTime::new(1.0), ());
    }

    #[test]
    #[should_panic]
    fn nan_time_panics() {
        VirtualTime::new(f64::NAN);
    }

    #[test]
    fn after_advances() {
        let t = VirtualTime::new(1.0).after(0.25);
        assert_eq!(t.secs(), 1.25);
        assert!(VirtualTime::new(1.0) < t);
    }
}
