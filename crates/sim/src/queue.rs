//! Virtual time and the deterministic event queue.
//!
//! The simulator never reads a real clock: every event carries a
//! [`VirtualTime`], and ties are broken by the event's own [`TieBreak`] key
//! — (kind rank, device id) for simulation events — falling back to the
//! insertion sequence number, so the pop order — and therefore every
//! statistic derived from it — is a pure function of the *set* of pushed
//! events, independent of push order. This is what keeps the same-seed →
//! bit-identical contract of `tests/determinism.rs` intact when scenarios
//! are enabled, and what makes the event-driven runtime's close decisions
//! well-defined when timestamps collide exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point on the simulator's virtual clock, in abstract seconds.
///
/// Wraps an `f64` with a *total* order (`f64::total_cmp`) so it can key a
/// `BinaryHeap`. Construction rejects NaN and negative values, so ordinary
/// comparisons never hit the exotic corners of the total order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The epoch origin, t = 0.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a virtual time at `secs`.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative.
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "virtual time must be finite and >= 0, got {secs}"
        );
        Self(secs)
    }

    /// The time as abstract seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// This time advanced by `delta` seconds.
    ///
    /// # Panics
    /// Panics if `delta` is NaN or negative.
    pub fn after(self, delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "time delta must be finite and >= 0, got {delta}"
        );
        Self(self.0 + delta)
    }
}

impl Eq for VirtualTime {}

impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Deterministic ordering among events scheduled at the same virtual time.
///
/// The key is `(kind rank, device id)`: at a timestamp collision, events
/// pop by ascending key, and only equal keys fall back to push order. The
/// default key is the constant `(0, 0)` — every event ties, so plain event
/// types keep the original FIFO semantics — while the simulator's event
/// type overrides it, making the pop order a total function of the event
/// *set* rather than of the order the schedule happened to be built in.
pub trait TieBreak {
    /// `(kind rank, device id)` — compared ascending at equal timestamps.
    fn tie_key(&self) -> (u8, u32) {
        (0, 0)
    }
}

impl TieBreak for () {}
impl TieBreak for u32 {}
impl TieBreak for u64 {}
impl TieBreak for usize {}
impl TieBreak for &str {}

/// One scheduled entry: `(time, key, seq)` orders the heap; `key` is the
/// event's [`TieBreak`] key and `seq` the push counter, so simultaneous
/// events pop by key and only equal keys pop in insertion order.
struct Entry<E> {
    time: VirtualTime,
    key: (u8, u32),
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// Pops are non-decreasing in time; events at equal times pop by their
/// [`TieBreak`] key, and equal keys pop in push order.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: VirtualTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: VirtualTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last pop.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the simulated past (before the last pop).
    pub fn push(&mut self, time: VirtualTime, event: E)
    where
        E: TieBreak,
    {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time.secs(),
            self.now.secs()
        );
        let key = event.tie_key();
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time,
            key,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(VirtualTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::new(2.0), "late");
        q.push(VirtualTime::new(1.0), "tie-a");
        q.push(VirtualTime::new(1.0), "tie-b");
        q.push(VirtualTime::new(0.5), "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "tie-a", "tie-b", "late"]);
        assert_eq!(q.now().secs(), 2.0);
        assert!(q.is_empty());
    }

    #[test]
    fn clock_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), VirtualTime::ZERO);
        q.push(VirtualTime::new(3.5), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.secs(), 3.5);
        assert_eq!(q.now().secs(), 3.5);
        // Scheduling at the current instant is allowed.
        q.push(q.now(), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::new(2.0), ());
        q.pop();
        q.push(VirtualTime::new(1.0), ());
    }

    #[test]
    #[should_panic]
    fn nan_time_panics() {
        VirtualTime::new(f64::NAN);
    }

    #[test]
    fn after_advances() {
        let t = VirtualTime::new(1.0).after(0.25);
        assert_eq!(t.secs(), 1.25);
        assert!(VirtualTime::new(1.0) < t);
    }

    /// An event type with a real tie-break key, standing in for the
    /// simulator's `(kind rank, device id)` attribution.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Keyed(u8, u32);

    impl TieBreak for Keyed {
        fn tie_key(&self) -> (u8, u32) {
            (self.0, self.1)
        }
    }

    #[test]
    fn colliding_timestamps_pop_by_kind_then_device_not_push_order() {
        // Regression: ties used to pop in push order, so a schedule built
        // in a different order popped differently at exact timestamp
        // collisions. With the TieBreak key the pop order is a function of
        // the event set alone: (kind, device) ascending, whatever the push
        // order.
        let t = VirtualTime::new(1.0);
        let shuffled = [Keyed(3, 0), Keyed(0, 7), Keyed(2, 1), Keyed(0, 2)];
        let mut forward = EventQueue::new();
        for e in shuffled {
            forward.push(t, e);
        }
        let mut reversed = EventQueue::new();
        for e in shuffled.iter().rev() {
            reversed.push(t, *e);
        }
        let want = vec![Keyed(0, 2), Keyed(0, 7), Keyed(2, 1), Keyed(3, 0)];
        let a: Vec<Keyed> = std::iter::from_fn(|| forward.pop().map(|(_, e)| e)).collect();
        let b: Vec<Keyed> = std::iter::from_fn(|| reversed.pop().map(|(_, e)| e)).collect();
        assert_eq!(a, want);
        assert_eq!(b, want, "pop order depended on push order");
    }

    #[test]
    fn equal_keys_still_pop_fifo() {
        // Events whose keys also collide keep the original FIFO guarantee,
        // so the order stays total (and plain event types are unaffected).
        let mut q = EventQueue::new();
        let t = VirtualTime::new(2.0);
        q.push(t, Keyed(1, 1));
        q.push(t, Keyed(1, 1));
        q.push(VirtualTime::new(1.0), Keyed(9, 9));
        let order: Vec<(f64, Keyed)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.secs(), e))).collect();
        assert_eq!(
            order,
            vec![(1.0, Keyed(9, 9)), (2.0, Keyed(1, 1)), (2.0, Keyed(1, 1))]
        );
    }
}
