//! Discrete-event simulation of one synchronous training epoch.
//!
//! Each available device computes its local update, serializes its outbound
//! messages through its uplink (the burst's last message lands one
//! propagation latency after the upload completes), and then drains its
//! inbound payload through its downlink. The drain can start no earlier
//! than the device's own burst barrier — inbound payloads are produced by
//! the rest of the synchronous round and the device's link is serialized —
//! and, when the inbound side names its senders ([`Inbound::PerSender`]),
//! no earlier than the **latest of those senders' actual delivery times**.
//! (Earlier revisions first scheduled the drain from the receiver's own
//! `ComputeDone`, then from its own delivery time; both let a fast receiver
//! "drain" bytes its slow senders had not shipped yet, making makespans
//! optimistic exactly when a fast receiver's senders straggle.) The epoch
//! is synchronous (§IV-B): it ends when the last event fires, and the
//! device that fires it is the epoch's straggler.
//!
//! The simulator runs entirely on [`VirtualTime`] — no `Instant`, no real
//! clock — so identical inputs give bit-identical statistics.

use crate::profile::DeviceProfile;
use crate::runtime::{Control, EventDrivenRuntime};

/// Sender id marking payloads from the aggregation server rather than a
/// peer device. The server is not simulated, so its payloads are treated as
/// staged by the receiver's own burst barrier (the legacy approximation,
/// now scoped to the one endpoint that has no profile).
pub const SERVER_SENDER: u32 = u32::MAX;

/// A device's inbound payload for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Inbound {
    /// Aggregate bytes with no sender identity: the drain is self-timed
    /// from the receiver's own burst barrier — the legacy schedule, kept as
    /// the degenerate case the per-destination schedule collapses to.
    Aggregate(u64),
    /// Per-sender contributions `(sender, bytes)`. The drain starts at the
    /// latest of the receiver's own burst barrier and every named sender's
    /// burst delivery time. [`SERVER_SENDER`], the receiver itself, absent
    /// devices, and devices with no outbound burst contribute no constraint
    /// beyond the receiver's own barrier.
    PerSender(Vec<(u32, u64)>),
}

impl Default for Inbound {
    fn default() -> Self {
        Inbound::Aggregate(0)
    }
}

impl Inbound {
    /// Total inbound payload bytes.
    pub fn total_bytes(&self) -> u64 {
        match self {
            Inbound::Aggregate(b) => *b,
            Inbound::PerSender(list) => list.iter().map(|&(_, b)| b).sum(),
        }
    }
}

/// The work one device performs in one epoch, in the trainer's units
/// (compute: tree-nodes × layers; traffic: ledger-counted payload bytes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceWork {
    /// Local compute, in work units.
    pub compute_units: f64,
    /// Outbound messages (device → device and device → server).
    pub messages_out: u64,
    /// Outbound payload bytes.
    pub bytes_out: u64,
    /// Inbound payload (aggregate or per-sender).
    pub inbound: Inbound,
}

impl DeviceWork {
    /// Work with self-timed aggregate inbound bytes (the legacy shape).
    pub fn aggregate(compute_units: f64, messages_out: u64, bytes_out: u64, bytes_in: u64) -> Self {
        Self {
            compute_units,
            messages_out,
            bytes_out,
            inbound: Inbound::Aggregate(bytes_in),
        }
    }

    /// Total inbound payload bytes.
    pub fn bytes_in(&self) -> u64 {
        self.inbound.total_bytes()
    }

    /// Whether this device has anything to do this epoch.
    pub fn is_idle(&self) -> bool {
        self.compute_units == 0.0
            && self.messages_out == 0
            && self.bytes_out == 0
            && self.bytes_in() == 0
    }
}

/// What happened during one simulated epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Virtual seconds from epoch start to the last event — the epoch
    /// makespan under the synchronous barrier.
    pub makespan_secs: f64,
    /// Per-device busy time: the device's serialized critical path,
    /// compute + upload + propagation latency + downlink drain (latency
    /// included because the closing `Delivered`/`InboxDrained` events
    /// cannot fire before it). Time spent *waiting* for slow senders'
    /// payloads is idle, not busy.
    pub busy_secs: Vec<f64>,
    /// Per-device idle time (`makespan - busy`, zero for absent devices).
    pub idle_secs: Vec<f64>,
    /// When each device's own update landed: its burst delivery time, or
    /// its compute end when it shipped nothing. `None` for devices that
    /// were absent or idle this epoch. This is the per-sender signal the
    /// deadline aggregation policy reads.
    pub update_delivery_secs: Vec<Option<f64>>,
    /// The device whose event closed the epoch (None if nothing ran).
    pub straggler: Option<u32>,
    /// Devices that participated (available, regardless of workload).
    pub active_devices: usize,
    /// Events processed by the queue.
    pub events: u64,
}

impl EpochStats {
    /// Mean fraction of the makespan active devices spent busy
    /// (1.0 = perfectly balanced, → 0 under a dominant straggler).
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_secs <= 0.0 || self.active_devices == 0 {
            return 0.0;
        }
        let busy: f64 = self.busy_secs.iter().sum();
        busy / (self.active_devices as f64 * self.makespan_secs)
    }
}

/// Runs one epoch over the fleet and returns its statistics.
///
/// Devices with `available == false` contribute nothing (their update is
/// skipped this round). Under [`Inbound::Aggregate`] the simulation is the
/// legacy self-timed schedule; under [`Inbound::PerSender`] each receiver's
/// drain additionally waits for its senders' actual deliveries, so the
/// per-destination makespan dominates the aggregate one on the same work
/// and collapses to it bit-for-bit when every sender lands at or before the
/// receiver's own barrier (property-tested in `tests/sim_properties.rs`).
///
/// This is the synchronous barrier expressed on the event-driven core: an
/// [`EventDrivenRuntime`] run whose handler never closes the round — the
/// degenerate schedule every other aggregation policy is an early-exit of.
///
/// # Panics
/// Panics if `profiles` and `work` have different lengths.
pub fn simulate_epoch(profiles: &[DeviceProfile], work: &[DeviceWork]) -> EpochStats {
    EventDrivenRuntime::new(profiles, work).run(|_, _| Control::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_fleet(n: usize) -> Vec<DeviceProfile> {
        vec![DeviceProfile::baseline(); n]
    }

    fn work(units: f64, msgs: u64, out: u64, inb: u64) -> DeviceWork {
        DeviceWork::aggregate(units, msgs, out, inb)
    }

    #[test]
    fn empty_fleet_is_a_zero_epoch() {
        let stats = simulate_epoch(&[], &[]);
        assert_eq!(stats.makespan_secs, 0.0);
        assert_eq!(stats.straggler, None);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.mean_utilization(), 0.0);
    }

    #[test]
    fn straggler_is_the_heaviest_device() {
        let profiles = flat_fleet(3);
        let w = vec![
            work(100.0, 2, 128, 0),
            work(5000.0, 2, 128, 0), // 50× the compute of its peers
            work(100.0, 2, 128, 0),
        ];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(1));
        assert!(stats.makespan_secs >= 50.0); // 5000 units / 100 units-per-sec
        assert!(stats.busy_secs[1] > stats.busy_secs[0]);
        assert!(stats.idle_secs[0] > stats.idle_secs[1]);
        assert_eq!(stats.active_devices, 3);
    }

    #[test]
    fn slow_device_straggles_on_equal_work() {
        let mut profiles = flat_fleet(3);
        profiles[2].compute_rate /= 40.0;
        let w = vec![work(200.0, 1, 64, 64); 3];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(2));
        assert!(stats.mean_utilization() < 0.5, "straggler dominates");
    }

    #[test]
    fn unavailable_devices_are_skipped() {
        let mut profiles = flat_fleet(2);
        profiles[0].available = false;
        let w = vec![work(1e9, 0, 0, 0), work(100.0, 0, 0, 0)];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(1));
        assert_eq!(stats.active_devices, 1);
        assert_eq!(stats.busy_secs[0], 0.0);
        assert_eq!(stats.idle_secs[0], 0.0);
        assert_eq!(stats.update_delivery_secs[0], None);
        assert!((stats.makespan_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inbox_drains_only_after_delivery() {
        // Regression: the drain used to be scheduled from the receiver's
        // own ComputeDone, so this epoch closed at 3.5s — with the device
        // "draining" 100 inbound bytes that no sender could have shipped
        // yet. Corrected schedule: compute 1s → upload 2s → latency 0.5s →
        // download 1s, strictly serialized.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        let stats = simulate_epoch(&[p], &[work(10.0, 4, 200, 100)]);
        assert!((stats.makespan_secs - 4.5).abs() < 1e-12);
        // Events: compute done + burst delivered + inbox drained, and the
        // drain is the closing event.
        assert_eq!(stats.events, 3);
        assert_eq!(stats.straggler, Some(0));
        // The update landed when the burst did: compute + upload + latency.
        assert_eq!(stats.update_delivery_secs[0], Some(3.5));
    }

    #[test]
    fn drain_without_outbound_still_waits_for_propagation() {
        // A receive-only device cannot start draining at its own compute
        // barrier: the inbound payload crosses the network once.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 50.0,
            latency_secs: 0.25,
            available: true,
        };
        // compute 1s, no outbound, latency 0.25s, download 2s.
        let stats = simulate_epoch(&[p], &[work(10.0, 0, 0, 100)]);
        assert!((stats.makespan_secs - 3.25).abs() < 1e-12);
        assert_eq!(stats.events, 2, "compute done + inbox drained");
        // No burst: the device's "update" is just its local compute.
        assert_eq!(stats.update_delivery_secs[0], Some(1.0));
    }

    #[test]
    fn busy_time_includes_propagation_latency() {
        // Regression: busy used to be compute + max(upload, download),
        // omitting the latency the closing Delivered event includes — so a
        // lone device reported phantom idle time. Busy must equal the
        // device's own critical path exactly, making idle a bitwise zero.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        let stats = simulate_epoch(&[p], &[work(10.0, 4, 200, 100)]);
        assert_eq!(stats.busy_secs[0].to_bits(), stats.makespan_secs.to_bits());
        assert_eq!(stats.idle_secs[0], 0.0);
        assert_eq!(stats.mean_utilization(), 1.0);
        // Compute-only devices carry no phantom latency term.
        let quiet = simulate_epoch(&[p], &[work(10.0, 0, 0, 0)]);
        assert!((quiet.busy_secs[0] - 1.0).abs() < 1e-12);
        assert_eq!(quiet.events, 1);
    }

    #[test]
    fn receiver_waits_for_its_slowest_sender() {
        // The tentpole fix: device 0 is fast but its 100 inbound bytes come
        // from slow device 1, so its drain starts at device 1's delivery —
        // not at device 0's own barrier (the aggregate approximation).
        let mut profiles = flat_fleet(2);
        profiles[0] = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        profiles[1] = DeviceProfile {
            compute_rate: 1.0, // 10s compute
            uplink_bytes_per_sec: 50.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        let w = vec![
            DeviceWork {
                compute_units: 10.0, // 1s
                messages_out: 1,
                bytes_out: 200, // 2s upload
                inbound: Inbound::PerSender(vec![(1, 100)]),
            },
            DeviceWork {
                compute_units: 10.0, // 10s
                messages_out: 1,
                bytes_out: 100, // 2s upload
                inbound: Inbound::Aggregate(0),
            },
        ];
        let stats = simulate_epoch(&profiles, &w);
        // Device 1 delivers at 10 + 2 + 0.5 = 12.5s; device 0 then drains
        // 100 bytes in 1s → epoch closes at 13.5s, straggler = device 0.
        assert!((stats.makespan_secs - 13.5).abs() < 1e-12);
        assert_eq!(stats.straggler, Some(0));
        // Device 0's busy time excludes the 9s wait: 1 + 2 + 0.5 + 1.
        assert!((stats.busy_secs[0] - 4.5).abs() < 1e-12);
        assert!(stats.idle_secs[0] > 8.9);
        // Events: 2× ComputeDone + 2× Delivered + 1× Arrived(1→0) +
        // 1× InboxDrained(0).
        assert_eq!(stats.events, 6);
        // The aggregate approximation closed the same epoch at device 1's
        // delivery (12.5s): strictly optimistic.
        let approx = vec![
            work(10.0, 1, 200, 100),
            DeviceWork {
                inbound: Inbound::Aggregate(0),
                ..w[1].clone()
            },
        ];
        let old = simulate_epoch(&profiles, &approx);
        assert!(old.makespan_secs < stats.makespan_secs);
    }

    #[test]
    fn self_and_server_senders_collapse_to_the_aggregate_schedule() {
        // Inbound bytes from the receiver itself and from the server add no
        // constraint beyond the receiver's own barrier: the per-destination
        // schedule must equal the aggregate one bit for bit.
        let mut profiles = flat_fleet(3);
        for (i, p) in profiles.iter_mut().enumerate() {
            p.compute_rate = 50.0 / (i + 1) as f64;
        }
        let aggregate: Vec<DeviceWork> = (0..3).map(|i| work(100.0, 2, 300, 128 + i)).collect();
        let per_sender: Vec<DeviceWork> = (0..3u32)
            .map(|i| DeviceWork {
                inbound: Inbound::PerSender(vec![(i, 100), (SERVER_SENDER, 28 + i as u64)]),
                ..aggregate[i as usize].clone()
            })
            .collect();
        let a = simulate_epoch(&profiles, &aggregate);
        let b = simulate_epoch(&profiles, &per_sender);
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.straggler, b.straggler);
        assert_eq!(a.events, b.events);
        for d in 0..3 {
            assert_eq!(a.busy_secs[d].to_bits(), b.busy_secs[d].to_bits());
            assert_eq!(a.idle_secs[d].to_bits(), b.idle_secs[d].to_bits());
        }
    }

    #[test]
    fn duplicate_senders_schedule_one_arrival_per_edge() {
        // Regression: a sender repeated in a PerSender list used to push
        // the receiver into its out-edges once per occurrence, double-
        // scheduling Arrived events and inflating `events`. Splitting a
        // sender's bytes across ledger entries must be indistinguishable
        // from recording them summed.
        let profiles = flat_fleet(2);
        let split = vec![
            DeviceWork {
                compute_units: 10.0,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![(1, 64), (1, 64)]),
            },
            work(10.0, 1, 128, 0),
        ];
        let summed = vec![
            DeviceWork {
                inbound: Inbound::PerSender(vec![(1, 128)]),
                ..split[0].clone()
            },
            split[1].clone(),
        ];
        let a = simulate_epoch(&profiles, &split);
        let b = simulate_epoch(&profiles, &summed);
        assert_eq!(a.events, b.events, "duplicate sender inflated the count");
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.straggler, b.straggler);
    }

    #[test]
    fn absent_senders_never_block_the_round() {
        // Device 1 is offline this round; its recorded bytes toward device
        // 0 are treated as staged, so the drain is self-timed.
        let mut profiles = flat_fleet(2);
        profiles[1].available = false;
        let w = vec![
            DeviceWork {
                compute_units: 100.0,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![(1, 256)]),
            },
            work(100.0, 1, 64, 0),
        ];
        let stats = simulate_epoch(&profiles, &w);
        let self_timed = simulate_epoch(&profiles, &[work(100.0, 1, 64, 256), w[1].clone()]);
        assert_eq!(
            stats.makespan_secs.to_bits(),
            self_timed.makespan_secs.to_bits()
        );
        assert_eq!(stats.straggler, Some(0));
    }

    #[test]
    fn busy_never_exceeds_makespan() {
        let profiles = flat_fleet(4);
        let w = vec![
            DeviceWork {
                compute_units: 50.0,
                messages_out: 3,
                bytes_out: 900,
                inbound: Inbound::PerSender(vec![(1, 1500), (3, 500)]),
            },
            work(500.0, 1, 10, 0),
            work(0.0, 0, 0, 0),
            DeviceWork {
                compute_units: 20.0,
                messages_out: 8,
                bytes_out: 2000,
                inbound: Inbound::PerSender(vec![(0, 50)]),
            },
        ];
        let stats = simulate_epoch(&profiles, &w);
        for d in 0..4 {
            assert!(
                stats.busy_secs[d] <= stats.makespan_secs + 1e-12,
                "device {d} busy {} > makespan {}",
                stats.busy_secs[d],
                stats.makespan_secs
            );
            assert!(stats.idle_secs[d] >= 0.0);
        }
        let u = stats.mean_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn identical_inputs_give_identical_stats() {
        let mut profiles = flat_fleet(8);
        for (i, p) in profiles.iter_mut().enumerate() {
            p.compute_rate = 100.0 / (i + 1) as f64;
        }
        let w: Vec<DeviceWork> = (0..8u32)
            .map(|i| DeviceWork {
                compute_units: i as f64 * 30.0,
                messages_out: i as u64,
                bytes_out: 64 * i as u64,
                inbound: Inbound::PerSender(vec![((i + 1) % 8, 32)]),
            })
            .collect();
        let a = simulate_epoch(&profiles, &w);
        let b = simulate_epoch(&profiles, &w);
        assert_eq!(a, b);
    }
}
