//! Discrete-event simulation of one synchronous training epoch.
//!
//! Each available device computes its local update, serializes its outbound
//! messages through its uplink (the burst's last message lands one
//! propagation latency after the upload completes), and then drains its
//! inbound payload through its downlink. The drain starts at the device's
//! delivery time — inbound payloads are produced by the rest of the
//! synchronous round and cross the network once, so a device cannot consume
//! them straight off its own compute barrier. (An earlier revision
//! scheduled the drain from the receiver's own `ComputeDone`, letting a
//! device "drain" server payloads before any sender could have shipped
//! them.) The epoch is synchronous (§IV-B): it ends when the last event
//! fires, and the device that fires it is the epoch's straggler.
//!
//! The simulator runs entirely on [`VirtualTime`] — no `Instant`, no real
//! clock — so identical inputs give bit-identical statistics.

use crate::profile::DeviceProfile;
use crate::queue::{EventQueue, VirtualTime};

/// The work one device performs in one epoch, in the trainer's units
/// (compute: tree-nodes × layers; traffic: ledger-counted payload bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceWork {
    /// Local compute, in work units.
    pub compute_units: f64,
    /// Outbound messages (device → device and device → server).
    pub messages_out: u64,
    /// Outbound payload bytes.
    pub bytes_out: u64,
    /// Inbound payload bytes.
    pub bytes_in: u64,
}

impl DeviceWork {
    /// Whether this device has anything to do this epoch.
    pub fn is_idle(&self) -> bool {
        self.compute_units == 0.0
            && self.messages_out == 0
            && self.bytes_out == 0
            && self.bytes_in == 0
    }
}

/// What happened during one simulated epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Virtual seconds from epoch start to the last event — the epoch
    /// makespan under the synchronous barrier.
    pub makespan_secs: f64,
    /// Per-device busy time: the device's serialized critical path,
    /// compute + upload + propagation latency + downlink drain (latency
    /// included because the closing `Delivered`/`InboxDrained` events
    /// cannot fire before it).
    pub busy_secs: Vec<f64>,
    /// Per-device idle time (`makespan - busy`, zero for absent devices).
    pub idle_secs: Vec<f64>,
    /// The device whose event closed the epoch (None if nothing ran).
    pub straggler: Option<u32>,
    /// Devices that participated (available, regardless of workload).
    pub active_devices: usize,
    /// Events processed by the queue.
    pub events: u64,
}

impl EpochStats {
    /// Mean fraction of the makespan active devices spent busy
    /// (1.0 = perfectly balanced, → 0 under a dominant straggler).
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan_secs <= 0.0 || self.active_devices == 0 {
            return 0.0;
        }
        let busy: f64 = self.busy_secs.iter().sum();
        busy / (self.active_devices as f64 * self.makespan_secs)
    }
}

/// Simulation events; each is attributed to the device that caused it.
enum Event {
    /// Local compute finished.
    ComputeDone(u32),
    /// The last message of the device's outbound burst arrived.
    Delivered(u32),
    /// All inbound payload drained through the downlink.
    InboxDrained(u32),
}

impl Event {
    fn device(&self) -> u32 {
        match *self {
            Event::ComputeDone(d) | Event::Delivered(d) | Event::InboxDrained(d) => d,
        }
    }
}

/// Runs one epoch over the fleet and returns its statistics.
///
/// Devices with `available == false` contribute nothing (their update is
/// skipped this round); the simulation is a timing overlay and never
/// changes what the trainer computes.
///
/// # Panics
/// Panics if `profiles` and `work` have different lengths.
pub fn simulate_epoch(profiles: &[DeviceProfile], work: &[DeviceWork]) -> EpochStats {
    assert_eq!(
        profiles.len(),
        work.len(),
        "one workload entry per device profile"
    );
    let n = profiles.len();
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut busy = vec![0.0f64; n];
    let mut active = 0usize;

    for (d, (p, w)) in profiles.iter().zip(work).enumerate() {
        if !p.available {
            continue;
        }
        active += 1;
        if w.is_idle() {
            continue;
        }
        p.validate();
        let compute_end = VirtualTime::new(p.compute_secs(w.compute_units));
        queue.push(compute_end, Event::ComputeDone(d as u32));
        let upload = p.upload_secs(w.bytes_out);
        let download = p.download_secs(w.bytes_in);
        // Busy time mirrors the event chain exactly (same additions in the
        // same order, so the straggler's idle time is a bitwise 0.0): any
        // traffic serializes upload → latency → drain after the compute.
        let has_traffic = w.messages_out > 0 || w.bytes_out > 0 || w.bytes_in > 0;
        busy[d] = if has_traffic {
            ((compute_end.secs() + upload) + p.latency_secs) + download
        } else {
            compute_end.secs()
        };
    }

    let mut events = 0u64;
    let mut straggler = None;
    let mut makespan = VirtualTime::ZERO;
    while let Some((t, ev)) = queue.pop() {
        events += 1;
        makespan = t;
        straggler = Some(ev.device());
        let d = ev.device() as usize;
        let (p, w) = (&profiles[d], &work[d]);
        match ev {
            Event::ComputeDone(dev) => {
                // Uplink: messages serialize, so the burst's last message
                // lands one latency after the whole upload ends. Earlier
                // deliveries are strictly before it and observable by
                // nothing (aggregate ledger, analytic busy time), so only
                // the closing delivery is scheduled — makespan and
                // straggler are identical to the per-message schedule at
                // O(1) events per device.
                let delivered = t.after(p.upload_secs(w.bytes_out)).after(p.latency_secs);
                if w.messages_out > 0 || w.bytes_out > 0 {
                    queue.push(delivered, Event::Delivered(dev));
                }
                // Downlink: inbound payloads exist only once the round's
                // sends have crossed the network, so the drain starts at
                // the delivery time — never at the receiver's own compute
                // barrier. A device with no outbound burst still waits one
                // propagation latency for the inbound bytes to arrive.
                if w.bytes_in > 0 {
                    queue.push(
                        delivered.after(p.download_secs(w.bytes_in)),
                        Event::InboxDrained(dev),
                    );
                }
            }
            Event::Delivered(_) | Event::InboxDrained(_) => {}
        }
    }

    let makespan_secs = makespan.secs();
    let idle = profiles
        .iter()
        .zip(&busy)
        .map(|(p, &b)| {
            if p.available {
                // Busy is each device's own last-event time, computed with
                // the exact float additions of the event chain, so it can
                // never exceed the makespan — no clamp needed (a clamp
                // here once masked the missing latency term).
                let idle = makespan_secs - b;
                debug_assert!(idle >= 0.0, "busy {b} exceeds makespan {makespan_secs}");
                idle
            } else {
                0.0
            }
        })
        .collect();
    EpochStats {
        makespan_secs,
        busy_secs: busy,
        idle_secs: idle,
        straggler,
        active_devices: active,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_fleet(n: usize) -> Vec<DeviceProfile> {
        vec![DeviceProfile::baseline(); n]
    }

    fn work(units: f64, msgs: u64, out: u64, inb: u64) -> DeviceWork {
        DeviceWork {
            compute_units: units,
            messages_out: msgs,
            bytes_out: out,
            bytes_in: inb,
        }
    }

    #[test]
    fn empty_fleet_is_a_zero_epoch() {
        let stats = simulate_epoch(&[], &[]);
        assert_eq!(stats.makespan_secs, 0.0);
        assert_eq!(stats.straggler, None);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.mean_utilization(), 0.0);
    }

    #[test]
    fn straggler_is_the_heaviest_device() {
        let profiles = flat_fleet(3);
        let w = vec![
            work(100.0, 2, 128, 0),
            work(5000.0, 2, 128, 0), // 50× the compute of its peers
            work(100.0, 2, 128, 0),
        ];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(1));
        assert!(stats.makespan_secs >= 50.0); // 5000 units / 100 units-per-sec
        assert!(stats.busy_secs[1] > stats.busy_secs[0]);
        assert!(stats.idle_secs[0] > stats.idle_secs[1]);
        assert_eq!(stats.active_devices, 3);
    }

    #[test]
    fn slow_device_straggles_on_equal_work() {
        let mut profiles = flat_fleet(3);
        profiles[2].compute_rate /= 40.0;
        let w = vec![work(200.0, 1, 64, 64); 3];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(2));
        assert!(stats.mean_utilization() < 0.5, "straggler dominates");
    }

    #[test]
    fn unavailable_devices_are_skipped() {
        let mut profiles = flat_fleet(2);
        profiles[0].available = false;
        let w = vec![work(1e9, 0, 0, 0), work(100.0, 0, 0, 0)];
        let stats = simulate_epoch(&profiles, &w);
        assert_eq!(stats.straggler, Some(1));
        assert_eq!(stats.active_devices, 1);
        assert_eq!(stats.busy_secs[0], 0.0);
        assert_eq!(stats.idle_secs[0], 0.0);
        assert!((stats.makespan_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inbox_drains_only_after_delivery() {
        // Regression: the drain used to be scheduled from the receiver's
        // own ComputeDone, so this epoch closed at 3.5s — with the device
        // "draining" 100 inbound bytes that no sender could have shipped
        // yet. Corrected schedule: compute 1s → upload 2s → latency 0.5s →
        // download 1s, strictly serialized.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        let stats = simulate_epoch(&[p], &[work(10.0, 4, 200, 100)]);
        assert!((stats.makespan_secs - 4.5).abs() < 1e-12);
        // Events: compute done + burst delivered + inbox drained, and the
        // drain is the closing event.
        assert_eq!(stats.events, 3);
        assert_eq!(stats.straggler, Some(0));
    }

    #[test]
    fn drain_without_outbound_still_waits_for_propagation() {
        // A receive-only device cannot start draining at its own compute
        // barrier: the inbound payload crosses the network once.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 50.0,
            latency_secs: 0.25,
            available: true,
        };
        // compute 1s, no outbound, latency 0.25s, download 2s.
        let stats = simulate_epoch(&[p], &[work(10.0, 0, 0, 100)]);
        assert!((stats.makespan_secs - 3.25).abs() < 1e-12);
        assert_eq!(stats.events, 2, "compute done + inbox drained");
    }

    #[test]
    fn busy_time_includes_propagation_latency() {
        // Regression: busy used to be compute + max(upload, download),
        // omitting the latency the closing Delivered event includes — so a
        // lone device reported phantom idle time. Busy must equal the
        // device's own critical path exactly, making idle a bitwise zero.
        let p = DeviceProfile {
            compute_rate: 10.0,
            uplink_bytes_per_sec: 100.0,
            downlink_bytes_per_sec: 100.0,
            latency_secs: 0.5,
            available: true,
        };
        let stats = simulate_epoch(&[p], &[work(10.0, 4, 200, 100)]);
        assert_eq!(stats.busy_secs[0].to_bits(), stats.makespan_secs.to_bits());
        assert_eq!(stats.idle_secs[0], 0.0);
        assert_eq!(stats.mean_utilization(), 1.0);
        // Compute-only devices carry no phantom latency term.
        let quiet = simulate_epoch(&[p], &[work(10.0, 0, 0, 0)]);
        assert!((quiet.busy_secs[0] - 1.0).abs() < 1e-12);
        assert_eq!(quiet.events, 1);
    }

    #[test]
    fn busy_never_exceeds_makespan() {
        let profiles = flat_fleet(4);
        let w = vec![
            work(50.0, 3, 900, 2000),
            work(500.0, 1, 10, 0),
            work(0.0, 0, 0, 0),
            work(20.0, 8, 2000, 50),
        ];
        let stats = simulate_epoch(&profiles, &w);
        for d in 0..4 {
            assert!(
                stats.busy_secs[d] <= stats.makespan_secs + 1e-12,
                "device {d} busy {} > makespan {}",
                stats.busy_secs[d],
                stats.makespan_secs
            );
            assert!(stats.idle_secs[d] >= 0.0);
        }
        let u = stats.mean_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn identical_inputs_give_identical_stats() {
        let mut profiles = flat_fleet(8);
        for (i, p) in profiles.iter_mut().enumerate() {
            p.compute_rate = 100.0 / (i + 1) as f64;
        }
        let w: Vec<DeviceWork> = (0..8)
            .map(|i| work(i as f64 * 30.0, i as u64, 64 * i as u64, 32))
            .collect();
        let a = simulate_epoch(&profiles, &w);
        let b = simulate_epoch(&profiles, &w);
        assert_eq!(a, b);
    }
}
