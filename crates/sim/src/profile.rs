//! Per-device capability profiles and heterogeneity distributions.
//!
//! The paper's Definition 3 heterogeneity is about *degree* (workload);
//! decentralized deployments add *capability* heterogeneity on top: phones
//! compute at different rates, uplinks are asymmetric and skewed, and
//! devices come and go. A [`DeviceProfile`] captures one device's
//! capabilities; [`Heterogeneity`] is a seeded sampler over slowdown
//! multipliers that turns a fleet baseline into mild → extreme skew.

use lumos_common::dist::Normal;
use lumos_common::rng::Xoshiro256pp;

/// Capabilities of one simulated device.
///
/// Rates are in abstract units per virtual second: compute consumes *work
/// units* (the trainer uses tree-nodes × layers, the same unit as
/// `CostModel::per_tree_node`), links consume payload bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Work units executed per virtual second (> 0).
    pub compute_rate: f64,
    /// Uplink throughput in bytes per virtual second (> 0).
    pub uplink_bytes_per_sec: f64,
    /// Downlink throughput in bytes per virtual second (> 0).
    pub downlink_bytes_per_sec: f64,
    /// Fixed per-message propagation latency in virtual seconds (>= 0).
    pub latency_secs: f64,
    /// Whether the device participates in the current round.
    pub available: bool,
}

impl DeviceProfile {
    /// The fleet baseline: a mid-range device with a mobile-like asymmetric
    /// link (downlink faster than uplink).
    pub fn baseline() -> Self {
        Self {
            compute_rate: 100.0,
            uplink_bytes_per_sec: 4096.0,
            downlink_bytes_per_sec: 16384.0,
            latency_secs: 0.01,
            available: true,
        }
    }

    /// Virtual seconds to execute `work` units locally.
    pub fn compute_secs(&self, work: f64) -> f64 {
        work / self.compute_rate
    }

    /// Virtual seconds to push `bytes` through the uplink (excluding the
    /// fixed latency).
    pub fn upload_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.uplink_bytes_per_sec
    }

    /// Virtual seconds to drain `bytes` from the downlink.
    pub fn download_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.downlink_bytes_per_sec
    }

    /// Fixed-point cost of one retained tree node on this device, in
    /// virtual **microseconds**: `layers` work units of compute plus one
    /// embedding-sized message through each link direction per epoch. This
    /// is the per-node price the `VirtualSecs` balance objective feeds to
    /// the secure comparisons, which operate on integers — hence the µs
    /// fixed point. Clamped to ≥ 1 so the weighted workload of a non-empty
    /// tree is never zero.
    pub fn micros_per_tree_node(&self, layers: usize, embedding_bytes: u64) -> u64 {
        let secs = self.compute_secs(layers as f64)
            + self.upload_secs(embedding_bytes)
            + self.download_secs(embedding_bytes);
        // lumos-lint: allow(lossy-cast) — deliberate fixed-point encode: f64→u64 `as` saturates (never wraps), inputs are finite positive seconds, and .max(1) pins the floor
        ((secs * 1e6).round() as u64).max(1)
    }

    /// Checks every rate is positive and finite.
    pub fn validate(&self) {
        assert!(
            self.compute_rate.is_finite() && self.compute_rate > 0.0,
            "compute_rate must be positive"
        );
        assert!(
            self.uplink_bytes_per_sec.is_finite() && self.uplink_bytes_per_sec > 0.0,
            "uplink must be positive"
        );
        assert!(
            self.downlink_bytes_per_sec.is_finite() && self.downlink_bytes_per_sec > 0.0,
            "downlink must be positive"
        );
        assert!(
            self.latency_secs.is_finite() && self.latency_secs >= 0.0,
            "latency must be >= 0"
        );
    }
}

/// Seeded samplers over *slowdown* multipliers (s >= small bound; a device
/// with slowdown `s` runs its resource at `baseline / s`).
///
/// The presets span the heterogeneity regimes the scenario sweep compares:
/// `Uniform` (none), `Jitter` (mild, bounded), `LogNormal` (moderate,
/// multiplicative noise), `Pareto` (extreme, heavy straggler tail — the
/// capability analogue of the degree power law in `lumos_common::dist`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Heterogeneity {
    /// Every device identical: slowdown exactly 1.
    Uniform,
    /// Slowdown uniform in `[1 - spread, 1 + spread]`, `spread` in `[0, 1)`.
    Jitter {
        /// Half-width of the uniform slowdown interval.
        spread: f64,
    },
    /// Slowdown `exp(sigma · N(0, 1))`: median 1, multiplicative skew.
    LogNormal {
        /// Log-scale standard deviation.
        sigma: f64,
    },
    /// Slowdown `(1 - U)^{-1/alpha}` >= 1: a Pareto straggler tail that
    /// gets heavier as `alpha` shrinks.
    Pareto {
        /// Tail index (> 0); smaller means more extreme stragglers.
        alpha: f64,
    },
}

/// Slowdowns are clamped into this range so a pathological draw cannot
/// produce a device that never finishes (or one that is infinitely fast).
const SLOWDOWN_RANGE: (f64, f64) = (0.05, 1000.0);

impl Heterogeneity {
    /// Draws one slowdown multiplier.
    pub fn sample_slowdown(&self, rng: &mut Xoshiro256pp) -> f64 {
        let raw = match *self {
            Heterogeneity::Uniform => 1.0,
            Heterogeneity::Jitter { spread } => {
                assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
                rng.range_f64(1.0 - spread, 1.0 + spread)
            }
            Heterogeneity::LogNormal { sigma } => Normal::new(0.0, sigma).sample(rng).exp(),
            Heterogeneity::Pareto { alpha } => {
                assert!(alpha > 0.0, "pareto alpha must be positive");
                (1.0 - rng.next_f64()).powf(-1.0 / alpha)
            }
        };
        raw.clamp(SLOWDOWN_RANGE.0, SLOWDOWN_RANGE.1)
    }
}

/// How a scenario skews the fleet: independent slowdowns for compute and
/// for the link (both directions share the link draw — a device on a bad
/// network is bad both ways).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Baseline profile every device starts from.
    pub base: DeviceProfile,
    /// Compute-rate slowdown distribution.
    pub compute: Heterogeneity,
    /// Link-throughput slowdown distribution.
    pub link: Heterogeneity,
    /// Per-round probability an available device drops out.
    pub dropout: f64,
    /// Per-round probability a dropped device rejoins.
    pub rejoin: f64,
}

impl FleetSpec {
    /// Samples one device profile: one compute slowdown, one link slowdown.
    /// (Distributions consume different RNG draw counts, so per-device
    /// draws do **not** line up across scenarios — each scenario is its
    /// own stream, deterministic only against itself.)
    pub fn sample_profile(&self, rng: &mut Xoshiro256pp) -> DeviceProfile {
        let compute_slowdown = self.compute.sample_slowdown(rng);
        let link_slowdown = self.link.sample_slowdown(rng);
        let p = DeviceProfile {
            compute_rate: self.base.compute_rate / compute_slowdown,
            uplink_bytes_per_sec: self.base.uplink_bytes_per_sec / link_slowdown,
            downlink_bytes_per_sec: self.base.downlink_bytes_per_sec / link_slowdown,
            latency_secs: self.base.latency_secs * link_slowdown,
            available: true,
        };
        p.validate();
        p
    }

    /// Samples a fleet of `n` profiles.
    pub fn sample_fleet(&self, n: usize, rng: &mut Xoshiro256pp) -> Vec<DeviceProfile> {
        (0..n).map(|_| self.sample_profile(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(0x5131_2001)
    }

    #[test]
    fn baseline_is_valid_and_asymmetric() {
        let p = DeviceProfile::baseline();
        p.validate();
        assert!(p.downlink_bytes_per_sec > p.uplink_bytes_per_sec);
        assert_eq!(p.compute_secs(200.0), 2.0);
        assert!(p.upload_secs(4096) > p.download_secs(4096));
    }

    #[test]
    fn per_node_micros_track_capability() {
        let base = DeviceProfile::baseline();
        let mut slow = base;
        slow.compute_rate /= 50.0;
        // Slower compute ⇒ strictly more µs per tree node.
        assert!(slow.micros_per_tree_node(2, 64) > base.micros_per_tree_node(2, 64));
        // Baseline, 2 layers, 64-byte embeddings: 2/100 s compute +
        // 64/4096 s up + 64/16384 s down = 39,531.25 µs, rounded.
        assert_eq!(base.micros_per_tree_node(2, 64), 39_531);
        // Even a degenerate zero-work node costs at least 1 µs.
        let fast = DeviceProfile {
            compute_rate: 1e12,
            uplink_bytes_per_sec: 1e12,
            downlink_bytes_per_sec: 1e12,
            latency_secs: 0.0,
            available: true,
        };
        assert_eq!(fast.micros_per_tree_node(0, 0), 1);
    }

    #[test]
    fn uniform_slowdown_is_exactly_one() {
        let mut r = rng();
        for _ in 0..32 {
            assert_eq!(Heterogeneity::Uniform.sample_slowdown(&mut r), 1.0);
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = rng();
        let h = Heterogeneity::Jitter { spread: 0.3 };
        for _ in 0..10_000 {
            let s = h.sample_slowdown(&mut r);
            assert!((0.7..1.3).contains(&s), "slowdown {s} out of band");
        }
    }

    #[test]
    fn pareto_has_a_heavier_tail_than_lognormal() {
        let mut r = rng();
        let n = 50_000;
        let max_of = |h: Heterogeneity, r: &mut Xoshiro256pp| {
            (0..n).map(|_| h.sample_slowdown(r)).fold(0.0f64, f64::max)
        };
        let pareto_max = max_of(Heterogeneity::Pareto { alpha: 1.2 }, &mut r);
        let lognormal_max = max_of(Heterogeneity::LogNormal { sigma: 0.5 }, &mut r);
        assert!(
            pareto_max > 2.0 * lognormal_max,
            "pareto {pareto_max} vs lognormal {lognormal_max}"
        );
    }

    #[test]
    fn slowdowns_are_clamped() {
        let mut r = rng();
        let h = Heterogeneity::Pareto { alpha: 0.2 };
        for _ in 0..50_000 {
            let s = h.sample_slowdown(&mut r);
            assert!(s <= SLOWDOWN_RANGE.1 && s >= SLOWDOWN_RANGE.0);
        }
    }

    #[test]
    fn fleet_sampling_is_seed_deterministic() {
        let spec = FleetSpec {
            base: DeviceProfile::baseline(),
            compute: Heterogeneity::Pareto { alpha: 1.5 },
            link: Heterogeneity::LogNormal { sigma: 0.4 },
            dropout: 0.0,
            rejoin: 1.0,
        };
        let a = spec.sample_fleet(64, &mut Xoshiro256pp::seed_from_u64(9));
        let b = spec.sample_fleet(64, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
        for p in &a {
            p.validate();
        }
        // Pareto slowdowns only slow devices down relative to baseline.
        assert!(a
            .iter()
            .all(|p| p.compute_rate <= DeviceProfile::baseline().compute_rate));
    }
}
