//! Seeded, fully deterministic fault injection and recovery.
//!
//! [`FaultSpec`] names *what can go wrong* — per-device mid-round crashes,
//! per-send message loss and duplication, aggregator outage windows — and
//! [`RecoveryPolicy`] names *what the runtime does about it*: a per-send
//! timeout, exponential backoff with seeded jitter, and a retry budget.
//! [`FaultState`] owns a dedicated RNG stream (domain-separated from the
//! trainer's and the scenario's, same idiom as `ScenarioState`) and
//! compiles each round's concrete outcomes into a static [`FaultPlan`]
//! *before* the round's event schedule is built, so
//! [`EventDrivenRuntime`](crate::runtime::EventDrivenRuntime) can price a
//! faulty round exactly as it prices a clean one: every crash, loss, and
//! retry is an event under the existing `TieBreak` total order, and the
//! same seed plus the same spec replays the same faults bit for bit.
//!
//! All retry/backoff arithmetic runs in saturating fixed-point
//! microseconds (the workspace's µs cost idiom) and converts to `f64`
//! seconds exactly once, at the schedule boundary — no narrowing `as`
//! casts anywhere in the chain.
//!
//! Exhausted sends never vanish: the runtime reports them with a `None`
//! delivery, and the trainer degrades them into the staleness buffer (the
//! PR 6 machinery), so an update either retries until it lands or is
//! carried to a later round.

use std::collections::BTreeMap;

use lumos_common::rng::Xoshiro256pp;

use crate::profile::DeviceProfile;

/// Hard ceiling on retries per send, regardless of the configured budget.
/// This is what makes "loss rate 1.0 with an unbounded budget" terminate:
/// past the cap the send is declared exhausted and degrades into the
/// staleness buffer instead of retrying forever.
pub const HARD_RETRY_CAP: u32 = 16;

/// Crash instants are drawn uniformly from this fraction of the device's
/// compute span, so a crash always interrupts real mid-round work (never
/// "at the very start" or "after everything finished").
const CRASH_FRAC_RANGE: (f64, f64) = (0.05, 0.95);

/// One aggregator's outage: the shard it serves re-homes to its
/// deterministic successor for every round in `[from_round, until_round)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The aggregator (shard index) that is down.
    pub aggregator: u32,
    /// First round of the outage (0-based, inclusive).
    pub from_round: u64,
    /// First round after the outage (exclusive).
    pub until_round: u64,
}

impl OutageWindow {
    /// Whether this window covers `round`.
    pub fn covers(&self, round: u64) -> bool {
        (self.from_round..self.until_round).contains(&round)
    }
}

/// What can go wrong, per round. The default [`FaultSpec::None`] injects
/// nothing and is bit-identical to a fault-free run by construction (the
/// runtime takes the exact same code path).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum FaultSpec {
    /// No faults: the seed's behavior, bit for bit.
    #[default]
    None,
    /// Seeded fault injection.
    Faults {
        /// Per-device probability of crashing mid-round (each round).
        crash_rate: f64,
        /// Per-attempt probability that a send is lost in transit.
        loss_rate: f64,
        /// Per-send probability of a duplicate delivery (receivers
        /// deduplicate by round sequence, so a duplicate costs traffic
        /// accounting only, never correctness or timing).
        duplicate_rate: f64,
        /// Aggregator outage windows (hierarchical topologies only).
        outages: Vec<OutageWindow>,
    },
}

impl FaultSpec {
    /// True for the fault-free default.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// Message faults only: loss at `loss_rate`, no crashes, no
    /// duplication, no outages.
    pub fn message_loss(loss_rate: f64) -> Self {
        FaultSpec::Faults {
            crash_rate: 0.0,
            loss_rate,
            duplicate_rate: 0.0,
            outages: Vec::new(),
        }
    }

    /// The outage windows (empty for [`FaultSpec::None`]).
    pub fn outages(&self) -> &[OutageWindow] {
        match self {
            FaultSpec::None => &[],
            FaultSpec::Faults { outages, .. } => outages,
        }
    }

    /// Checks the spec's parameters; call at configuration time.
    ///
    /// # Panics
    /// Panics if any rate is not a finite probability in `[0, 1]`, or if
    /// an outage window is empty or inverted.
    pub fn validate(&self) {
        if let FaultSpec::Faults {
            crash_rate,
            loss_rate,
            duplicate_rate,
            outages,
        } = self
        {
            for (name, rate) in [
                ("crash_rate", crash_rate),
                ("loss_rate", loss_rate),
                ("duplicate_rate", duplicate_rate),
            ] {
                assert!(
                    rate.is_finite() && (0.0..=1.0).contains(rate),
                    "{name} must be a probability in [0, 1], got {rate}"
                );
            }
            for w in outages {
                assert!(
                    w.from_round < w.until_round,
                    "outage window for aggregator {} is empty: [{}, {})",
                    w.aggregator,
                    w.from_round,
                    w.until_round
                );
            }
        }
    }
}

/// How lost sends are recovered: detect after a timeout, retry with
/// exponential backoff plus seeded jitter, give up after a budget. All
/// durations are fixed-point microseconds (the workspace µs idiom), so
/// the arithmetic saturates instead of silently truncating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How long the sender waits before declaring an attempt lost, in µs.
    pub timeout_us: u64,
    /// Backoff before retry `i` is `backoff_base_us × 2^i`, in µs.
    pub backoff_base_us: u64,
    /// Seeded jitter added to each backoff, drawn uniformly from
    /// `[0, jitter_us)`, in µs. Zero disables jitter.
    pub jitter_us: u64,
    /// Retries allowed per send before it is declared exhausted and
    /// degrades into the staleness buffer. Clamped to [`HARD_RETRY_CAP`],
    /// so even `u32::MAX` ("retry forever") terminates.
    pub retry_budget: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            timeout_us: 1_000_000,
            backoff_base_us: 500_000,
            jitter_us: 100_000,
            retry_budget: 3,
        }
    }
}

impl RecoveryPolicy {
    /// The budget actually executed: the configured one, capped at
    /// [`HARD_RETRY_CAP`] so every send terminates.
    pub fn effective_budget(&self) -> u32 {
        self.retry_budget.min(HARD_RETRY_CAP)
    }

    /// Backoff before retry `retry` (0-based), in µs: exponential,
    /// saturating at `u64::MAX` instead of wrapping.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        let factor = 1u64.checked_shl(retry).unwrap_or(u64::MAX);
        self.backoff_base_us.saturating_mul(factor)
    }
}

/// Fixed-point µs to `f64` seconds, at the schedule boundary only. The
/// widening `u64 → f64` cast is exact for every delay the saturating µs
/// chain can produce within a simulated round.
pub fn us_to_secs(us: u64) -> f64 {
    us as f64 * 1e-6
}

/// The compiled outcome of one send under the plan: which attempts are
/// lost (and the timeout + backoff + jitter delay before each retry),
/// whether the retry budget ran out, and whether a duplicate rides along.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SendFaults {
    /// Delay before each retry, in µs: `timeout + backoff(i) + jitter_i`
    /// for the `i`-th lost attempt. One entry per retry performed.
    pub retry_delays_us: Vec<u64>,
    /// The final attempt was also lost: the send never lands and the
    /// update degrades into the staleness buffer.
    pub exhausted: bool,
    /// Duplicate deliveries drawn for this send (accounting only).
    pub duplicates: u32,
}

impl SendFaults {
    /// No faults at all: the send lands on the first attempt.
    pub fn is_clean(&self) -> bool {
        self.retry_delays_us.is_empty() && !self.exhausted && self.duplicates == 0
    }

    /// Attempts lost in transit (retries, plus the final attempt when the
    /// budget ran out).
    pub fn lost_attempts(&self) -> u64 {
        self.retry_delays_us.len() as u64 + u64::from(self.exhausted)
    }

    /// Retries performed.
    pub fn retries(&self) -> u64 {
        self.retry_delays_us.len() as u64
    }

    /// Total timeout + backoff + jitter delay across all retries, in µs
    /// (saturating).
    pub fn total_delay_us(&self) -> u64 {
        self.retry_delays_us
            .iter()
            .fold(0u64, |acc, &d| acc.saturating_add(d))
    }
}

/// Recovery counters accumulated across rounds; the trainer surfaces them
/// as the report's `SimSummary` fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultCounters {
    /// Send attempts lost in transit.
    pub lost_messages: u64,
    /// Retries performed.
    pub retries: u64,
    /// Virtual seconds spent in timeout + backoff before retries.
    pub retry_secs: f64,
    /// Device-rounds ended by a mid-round crash.
    pub crashed_devices: u64,
    /// Sends whose retry budget ran out (each degrades into the
    /// staleness buffer — never silently dropped).
    pub exhausted_sends: u64,
    /// Duplicate deliveries drawn.
    pub duplicated_messages: u64,
    /// Shard-rounds served by a failover successor aggregator.
    pub failovers: u64,
}

impl FaultCounters {
    /// Adds another round's counters into this cumulative total.
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.lost_messages += other.lost_messages;
        self.retries += other.retries;
        self.retry_secs += other.retry_secs;
        self.crashed_devices += other.crashed_devices;
        self.exhausted_sends += other.exhausted_sends;
        self.duplicated_messages += other.duplicated_messages;
        self.failovers += other.failovers;
    }
}

/// One round's concrete fault outcomes, compiled from the spec's seeded
/// stream before the round's schedule is built. Every draw happens here;
/// the runtime only reads the plan, so the schedule stays a pure function
/// of `(profiles, work, plan)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `Some(fraction of the compute span)` per device that crashes this
    /// round; `None` for survivors and unavailable devices.
    crash_frac: Vec<Option<f64>>,
    /// Per-device outcome of the round's update upload (the
    /// device → aggregator/server send).
    upload: Vec<SendFaults>,
    /// Outcomes of explicitly enumerated cross-device edges; edges absent
    /// from the map are fault-free.
    edges: BTreeMap<(u32, u32), SendFaults>,
}

impl FaultPlan {
    /// Fleet size the plan was compiled for.
    pub fn num_devices(&self) -> usize {
        self.crash_frac.len()
    }

    /// The crash instant of device `d`, as a fraction of its compute
    /// span; `None` when it survives the round.
    pub fn crash_frac(&self, d: usize) -> Option<f64> {
        self.crash_frac.get(d).copied().flatten()
    }

    /// The upload outcome of device `d` (clean when out of range).
    pub fn upload(&self, d: usize) -> Option<&SendFaults> {
        self.upload.get(d).filter(|s| !s.is_clean())
    }

    /// The outcome of the cross edge `from → to`, when it has faults.
    pub fn edge(&self, from: u32, to: u32) -> Option<&SendFaults> {
        self.edges.get(&(from, to))
    }

    /// True when the plan injects nothing (every outcome clean).
    pub fn is_clean(&self) -> bool {
        self.crash_frac.iter().all(Option::is_none)
            && self.upload.iter().all(SendFaults::is_clean)
            && self.edges.is_empty()
    }

    /// Devices that crash this round, restricted to the currently
    /// available fleet (an absent device cannot crash).
    pub fn crashed_devices(&self, available: &[bool]) -> Vec<u32> {
        self.crash_frac
            .iter()
            .zip(available)
            .enumerate()
            .filter(|&(_, (c, &avail))| avail && c.is_some())
            .map(|(d, _)| u32::try_from(d).expect("fleet fits in u32"))
            .collect()
    }

    /// Devices whose upload retry budget ran out this round (available
    /// and not crashed): their updates degrade into the staleness buffer.
    pub fn exhausted_uploads(&self, available: &[bool]) -> Vec<u32> {
        self.upload
            .iter()
            .zip(available)
            .enumerate()
            .filter(|&(d, (s, &avail))| avail && self.crash_frac[d].is_none() && s.exhausted)
            .map(|(d, _)| u32::try_from(d).expect("fleet fits in u32"))
            .collect()
    }

    /// This round's counters over the devices that actually participate
    /// (available; crash suppresses the upload, which never dispatches).
    pub fn round_counters(&self, available: &[bool]) -> FaultCounters {
        let mut c = FaultCounters::default();
        for (d, &avail) in available.iter().enumerate() {
            if !avail {
                continue;
            }
            if self.crash_frac[d].is_some() {
                c.crashed_devices += 1;
                continue;
            }
            let s = &self.upload[d];
            c.lost_messages += s.lost_attempts();
            c.retries += s.retries();
            c.retry_secs += us_to_secs(s.total_delay_us());
            c.exhausted_sends += u64::from(s.exhausted);
            c.duplicated_messages += u64::from(s.duplicates);
        }
        for s in self.edges.values() {
            c.lost_messages += s.lost_attempts();
            c.retries += s.retries();
            c.retry_secs += us_to_secs(s.total_delay_us());
            c.exhausted_sends += u64::from(s.exhausted);
            c.duplicated_messages += u64::from(s.duplicates);
        }
        c
    }
}

/// The evolving fault stream across rounds: owns the spec, the recovery
/// policy, a private RNG stream derived only from the run seed, and the
/// cumulative counters. The mirror of `ScenarioState` for faults.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    recovery: RecoveryPolicy,
    rng: Xoshiro256pp,
    round: u64,
    counters: FaultCounters,
}

impl FaultState {
    /// Builds the stream for one run. The RNG is domain-separated from
    /// the trainer's and the scenario's seed usage, so enabling faults
    /// never perturbs training math or fleet sampling.
    ///
    /// # Panics
    /// Panics if the spec's parameters are invalid.
    pub fn new(spec: FaultSpec, recovery: RecoveryPolicy, seed: u64) -> Self {
        spec.validate();
        Self {
            spec,
            recovery,
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0xFA17_0FA1_u64.rotate_left(23)),
            round: 0,
            counters: FaultCounters::default(),
        }
    }

    /// The recovery policy in force.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// The current round (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Cumulative counters across all compiled rounds.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Aggregators whose outage window covers the current round, in
    /// ascending shard order, restricted to `num_aggregators`.
    pub fn outaged_aggregators(&self, num_aggregators: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .spec
            .outages()
            .iter()
            .filter(|w| w.covers(self.round) && (w.aggregator as usize) < num_aggregators)
            .map(|w| w.aggregator)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Tallies failovers performed this round (the trainer calls this
    /// with the number of re-homed shards).
    pub fn note_failovers(&mut self, n: u64) {
        self.counters.failovers += n;
    }

    /// Compiles the current round's plan: one crash draw and one upload
    /// outcome per device (drawn for every slot so the stream's shape is
    /// independent of churn, then cleared for unavailable devices), plus
    /// an outcome per explicitly enumerated cross edge. Accumulates the
    /// round's counters over the available fleet and advances the round.
    pub fn compile_round(&mut self, profiles: &[DeviceProfile]) -> FaultPlan {
        self.compile_round_with_edges(profiles, &[])
    }

    /// [`FaultState::compile_round`] with explicit cross-device edges:
    /// each `(from, to)` gets its own loss/duplication outcome, applied
    /// to that edge's arrival alone.
    pub fn compile_round_with_edges(
        &mut self,
        profiles: &[DeviceProfile],
        edges: &[(u32, u32)],
    ) -> FaultPlan {
        let (crash_rate, loss_rate, duplicate_rate) = match &self.spec {
            FaultSpec::None => (0.0, 0.0, 0.0),
            FaultSpec::Faults {
                crash_rate,
                loss_rate,
                duplicate_rate,
                ..
            } => (*crash_rate, *loss_rate, *duplicate_rate),
        };
        let mut crash_frac = Vec::with_capacity(profiles.len());
        let mut upload = Vec::with_capacity(profiles.len());
        for p in profiles {
            let crashes = self.rng.bernoulli(crash_rate);
            let frac = if crashes {
                Some(self.rng.range_f64(CRASH_FRAC_RANGE.0, CRASH_FRAC_RANGE.1))
            } else {
                None
            };
            let send = self.draw_send(loss_rate, duplicate_rate);
            if p.available {
                crash_frac.push(frac);
                upload.push(if frac.is_some() {
                    SendFaults::default()
                } else {
                    send
                });
            } else {
                crash_frac.push(None);
                upload.push(SendFaults::default());
            }
        }
        let mut edge_map = BTreeMap::new();
        for &(from, to) in edges {
            let send = self.draw_send(loss_rate, duplicate_rate);
            if !send.is_clean() {
                edge_map.insert((from, to), send);
            }
        }
        let plan = FaultPlan {
            crash_frac,
            upload,
            edges: edge_map,
        };
        let available: Vec<bool> = profiles.iter().map(|p| p.available).collect();
        self.counters.absorb(&plan.round_counters(&available));
        self.round += 1;
        plan
    }

    /// Draws one send's outcome: repeated loss Bernoullis up to the
    /// effective retry budget, a timeout + backoff + jitter delay per
    /// retry (saturating µs), and a duplication draw.
    fn draw_send(&mut self, loss_rate: f64, duplicate_rate: f64) -> SendFaults {
        let budget = self.recovery.effective_budget();
        let mut retry_delays_us = Vec::new();
        let mut exhausted = false;
        let mut retry = 0u32;
        while self.rng.bernoulli(loss_rate) {
            if retry >= budget {
                exhausted = true;
                break;
            }
            let jitter = if self.recovery.jitter_us > 0 {
                self.rng.range_u64(0, self.recovery.jitter_us)
            } else {
                0
            };
            retry_delays_us.push(
                self.recovery
                    .timeout_us
                    .saturating_add(self.recovery.backoff_us(retry))
                    .saturating_add(jitter),
            );
            retry += 1;
        }
        let duplicates = u32::from(self.rng.bernoulli(duplicate_rate));
        SendFaults {
            retry_delays_us,
            exhausted,
            duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<DeviceProfile> {
        vec![DeviceProfile::baseline(); n]
    }

    #[test]
    fn none_spec_compiles_to_a_clean_plan() {
        let mut st = FaultState::new(FaultSpec::None, RecoveryPolicy::default(), 7);
        let plan = st.compile_round(&fleet(8));
        assert!(plan.is_clean());
        assert_eq!(st.counters(), &FaultCounters::default());
        assert_eq!(st.round(), 1);
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let spec = FaultSpec::Faults {
            crash_rate: 0.2,
            loss_rate: 0.3,
            duplicate_rate: 0.1,
            outages: Vec::new(),
        };
        let run = || {
            let mut st = FaultState::new(spec.clone(), RecoveryPolicy::default(), 11);
            (0..5)
                .map(|_| st.compile_round(&fleet(16)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn total_loss_with_unbounded_budget_terminates_at_the_hard_cap() {
        let mut st = FaultState::new(
            FaultSpec::message_loss(1.0),
            RecoveryPolicy {
                retry_budget: u32::MAX,
                ..RecoveryPolicy::default()
            },
            3,
        );
        let plan = st.compile_round(&fleet(4));
        for d in 0..4 {
            let s = plan.upload(d).expect("total loss faults every upload");
            assert!(s.exhausted, "loss 1.0 must exhaust the budget");
            assert_eq!(s.retries(), u64::from(HARD_RETRY_CAP));
        }
        assert_eq!(st.counters().exhausted_sends, 4);
        assert!(st.counters().retries > 0);
        assert!(st.counters().retry_secs > 0.0);
    }

    #[test]
    fn crashes_suppress_the_upload_and_are_counted() {
        let mut st = FaultState::new(
            FaultSpec::Faults {
                crash_rate: 1.0,
                loss_rate: 1.0,
                duplicate_rate: 0.0,
                outages: Vec::new(),
            },
            RecoveryPolicy::default(),
            5,
        );
        let plan = st.compile_round(&fleet(3));
        for d in 0..3 {
            let frac = plan.crash_frac(d).expect("crash rate 1.0 crashes everyone");
            assert!((CRASH_FRAC_RANGE.0..CRASH_FRAC_RANGE.1).contains(&frac));
            assert!(
                plan.upload(d).is_none(),
                "a crashed device never dispatches"
            );
        }
        assert_eq!(plan.crashed_devices(&[true; 3]), vec![0, 1, 2]);
        assert_eq!(st.counters().crashed_devices, 3);
        assert_eq!(st.counters().lost_messages, 0);
    }

    #[test]
    fn unavailable_devices_neither_crash_nor_send() {
        let mut profiles = fleet(4);
        profiles[1].available = false;
        profiles[3].available = false;
        let mut st = FaultState::new(
            FaultSpec::Faults {
                crash_rate: 1.0,
                loss_rate: 1.0,
                duplicate_rate: 1.0,
                outages: Vec::new(),
            },
            RecoveryPolicy::default(),
            9,
        );
        let plan = st.compile_round(&profiles);
        assert_eq!(plan.crash_frac(1), None);
        assert_eq!(plan.crash_frac(3), None);
        assert!(plan.upload(1).is_none());
        assert_eq!(
            plan.crashed_devices(&[true, false, true, false]),
            vec![0, 2]
        );
        assert_eq!(st.counters().crashed_devices, 2);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let r = RecoveryPolicy {
            timeout_us: 10,
            backoff_base_us: 100,
            jitter_us: 0,
            retry_budget: 4,
        };
        assert_eq!(r.backoff_us(0), 100);
        assert_eq!(r.backoff_us(1), 200);
        assert_eq!(r.backoff_us(3), 800);
        assert_eq!(r.backoff_us(63), u64::MAX); // multiply saturates, never wraps
        assert_eq!(r.backoff_us(64), u64::MAX); // shift overflow saturates too
    }

    #[test]
    fn retry_delays_include_timeout_backoff_and_bounded_jitter() {
        let recovery = RecoveryPolicy {
            timeout_us: 1_000,
            backoff_base_us: 500,
            jitter_us: 100,
            retry_budget: 8,
        };
        let mut st = FaultState::new(FaultSpec::message_loss(1.0), recovery, 13);
        let plan = st.compile_round(&fleet(1));
        let s = plan.upload(0).unwrap();
        assert_eq!(s.retries(), 8);
        for (i, &d) in s.retry_delays_us.iter().enumerate() {
            let retry = u32::try_from(i).expect("retry index fits u32");
            let base = recovery.timeout_us + recovery.backoff_us(retry);
            assert!(
                (base..base + recovery.jitter_us).contains(&d),
                "retry {i}: delay {d} outside [{base}, {})",
                base + recovery.jitter_us
            );
        }
    }

    #[test]
    fn outage_windows_cover_their_rounds_only() {
        let spec = FaultSpec::Faults {
            crash_rate: 0.0,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            outages: vec![
                OutageWindow {
                    aggregator: 1,
                    from_round: 2,
                    until_round: 4,
                },
                OutageWindow {
                    aggregator: 9,
                    from_round: 0,
                    until_round: 100,
                },
            ],
        };
        let mut st = FaultState::new(spec, RecoveryPolicy::default(), 1);
        // Round 0: window [2, 4) not yet open; aggregator 9 out of range.
        assert!(st.outaged_aggregators(4).is_empty());
        st.compile_round(&fleet(2));
        st.compile_round(&fleet(2));
        // Round 2: the window covers it.
        assert_eq!(st.outaged_aggregators(4), vec![1]);
        st.compile_round(&fleet(2));
        st.compile_round(&fleet(2));
        // Round 4: closed again.
        assert!(st.outaged_aggregators(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_rate_panics() {
        FaultState::new(FaultSpec::message_loss(1.5), RecoveryPolicy::default(), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_outage_window_panics() {
        FaultSpec::Faults {
            crash_rate: 0.0,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            outages: vec![OutageWindow {
                aggregator: 0,
                from_round: 5,
                until_round: 5,
            }],
        }
        .validate();
    }

    #[test]
    fn edge_outcomes_only_record_faulty_edges() {
        let mut st = FaultState::new(FaultSpec::message_loss(1.0), RecoveryPolicy::default(), 21);
        let plan = st.compile_round_with_edges(&fleet(2), &[(0, 1), (1, 0)]);
        assert!(plan.edge(0, 1).is_some());
        assert!(plan.edge(1, 0).is_some());
        assert!(plan.edge(0, 0).is_none());
        let mut clean = FaultState::new(FaultSpec::None, RecoveryPolicy::default(), 21);
        let plan = clean.compile_round_with_edges(&fleet(2), &[(0, 1)]);
        assert!(plan.edge(0, 1).is_none(), "clean edges stay out of the map");
    }
}
