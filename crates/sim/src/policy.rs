//! Semi-synchronous aggregation policies over the per-destination timing
//! signal.
//!
//! Lumos is synchronous: the round closes only when every update has
//! arrived (§IV-B), so one straggler prices the whole epoch. With the
//! per-destination schedule reporting *when each device's update actually
//! lands* ([`EpochStats::update_delivery_secs`]), a deadline policy becomes
//! well-defined: updates landing after a multiple of the round's median
//! finish time are dropped from the pooled update, and the barrier closes
//! without them — the Fig. 8c-style straggler-dropping trade the paper
//! motivates. The buffered policy keeps the same barrier cut but routes
//! the late updates into a [`StalenessBuffer`] instead of the void: each
//! one is blended into a later round's POOL with weight
//! `decay^staleness` (FedAsync-style staleness discounting), where the
//! staleness is how many extra round-lengths the update spent in flight.
//! The fully-asynchronous policy retires the barrier outright: the round
//! closes the moment `min_updates` have landed
//! ([`AggregationPolicy::Async`]), and every update that missed the quorum
//! is carried to the next round at full weight — nothing is dropped and
//! nothing is discounted.
//!
//! Since the event-driven refactor each policy is also expressible as an
//! *event handler* ([`RoundPolicy`]): subscribed to an
//! [`EventDrivenRuntime`] run, it judges each update as its landing event
//! pops and, for `Async`, closes the round from inside the event stream.
//! The post-hoc path ([`AggregationPolicy::late_with_staleness`]) computes
//! the identical sets from the finished timing signal, which is what makes
//! the lockstep and event-driven runtimes bit-interchangeable.

use crate::epoch::EpochStats;
use crate::queue::VirtualTime;
use crate::runtime::{Control, EventDrivenRuntime, SimEvent};

/// Upper bound on how many rounds a late update may stay in flight before
/// it is blended in: both its arrival round and its staleness exponent are
/// clamped here, so no buffered update is deferred (or discounted)
/// unboundedly — a device 1000× past the deadline still lands within
/// `STALENESS_CAP` rounds.
pub const STALENESS_CAP: u32 = 8;

/// How a round's updates are aggregated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum AggregationPolicy {
    /// The paper's synchronous barrier: every update is waited for. The
    /// default, and the only policy under which a scenario is a pure
    /// timing overlay.
    #[default]
    FullSync,
    /// Semi-synchronous deadline: a device whose update lands after
    /// `factor × median update-delivery time` is dropped from that round's
    /// pooled update and message accounting, and its events no longer gate
    /// the barrier. `factor >= 1`, so the median device (and with it at
    /// least half the round) always survives.
    Deadline {
        /// Deadline as a multiple of the round's median delivery time.
        factor: f64,
    },
    /// Buffered semi-sync: the same deadline cut as
    /// [`AggregationPolicy::Deadline`] (late devices still leave the
    /// round's barrier, keeping its makespan win), but late updates are
    /// buffered instead of discarded and blended into the round where they
    /// actually arrive with weight `decay^staleness`. Their protocol
    /// messages are likewise accounted in the arrival round. `decay = 0`
    /// weighs every stale update by zero — exactly the deadline's discard —
    /// and collapses to it bit for bit via
    /// [`AggregationPolicy::effective`].
    Buffered {
        /// Deadline as a multiple of the round's median delivery time.
        factor: f64,
        /// Per-round staleness discount in `[0, 1]`: an update arriving
        /// `s` rounds late pools with weight `decay^s`.
        decay: f64,
    },
    /// Barrier-free asynchronous aggregation: the round pools the moment
    /// `min_updates` updates have landed — no global barrier at all. The
    /// quorum is the `min_updates` earliest landings in `(delivery time,
    /// device id)` order (the tie-break mirrors the event queue's total
    /// order, so the set is push-order-independent); every other update is
    /// carried to the next round at *full* weight (staleness 1, no decay) —
    /// nothing is dropped (`late_drops = 0`) and nothing is wasted
    /// (`wasted_updates = 0`). With `min_updates >= n_devices` the quorum
    /// is the whole fleet, which is exactly the synchronous barrier:
    /// [`AggregationPolicy::resolve`] collapses that configuration to
    /// `FullSync` up front, bit for bit.
    Async {
        /// Updates that must land before the round closes and pools.
        min_updates: usize,
    },
}

impl AggregationPolicy {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationPolicy::FullSync => "full-sync",
            AggregationPolicy::Deadline { .. } => "deadline",
            AggregationPolicy::Buffered { .. } => "buffered",
            AggregationPolicy::Async { .. } => "async",
        }
    }

    /// Checks the policy's parameters; call at configuration time so a bad
    /// deadline fails fast instead of mid-training (or never, when no
    /// scenario means [`AggregationPolicy::late_devices`] is never hit).
    ///
    /// # Panics
    /// Panics if a deadline factor is not finite or is below 1 (a factor
    /// below 1 would drop the median device — and with it any guarantee
    /// that a round keeps a majority), or if a buffered decay is not a
    /// finite value in `[0, 1]` (a weight above 1 would *amplify* stale
    /// updates with their own age), or if an async quorum is zero (a round
    /// must wait for at least one update before pooling).
    pub fn validate(&self) {
        match *self {
            AggregationPolicy::FullSync => {}
            AggregationPolicy::Async { min_updates } => {
                assert!(
                    min_updates >= 1,
                    "async quorum must wait for at least one update"
                );
            }
            AggregationPolicy::Deadline { factor } => {
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "deadline factor must be finite and >= 1, got {factor}"
                );
            }
            AggregationPolicy::Buffered { factor, decay } => {
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "deadline factor must be finite and >= 1, got {factor}"
                );
                assert!(
                    decay.is_finite() && (0.0..=1.0).contains(&decay),
                    "buffered decay must be in [0, 1], got {decay}"
                );
            }
        }
    }

    /// The policy actually executed: `Buffered` with `decay = 0` weighs
    /// every stale update by zero, which is the deadline's discard — it is
    /// resolved to `Deadline` up front so the two configurations are
    /// bit-identical by construction (same pool masks, same message
    /// accounting, no carry-over traffic).
    pub fn effective(self) -> AggregationPolicy {
        match self {
            AggregationPolicy::Buffered { factor, decay: 0.0 } => {
                AggregationPolicy::Deadline { factor }
            }
            p => p,
        }
    }

    /// The policy actually executed for a fleet of `n_devices`: applies
    /// [`AggregationPolicy::effective`], then collapses an `Async` quorum
    /// of the whole fleet (or more) to `FullSync` — waiting for every
    /// device *is* the synchronous barrier, so the two configurations are
    /// made bit-identical by construction (same code path, same reports).
    pub fn resolve(self, n_devices: usize) -> AggregationPolicy {
        match self.effective() {
            AggregationPolicy::Async { min_updates } if min_updates >= n_devices => {
                AggregationPolicy::FullSync
            }
            p => p,
        }
    }

    /// The deadline factor shared by the cutting policies (`None` under
    /// [`AggregationPolicy::FullSync`] and [`AggregationPolicy::Async`],
    /// which cut by quorum rank, not by deadline).
    fn cut_factor(&self) -> Option<f64> {
        match *self {
            AggregationPolicy::FullSync | AggregationPolicy::Async { .. } => None,
            AggregationPolicy::Deadline { factor } | AggregationPolicy::Buffered { factor, .. } => {
                Some(factor)
            }
        }
    }

    /// The devices this policy drops from a round with the given timing:
    /// those whose update landed strictly after `factor ×` the round's
    /// median delivery time (lower median — deterministic, no averaging).
    /// Empty under [`AggregationPolicy::FullSync`] and for rounds where
    /// nothing ran. Returned sorted by device id.
    ///
    /// # Panics
    /// Panics if a deadline factor is not finite or is below 1.
    pub fn late_devices(&self, stats: &EpochStats) -> Vec<u32> {
        self.late_with_staleness(stats)
            .into_iter()
            .map(|(d, _)| d)
            .collect()
    }

    /// [`AggregationPolicy::late_devices`] plus each late device's
    /// *staleness*: how many additional round-lengths its update spends in
    /// flight past the deadline, `ceil(delivery / deadline) - 1`, clamped
    /// to `1..=`[`STALENESS_CAP`]. An update landing just past the
    /// deadline arrives next round (staleness 1); one landing at 3× the
    /// deadline arrives two rounds later (staleness 2). Sorted by device
    /// id.
    ///
    /// Under [`AggregationPolicy::Async`] the "late" set is the complement
    /// of the quorum — every device whose update lands after the
    /// `min_updates` earliest (in `(delivery time, device id)` order) —
    /// each at staleness 1: carried to the next round, undecayed.
    ///
    /// # Panics
    /// Panics if the policy's parameters are invalid (see
    /// [`AggregationPolicy::validate`]).
    pub fn late_with_staleness(&self, stats: &EpochStats) -> Vec<(u32, u32)> {
        self.validate();
        if let AggregationPolicy::Async { min_updates } = *self {
            return async_overflow(min_updates, &stats.update_delivery_secs);
        }
        let Some(factor) = self.cut_factor() else {
            return Vec::new();
        };
        let mut times: Vec<f64> = stats
            .update_delivery_secs
            .iter()
            .flatten()
            .copied()
            .collect();
        if times.is_empty() {
            return Vec::new();
        }
        times.sort_by(f64::total_cmp);
        let median = times[(times.len() - 1) / 2];
        let deadline = factor * median;
        stats
            .update_delivery_secs
            .iter()
            .enumerate()
            .filter_map(|(d, t)| {
                let t = (*t)?;
                if t <= deadline {
                    return None;
                }
                let staleness = if deadline > 0.0 {
                    ((t / deadline).ceil() - 1.0).clamp(1.0, STALENESS_CAP as f64) as u32
                } else {
                    STALENESS_CAP
                };
                Some((d as u32, staleness))
            })
            .collect()
    }
}

/// Landings in quorum order: every `(delivery time, device)` that lands,
/// sorted by time with ties broken by device id — the same total order the
/// event queue pops simultaneous landings in, so the quorum boundary is a
/// pure function of the schedule.
fn landing_order(planned: &[Option<f64>]) -> Vec<(f64, u32)> {
    let mut landed: Vec<(f64, u32)> = planned
        .iter()
        .enumerate()
        .filter_map(|(d, t)| t.map(|t| (t, d as u32)))
        .collect();
    landed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    landed
}

/// The devices an async quorum of `min_updates` leaves out, each at
/// staleness 1, sorted by device id. Empty when the whole round fits in
/// the quorum.
fn async_overflow(min_updates: usize, planned: &[Option<f64>]) -> Vec<(u32, u32)> {
    let landed = landing_order(planned);
    if landed.len() <= min_updates {
        return Vec::new();
    }
    let mut late: Vec<(u32, u32)> = landed[min_updates..].iter().map(|&(_, d)| (d, 1)).collect();
    late.sort_unstable_by_key(|&(d, _)| d);
    late
}

/// One round of an aggregation policy, expressed as an event handler.
///
/// Where [`AggregationPolicy::late_with_staleness`] judges a *finished*
/// round from its timing signal, a `RoundPolicy` subscribes to the live
/// [`EventDrivenRuntime`] stream and decides at arrival time: as each
/// update's landing event pops it is judged on the spot (on time, or late
/// with its staleness), and under [`AggregationPolicy::Async`] the round
/// is closed from inside the stream the moment the quorum lands. Because
/// the schedule is static, the deadline (a median over the round) and the
/// quorum boundary are priced from
/// [`EventDrivenRuntime::update_delivery_secs`] at construction — the
/// verdicts are therefore identical to the post-hoc path, which is exactly
/// the refactor's compatibility contract (property-tested in
/// `tests/sim_properties.rs`).
///
/// For sharded (hierarchical) aggregation, construct one `RoundPolicy` per
/// shard with [`RoundPolicy::for_members`]: each judges only its members,
/// against its shard-local median.
#[derive(Debug, Clone)]
pub struct RoundPolicy {
    planned: Vec<Option<f64>>,
    burst: Vec<bool>,
    mode: RoundMode,
    verdicts: Vec<(u32, u32)>,
}

#[derive(Debug, Clone)]
enum RoundMode {
    /// Nothing to decide: run to the barrier (`FullSync`, rounds where
    /// nothing lands, and async quorums the whole round fits inside).
    Barrier,
    /// Deadline cut: judge each landing against the precomputed deadline.
    Cut { deadline: f64 },
    /// Async quorum: close the round once every awaited landing has
    /// popped; everyone else is carried at staleness 1.
    Quorum {
        awaiting: Vec<bool>,
        remaining: usize,
        late: Vec<(u32, u32)>,
    },
}

impl RoundPolicy {
    /// A handler judging the whole fleet.
    ///
    /// # Panics
    /// Panics if the policy's parameters are invalid.
    pub fn new(policy: &AggregationPolicy, schedule: &EventDrivenRuntime) -> Self {
        Self::for_members(policy, schedule, None)
    }

    /// A handler judging only devices in `members` (a shard's contiguous
    /// id range): landings outside it are ignored and the deadline median
    /// is computed over members alone.
    ///
    /// # Panics
    /// Panics if the policy's parameters are invalid.
    pub fn for_members(
        policy: &AggregationPolicy,
        schedule: &EventDrivenRuntime,
        members: Option<std::ops::Range<u32>>,
    ) -> Self {
        policy.validate();
        let mut planned = schedule.update_delivery_secs().to_vec();
        if let Some(range) = &members {
            for (d, t) in planned.iter_mut().enumerate() {
                if !range.contains(&(d as u32)) {
                    *t = None;
                }
            }
        }
        let burst = schedule.ships_burst().to_vec();
        let mode = match *policy {
            AggregationPolicy::FullSync => RoundMode::Barrier,
            AggregationPolicy::Deadline { factor } | AggregationPolicy::Buffered { factor, .. } => {
                let mut times: Vec<f64> = planned.iter().flatten().copied().collect();
                if times.is_empty() {
                    RoundMode::Barrier
                } else {
                    times.sort_by(f64::total_cmp);
                    let median = times[(times.len() - 1) / 2];
                    RoundMode::Cut {
                        deadline: factor * median,
                    }
                }
            }
            AggregationPolicy::Async { min_updates } => {
                let landed = landing_order(&planned);
                if min_updates >= planned.len() || landed.is_empty() {
                    // A quorum of the whole fleet *is* the synchronous
                    // barrier (the collapse `resolve` performs up front) —
                    // drains included, so the round stays bit-identical to
                    // `FullSync`.
                    RoundMode::Barrier
                } else {
                    // Churn can leave fewer live landings than the
                    // configured quorum; clamping to the live fleet closes
                    // the round at the last landing instead of deadlocking
                    // on updates that can never arrive.
                    let quorum = min_updates.min(landed.len());
                    let mut awaiting = vec![false; planned.len()];
                    for &(_, d) in &landed[..quorum] {
                        awaiting[d as usize] = true;
                    }
                    RoundMode::Quorum {
                        awaiting,
                        remaining: quorum,
                        late: async_overflow(min_updates, &planned),
                    }
                }
            }
        };
        Self {
            planned,
            burst,
            mode,
            verdicts: Vec::new(),
        }
    }

    /// Feeds one event through the policy. A bursting device's update
    /// lands at its `Delivered` event, a burst-less one's at its
    /// `ComputeDone`; everything else (arrivals, drains, non-members) is
    /// passed through. Returns [`Control::CloseRound`] exactly when an
    /// async quorum completes.
    pub fn on_event(&mut self, t: VirtualTime, ev: &SimEvent) -> Control {
        let d = ev.device() as usize;
        let landing = match ev {
            SimEvent::Delivered(_) => self.planned[d].is_some() && self.burst[d],
            SimEvent::ComputeDone(_) => self.planned[d].is_some() && !self.burst[d],
            // Fault events are never landings: a crashed or exhausted
            // device has `planned[d] == None` and is handled by the
            // recovery layer (staleness buffer), not the round policy.
            SimEvent::Arrived { .. }
            | SimEvent::InboxDrained(_)
            | SimEvent::Crashed(_)
            | SimEvent::Lost(_)
            | SimEvent::RetryDue(_) => false,
        };
        if !landing {
            return Control::Continue;
        }
        match &mut self.mode {
            RoundMode::Barrier => Control::Continue,
            RoundMode::Cut { deadline } => {
                let deadline = *deadline;
                let t = t.secs();
                if t > deadline {
                    let staleness = if deadline > 0.0 {
                        ((t / deadline).ceil() - 1.0).clamp(1.0, STALENESS_CAP as f64) as u32
                    } else {
                        STALENESS_CAP
                    };
                    self.verdicts.push((d as u32, staleness));
                }
                Control::Continue
            }
            RoundMode::Quorum {
                awaiting,
                remaining,
                late,
            } => {
                if awaiting[d] {
                    awaiting[d] = false;
                    *remaining -= 1;
                    if *remaining == 0 {
                        // The quorum is complete: everyone still in flight
                        // is carried to the next round, at full weight.
                        self.verdicts.append(late);
                        return Control::CloseRound;
                    }
                }
                Control::Continue
            }
        }
    }

    /// The round's late/carried set, `(device, staleness)` sorted by
    /// device id — the same pairs the post-hoc
    /// [`AggregationPolicy::late_with_staleness`] computes.
    pub fn verdicts(mut self) -> Vec<(u32, u32)> {
        self.verdicts.sort_unstable_by_key(|&(d, _)| d);
        self.verdicts
    }
}

/// The buffered policy's per-device staleness buffer: late updates enter
/// with their staleness (rounds until arrival) and come back out, at most
/// [`STALENESS_CAP`] rounds later, as additive POOL weights
/// `decay^staleness` for their device.
///
/// The buffer is pure bookkeeping over `(device, rounds remaining)` pairs —
/// deterministic, no RNG, no float state beyond the decay — so the
/// conservation property (*every* pushed update is collected within the
/// cap) is property-tested directly in `tests/sim_properties.rs`.
#[derive(Debug, Clone)]
pub struct StalenessBuffer {
    decay: f64,
    /// In-flight late updates: `(device, rounds remaining, staleness)`.
    in_flight: Vec<(u32, u32, u32)>,
    buffered: u64,
}

impl StalenessBuffer {
    /// Creates an empty buffer with the given per-round decay.
    ///
    /// # Panics
    /// Panics unless `decay` is a finite value in `[0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay.is_finite() && (0.0..=1.0).contains(&decay),
            "buffered decay must be in [0, 1], got {decay}"
        );
        Self {
            decay,
            in_flight: Vec::new(),
            buffered: 0,
        }
    }

    /// The POOL weight of an update that is `staleness` rounds old.
    pub fn weight(&self, staleness: u32) -> f64 {
        self.decay.powi(staleness as i32)
    }

    /// Buffers one late update: it will arrive (and be collected by
    /// [`StalenessBuffer::advance`]) after `staleness` rounds, clamped to
    /// `1..=`[`STALENESS_CAP`].
    pub fn push(&mut self, device: u32, staleness: u32) {
        let s = staleness.clamp(1, STALENESS_CAP);
        self.in_flight.push((device, s, s));
        self.buffered += 1;
    }

    /// Advances one round: every in-flight update ages by one round, and
    /// those arriving now are drained into a per-device additive weight
    /// vector (`decay^staleness` each; a device can receive several
    /// arrivals in one round). Call exactly once per round, *before*
    /// pushing that round's late updates.
    pub fn advance(&mut self, num_devices: usize) -> Vec<f64> {
        let mut weights = vec![0.0f64; num_devices];
        self.in_flight.retain_mut(|(d, remaining, staleness)| {
            *remaining -= 1;
            if *remaining == 0 {
                weights[*d as usize] += self.decay.powi(*staleness as i32);
                false
            } else {
                true
            }
        });
        weights
    }

    /// Total updates ever buffered (the report's `buffered_updates`).
    pub fn total_buffered(&self) -> u64 {
        self.buffered
    }

    /// Updates still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{simulate_epoch, DeviceWork};
    use crate::profile::DeviceProfile;

    fn stats_with(deliveries: Vec<Option<f64>>) -> EpochStats {
        EpochStats {
            makespan_secs: 0.0,
            busy_secs: vec![0.0; deliveries.len()],
            idle_secs: vec![0.0; deliveries.len()],
            update_delivery_secs: deliveries,
            straggler: None,
            active_devices: 0,
            events: 0,
        }
    }

    #[test]
    fn full_sync_never_drops() {
        let s = stats_with(vec![Some(1.0), Some(1e9)]);
        assert!(AggregationPolicy::FullSync.late_devices(&s).is_empty());
    }

    #[test]
    fn deadline_drops_the_tail_but_keeps_the_median() {
        let s = stats_with(vec![Some(1.0), Some(1.1), Some(0.9), None, Some(40.0)]);
        // Sorted deliveries: 0.9, 1.0, 1.1, 40 → lower median 1.0, deadline
        // 2.0 at factor 2 → only the 40s device is late; the absent device
        // (None) is never dropped.
        let late = AggregationPolicy::Deadline { factor: 2.0 }.late_devices(&s);
        assert_eq!(late, vec![4]);
    }

    #[test]
    fn at_least_half_the_round_survives() {
        for n in 1..32usize {
            let s = stats_with((0..n).map(|i| Some((i + 1) as f64)).collect());
            let late = AggregationPolicy::Deadline { factor: 1.0 }.late_devices(&s);
            assert!(
                n - late.len() >= n.div_ceil(2),
                "n={n}: {} dropped",
                late.len()
            );
        }
    }

    #[test]
    fn empty_round_drops_nobody() {
        let s = stats_with(vec![None, None]);
        assert!(AggregationPolicy::Deadline { factor: 2.0 }
            .late_devices(&s)
            .is_empty());
    }

    #[test]
    #[should_panic]
    fn sub_unit_factor_panics() {
        let s = stats_with(vec![Some(1.0)]);
        AggregationPolicy::Deadline { factor: 0.5 }.late_devices(&s);
    }

    #[test]
    fn reads_the_simulated_signal_end_to_end() {
        // A Pareto-style tail on real simulated timing: the slow device's
        // update lands far past 2× the median and is dropped.
        let mut profiles = vec![DeviceProfile::baseline(); 5];
        profiles[3].compute_rate /= 100.0;
        let w: Vec<DeviceWork> = (0..5)
            .map(|_| DeviceWork::aggregate(100.0, 1, 64, 0))
            .collect();
        let stats = simulate_epoch(&profiles, &w);
        let late = AggregationPolicy::Deadline { factor: 2.0 }.late_devices(&stats);
        assert_eq!(late, vec![3]);
        assert_eq!(AggregationPolicy::FullSync.name(), "full-sync");
        assert_eq!(
            AggregationPolicy::Deadline { factor: 2.0 }.name(),
            "deadline"
        );
    }

    #[test]
    fn buffered_cuts_exactly_like_the_deadline() {
        // Same factor ⇒ same late set: buffering changes what happens to a
        // late update, never who is late.
        let s = stats_with(vec![Some(1.0), Some(1.1), Some(0.9), None, Some(40.0)]);
        let deadline = AggregationPolicy::Deadline { factor: 2.0 };
        let buffered = AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.5,
        };
        assert_eq!(buffered.late_devices(&s), deadline.late_devices(&s));
        assert_eq!(buffered.name(), "buffered");
    }

    #[test]
    fn staleness_counts_round_lengths_past_the_deadline() {
        // Deadline 2.0 (factor 2 × lower median 1.0): 2.5s ⇒ next round
        // (staleness 1), 4.5s ⇒ ceil(2.25)-1 = 2 rounds, 1000s ⇒ capped.
        let s = stats_with(vec![
            Some(1.0),
            Some(1.0),
            Some(1.0),
            Some(2.5),
            Some(4.5),
            Some(1000.0),
        ]);
        let late = AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.5,
        }
        .late_with_staleness(&s);
        assert_eq!(late, vec![(3, 1), (4, 2), (5, STALENESS_CAP)]);
    }

    #[test]
    fn zero_decay_is_effectively_the_deadline() {
        let collapsed = AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.0,
        }
        .effective();
        assert_eq!(collapsed, AggregationPolicy::Deadline { factor: 2.0 });
        // Non-zero decay and the other policies pass through untouched.
        let buffered = AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.5,
        };
        assert_eq!(buffered.effective(), buffered);
        assert_eq!(
            AggregationPolicy::FullSync.effective(),
            AggregationPolicy::FullSync
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_decay_panics() {
        AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 1.5,
        }
        .validate();
    }

    #[test]
    fn staleness_buffer_delivers_after_the_advertised_delay() {
        let mut buf = StalenessBuffer::new(0.5);
        buf.push(1, 1);
        buf.push(3, 2);
        // Round +1: only the staleness-1 update arrives, at weight 0.5.
        let w = buf.advance(4);
        assert_eq!(w, vec![0.0, 0.5, 0.0, 0.0]);
        assert_eq!(buf.in_flight(), 1);
        // Round +2: the staleness-2 update arrives at 0.25.
        let w = buf.advance(4);
        assert_eq!(w, vec![0.0, 0.0, 0.0, 0.25]);
        assert_eq!(buf.in_flight(), 0);
        assert_eq!(buf.total_buffered(), 2);
    }

    #[test]
    fn staleness_buffer_accumulates_same_round_arrivals() {
        // Two updates from the same device landing in the same round add
        // their weights; a zero staleness is clamped up to one round.
        let mut buf = StalenessBuffer::new(0.5);
        buf.push(0, 0);
        buf.push(0, 1);
        let w = buf.advance(1);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn async_quorum_carries_the_overflow_at_full_staleness() {
        // Quorum 2 over landings at 1.0 (d0), 3.0 (d1), 2.0 (d2), 5.0
        // (d4): the two earliest (d0, d2) pool; d1 and d4 are carried at
        // staleness 1. The absent device is never judged.
        let s = stats_with(vec![Some(1.0), Some(3.0), Some(2.0), None, Some(5.0)]);
        let late = AggregationPolicy::Async { min_updates: 2 }.late_with_staleness(&s);
        assert_eq!(late, vec![(1, 1), (4, 1)]);
        assert_eq!(AggregationPolicy::Async { min_updates: 2 }.name(), "async");
    }

    #[test]
    fn async_ties_at_the_quorum_boundary_break_by_device_id() {
        let s = stats_with(vec![Some(1.0), Some(1.0), Some(1.0)]);
        let late = AggregationPolicy::Async { min_updates: 2 }.late_with_staleness(&s);
        assert_eq!(late, vec![(2, 1)]);
    }

    #[test]
    fn async_quorum_of_everyone_carries_nobody() {
        let s = stats_with(vec![Some(1.0), Some(40.0), None]);
        let late = AggregationPolicy::Async { min_updates: 2 }.late_with_staleness(&s);
        assert!(late.is_empty(), "both landings fit in the quorum");
    }

    #[test]
    fn full_fleet_quorum_resolves_to_full_sync() {
        // min_updates >= n_devices is the synchronous barrier, collapsed up
        // front so both configurations share one code path bit for bit.
        let whole = AggregationPolicy::Async { min_updates: 8 };
        assert_eq!(whole.resolve(8), AggregationPolicy::FullSync);
        assert_eq!(whole.resolve(7), AggregationPolicy::FullSync);
        let partial = AggregationPolicy::Async { min_updates: 7 };
        assert_eq!(partial.resolve(8), partial);
        // resolve() still applies the zero-decay buffered collapse.
        let buffered = AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.0,
        };
        assert_eq!(
            buffered.resolve(8),
            AggregationPolicy::Deadline { factor: 2.0 }
        );
    }

    #[test]
    #[should_panic]
    fn zero_quorum_panics() {
        AggregationPolicy::Async { min_updates: 0 }.validate();
    }

    fn straggler_fleet() -> (Vec<DeviceProfile>, Vec<DeviceWork>) {
        let mut profiles = vec![DeviceProfile::baseline(); 5];
        profiles[3].compute_rate /= 100.0;
        let w: Vec<DeviceWork> = (0..5)
            .map(|_| DeviceWork::aggregate(100.0, 1, 64, 0))
            .collect();
        (profiles, w)
    }

    #[test]
    fn round_policy_verdicts_match_the_post_hoc_path() {
        // The arrival-time handler and the finished-round computation must
        // agree exactly — that equivalence is what lets the trainer switch
        // between the lockstep and event-driven probes bit for bit.
        let (profiles, w) = straggler_fleet();
        for policy in [
            AggregationPolicy::FullSync,
            AggregationPolicy::Deadline { factor: 2.0 },
            AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 0.5,
            },
            AggregationPolicy::Async { min_updates: 3 },
        ] {
            let schedule = EventDrivenRuntime::new(&profiles, &w);
            let mut round = RoundPolicy::new(&policy, &schedule);
            let stats = schedule.run(|t, ev| round.on_event(t, ev));
            assert_eq!(
                round.verdicts(),
                policy.late_with_staleness(&stats),
                "{} handler disagreed with the post-hoc cut",
                policy.name()
            );
        }
    }

    #[test]
    fn round_policy_closes_the_async_round_at_the_quorum() {
        let (profiles, w) = straggler_fleet();
        let full = simulate_epoch(&profiles, &w);
        let schedule = EventDrivenRuntime::new(&profiles, &w);
        let mut round = RoundPolicy::new(&AggregationPolicy::Async { min_updates: 4 }, &schedule);
        let stats = schedule.run(|t, ev| round.on_event(t, ev));
        assert!(
            stats.makespan_secs < full.makespan_secs,
            "closing at the quorum must beat the barrier ({} !< {})",
            stats.makespan_secs,
            full.makespan_secs
        );
        assert_eq!(round.verdicts(), vec![(3, 1)], "the straggler is carried");
    }

    #[test]
    fn churn_shrunk_async_quorum_clamps_to_the_live_fleet() {
        // Regression: a quorum of 4 with only 2 live devices used to fall
        // back to the full barrier — waiting on updates that can never
        // arrive this round. The clamp closes the round at the last live
        // landing instead.
        use crate::epoch::Inbound;
        let mut profiles = vec![DeviceProfile::baseline(); 6];
        for p in &mut profiles[2..] {
            p.available = false;
        }
        let w: Vec<DeviceWork> = (0..6u32)
            .map(|d| DeviceWork {
                compute_units: 100.0 + 10.0 * d as f64,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![((d + 1) % 6, 64)]),
            })
            .collect();
        let full = EventDrivenRuntime::new(&profiles, &w).run(|_, _| Control::Continue);
        let schedule = EventDrivenRuntime::new(&profiles, &w);
        let mut landings: Vec<f64> = schedule
            .update_delivery_secs()
            .iter()
            .flatten()
            .copied()
            .collect();
        landings.sort_by(f64::total_cmp);
        assert_eq!(landings.len(), 2, "only the live devices land");
        let mut round = RoundPolicy::new(&AggregationPolicy::Async { min_updates: 4 }, &schedule);
        let stats = schedule.run(|t, ev| round.on_event(t, ev));
        assert_eq!(
            stats.makespan_secs.to_bits(),
            landings[1].to_bits(),
            "the clamped quorum closes at the last live landing"
        );
        assert!(
            stats.makespan_secs < full.makespan_secs,
            "closing early must beat the drain barrier"
        );
        assert!(
            round.verdicts().is_empty(),
            "every live update made the clamped quorum"
        );
    }

    #[test]
    fn shard_scoped_round_policy_ignores_outsiders() {
        // Members 0..3 of a 5-device fleet: the shard's median ignores the
        // outside straggler, and outsiders are never judged.
        let (profiles, w) = straggler_fleet();
        let schedule = EventDrivenRuntime::new(&profiles, &w);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let mut round = RoundPolicy::for_members(&policy, &schedule, Some(0..3));
        let _stats = schedule.run(|t, ev| round.on_event(t, ev));
        assert!(
            round.verdicts().is_empty(),
            "the slow device is not a member, so the shard has no stragglers"
        );
    }
}
