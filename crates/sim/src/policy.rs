//! Semi-synchronous aggregation policies over the per-destination timing
//! signal.
//!
//! Lumos is synchronous: the round closes only when every update has
//! arrived (§IV-B), so one straggler prices the whole epoch. With the
//! per-destination schedule reporting *when each device's update actually
//! lands* ([`EpochStats::update_delivery_secs`]), a deadline policy becomes
//! well-defined: updates landing after a multiple of the round's median
//! finish time are dropped from the pooled update, and the barrier closes
//! without them — the Fig. 8c-style straggler-dropping trade the paper
//! motivates.

use crate::epoch::EpochStats;

/// How a round's updates are aggregated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum AggregationPolicy {
    /// The paper's synchronous barrier: every update is waited for. The
    /// default, and the only policy under which a scenario is a pure
    /// timing overlay.
    #[default]
    FullSync,
    /// Semi-synchronous deadline: a device whose update lands after
    /// `factor × median update-delivery time` is dropped from that round's
    /// pooled update and message accounting, and its events no longer gate
    /// the barrier. `factor >= 1`, so the median device (and with it at
    /// least half the round) always survives.
    Deadline {
        /// Deadline as a multiple of the round's median delivery time.
        factor: f64,
    },
}

impl AggregationPolicy {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationPolicy::FullSync => "full-sync",
            AggregationPolicy::Deadline { .. } => "deadline",
        }
    }

    /// Checks the policy's parameters; call at configuration time so a bad
    /// deadline fails fast instead of mid-training (or never, when no
    /// scenario means [`AggregationPolicy::late_devices`] is never hit).
    ///
    /// # Panics
    /// Panics if a deadline factor is not finite or is below 1 (a factor
    /// below 1 would drop the median device — and with it any guarantee
    /// that a round keeps a majority).
    pub fn validate(&self) {
        if let AggregationPolicy::Deadline { factor } = *self {
            assert!(
                factor.is_finite() && factor >= 1.0,
                "deadline factor must be finite and >= 1, got {factor}"
            );
        }
    }

    /// The devices this policy drops from a round with the given timing:
    /// those whose update landed strictly after `factor ×` the round's
    /// median delivery time (lower median — deterministic, no averaging).
    /// Empty under [`AggregationPolicy::FullSync`] and for rounds where
    /// nothing ran. Returned sorted by device id.
    ///
    /// # Panics
    /// Panics if a deadline factor is not finite or is below 1.
    pub fn late_devices(&self, stats: &EpochStats) -> Vec<u32> {
        let AggregationPolicy::Deadline { factor } = *self else {
            return Vec::new();
        };
        self.validate();
        let mut times: Vec<f64> = stats
            .update_delivery_secs
            .iter()
            .flatten()
            .copied()
            .collect();
        if times.is_empty() {
            return Vec::new();
        }
        times.sort_by(f64::total_cmp);
        let median = times[(times.len() - 1) / 2];
        let deadline = factor * median;
        stats
            .update_delivery_secs
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some_and(|t| t > deadline))
            .map(|(d, _)| d as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{simulate_epoch, DeviceWork};
    use crate::profile::DeviceProfile;

    fn stats_with(deliveries: Vec<Option<f64>>) -> EpochStats {
        EpochStats {
            makespan_secs: 0.0,
            busy_secs: vec![0.0; deliveries.len()],
            idle_secs: vec![0.0; deliveries.len()],
            update_delivery_secs: deliveries,
            straggler: None,
            active_devices: 0,
            events: 0,
        }
    }

    #[test]
    fn full_sync_never_drops() {
        let s = stats_with(vec![Some(1.0), Some(1e9)]);
        assert!(AggregationPolicy::FullSync.late_devices(&s).is_empty());
    }

    #[test]
    fn deadline_drops_the_tail_but_keeps_the_median() {
        let s = stats_with(vec![Some(1.0), Some(1.1), Some(0.9), None, Some(40.0)]);
        // Sorted deliveries: 0.9, 1.0, 1.1, 40 → lower median 1.0, deadline
        // 2.0 at factor 2 → only the 40s device is late; the absent device
        // (None) is never dropped.
        let late = AggregationPolicy::Deadline { factor: 2.0 }.late_devices(&s);
        assert_eq!(late, vec![4]);
    }

    #[test]
    fn at_least_half_the_round_survives() {
        for n in 1..32usize {
            let s = stats_with((0..n).map(|i| Some((i + 1) as f64)).collect());
            let late = AggregationPolicy::Deadline { factor: 1.0 }.late_devices(&s);
            assert!(
                n - late.len() >= n.div_ceil(2),
                "n={n}: {} dropped",
                late.len()
            );
        }
    }

    #[test]
    fn empty_round_drops_nobody() {
        let s = stats_with(vec![None, None]);
        assert!(AggregationPolicy::Deadline { factor: 2.0 }
            .late_devices(&s)
            .is_empty());
    }

    #[test]
    #[should_panic]
    fn sub_unit_factor_panics() {
        let s = stats_with(vec![Some(1.0)]);
        AggregationPolicy::Deadline { factor: 0.5 }.late_devices(&s);
    }

    #[test]
    fn reads_the_simulated_signal_end_to_end() {
        // A Pareto-style tail on real simulated timing: the slow device's
        // update lands far past 2× the median and is dropped.
        let mut profiles = vec![DeviceProfile::baseline(); 5];
        profiles[3].compute_rate /= 100.0;
        let w: Vec<DeviceWork> = (0..5)
            .map(|_| DeviceWork::aggregate(100.0, 1, 64, 0))
            .collect();
        let stats = simulate_epoch(&profiles, &w);
        let late = AggregationPolicy::Deadline { factor: 2.0 }.late_devices(&stats);
        assert_eq!(late, vec![3]);
        assert_eq!(AggregationPolicy::FullSync.name(), "full-sync");
        assert_eq!(
            AggregationPolicy::Deadline { factor: 2.0 }.name(),
            "deadline"
        );
    }
}
