//! `lumos-sim` — a deterministic discrete-event simulator for
//! heterogeneous decentralized devices.
//!
//! The paper evaluates Lumos on one machine and *models* the straggler
//! effect with a global linear cost (`lumos_fed::CostModel`). This crate
//! makes the decentralized-device setting first-class:
//!
//! * [`profile`] — per-device capabilities ([`DeviceProfile`]: compute
//!   rate, asymmetric link throughput, latency, availability) sampled from
//!   seeded heterogeneity distributions ([`Heterogeneity`]: uniform,
//!   jitter, lognormal, Pareto).
//! * [`queue`] — a virtual-time event queue ([`EventQueue`] over
//!   [`VirtualTime`], ties broken by the event's [`TieBreak`] key —
//!   (kind, device) for simulation events — then push sequence) with no
//!   real clock anywhere in the simulation path.
//! * [`runtime`] — the [`EventDrivenRuntime`]: prices one epoch's full
//!   event schedule up front and streams every [`SimEvent`] through a
//!   subscribed handler, which may close the round early
//!   ([`Control::CloseRound`]). This is the core `lumos-fed` and
//!   `lumos-core` train on.
//! * [`epoch`] — [`simulate_epoch`]: the synchronous barrier as the
//!   degenerate event-driven run (a handler that never closes). Schedules
//!   per-device compute, per-edge message-delivery
//!   ([`Inbound::PerSender`]: a receiver's drain starts at the latest of
//!   its senders' actual delivery times), and inbox-drain events, and
//!   reports the epoch makespan, per-device busy/idle time, per-device
//!   update-delivery times, and the straggler's identity.
//! * [`policy`] — [`AggregationPolicy`]: the synchronous barrier
//!   (`FullSync`), a semi-synchronous deadline that drops updates landing
//!   after a multiple of the round's median delivery time, the buffered
//!   variant that keeps the same cut but blends late updates into later
//!   rounds with staleness-decayed weights ([`StalenessBuffer`]), or the
//!   barrier-free `Async` quorum that closes the round the moment
//!   `min_updates` have landed. [`RoundPolicy`] is each policy expressed
//!   as an event handler that judges updates at arrival time.
//! * [`scenario`] — presets ([`Scenario::Uniform`],
//!   [`Scenario::MobileFleet`], [`Scenario::StragglerTail`],
//!   [`Scenario::Churn`]) and the round-to-round fleet evolution
//!   ([`ScenarioState`]) including dropout/rejoin.
//! * [`fault`] — seeded fault injection and recovery: [`FaultSpec`]
//!   (mid-round crashes, message loss/duplication, aggregator outage
//!   windows) and [`RecoveryPolicy`] (timeout, exponential backoff with
//!   seeded jitter, retry budget) compiled by [`FaultState`] into a
//!   per-round [`FaultPlan`] the [`EventDrivenRuntime`] prices as
//!   [`SimEvent::Crashed`]/[`SimEvent::Lost`]/[`SimEvent::RetryDue`]
//!   events under the same total order.
//!
//! Everything is a pure function of the seed: same seed + same scenario ⇒
//! bit-identical makespans and straggler sequences (asserted by
//! `tests/determinism.rs` at the workspace root).

#![forbid(unsafe_code)]
pub mod epoch;
pub mod fault;
pub mod policy;
pub mod profile;
pub mod queue;
pub mod runtime;
pub mod scenario;

pub use epoch::{simulate_epoch, DeviceWork, EpochStats, Inbound, SERVER_SENDER};
pub use fault::{
    FaultCounters, FaultPlan, FaultSpec, FaultState, OutageWindow, RecoveryPolicy, SendFaults,
    HARD_RETRY_CAP,
};
pub use policy::{AggregationPolicy, RoundPolicy, StalenessBuffer, STALENESS_CAP};
pub use profile::{DeviceProfile, FleetSpec, Heterogeneity};
pub use queue::{EventQueue, TieBreak, VirtualTime};
pub use runtime::{Control, EventDrivenRuntime, SimEvent};
pub use scenario::{Scenario, ScenarioState};
