//! `lumos-sim` — a deterministic discrete-event simulator for
//! heterogeneous decentralized devices.
//!
//! The paper evaluates Lumos on one machine and *models* the straggler
//! effect with a global linear cost (`lumos_fed::CostModel`). This crate
//! makes the decentralized-device setting first-class:
//!
//! * [`profile`] — per-device capabilities ([`DeviceProfile`]: compute
//!   rate, asymmetric link throughput, latency, availability) sampled from
//!   seeded heterogeneity distributions ([`Heterogeneity`]: uniform,
//!   jitter, lognormal, Pareto).
//! * [`queue`] — a virtual-time event queue ([`EventQueue`] over
//!   [`VirtualTime`], ties broken by push sequence) with no real clock
//!   anywhere in the simulation path.
//! * [`epoch`] — [`simulate_epoch`]: schedules per-device compute,
//!   per-edge message-delivery ([`Inbound::PerSender`]: a receiver's drain
//!   starts at the latest of its senders' actual delivery times), and
//!   inbox-drain events, and reports the epoch makespan, per-device
//!   busy/idle time, per-device update-delivery times, and the straggler's
//!   identity.
//! * [`policy`] — [`AggregationPolicy`]: the synchronous barrier
//!   (`FullSync`), a semi-synchronous deadline that drops updates landing
//!   after a multiple of the round's median delivery time, or the buffered
//!   variant that keeps the same cut but blends late updates into later
//!   rounds with staleness-decayed weights ([`StalenessBuffer`]).
//! * [`scenario`] — presets ([`Scenario::Uniform`],
//!   [`Scenario::MobileFleet`], [`Scenario::StragglerTail`],
//!   [`Scenario::Churn`]) and the round-to-round fleet evolution
//!   ([`ScenarioState`]) including dropout/rejoin.
//!
//! Everything is a pure function of the seed: same seed + same scenario ⇒
//! bit-identical makespans and straggler sequences (asserted by
//! `tests/determinism.rs` at the workspace root).

#![forbid(unsafe_code)]
pub mod epoch;
pub mod policy;
pub mod profile;
pub mod queue;
pub mod scenario;

pub use epoch::{simulate_epoch, DeviceWork, EpochStats, Inbound, SERVER_SENDER};
pub use policy::{AggregationPolicy, StalenessBuffer, STALENESS_CAP};
pub use profile::{DeviceProfile, FleetSpec, Heterogeneity};
pub use queue::{EventQueue, VirtualTime};
pub use scenario::{Scenario, ScenarioState};
