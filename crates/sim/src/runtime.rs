//! The reusable event-driven runtime the training stack is built on.
//!
//! [`simulate_epoch`](crate::epoch::simulate_epoch) used to own a private
//! event loop; this module lifts it out so any consumer — `lumos-fed`'s
//! `Runtime`, `lumos-core`'s trainer, the bench harnesses — can subscribe a
//! handler to the raw event stream and make decisions *at event
//! granularity*: an aggregation policy judges each update as its landing
//! event pops, and an asynchronous round closes the moment a quorum has
//! landed ([`Control::CloseRound`]) instead of waiting for the global
//! barrier.
//!
//! The schedule itself is static: every device's compute end, burst
//! delivery, per-edge arrivals, and inbox drain are priced up front from
//! its [`DeviceProfile`] and [`DeviceWork`], exactly as the lockstep
//! simulator did (same float operations in the same order, so an
//! uninterrupted run is bit-identical to the seed's `simulate_epoch`). The
//! handler does not change *when* things happen — it changes what the
//! round does about them: pool now, buffer, drop, or close.

use std::collections::BTreeMap;

use crate::epoch::{DeviceWork, EpochStats, Inbound, SERVER_SENDER};
use crate::fault::{us_to_secs, FaultPlan};
use crate::profile::DeviceProfile;
use crate::queue::{EventQueue, TieBreak, VirtualTime};

/// Simulation events; each is attributed to the device that caused it.
///
/// This is the public face of what used to be `epoch.rs`'s private event
/// enum: handlers subscribed through [`EventDrivenRuntime::run`] see every
/// event as it pops, in deterministic `(time, kind, device)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Local compute finished.
    ComputeDone(u32),
    /// The last message of the device's outbound burst arrived.
    Delivered(u32),
    /// One sender's payload landed at one receiver (per incoming edge;
    /// attributed to the sender, whose burst it closes at that receiver).
    Arrived {
        /// The sender whose burst this arrival closes.
        from: u32,
        /// The receiver the payload landed at.
        to: u32,
    },
    /// All inbound payload drained through the downlink.
    InboxDrained(u32),
    /// The device crashed mid-round: its compute never finishes and its
    /// update never ships this round (injected by a [`FaultPlan`]).
    Crashed(u32),
    /// One send attempt (the device's update upload, or one cross edge of
    /// its burst) was lost in transit; fires at the attempt's would-be
    /// landing time.
    Lost(u32),
    /// The sender's recovery timer expired: timeout + backoff + jitter
    /// elapsed after a loss, and the retry dispatches now.
    RetryDue(u32),
}

impl SimEvent {
    /// The device this event is attributed to ([`SimEvent::Arrived`] is
    /// attributed to its sender, whose burst it closes; fault events to
    /// the crashed device or the sender retrying).
    pub fn device(&self) -> u32 {
        match *self {
            SimEvent::ComputeDone(d)
            | SimEvent::Delivered(d)
            | SimEvent::InboxDrained(d)
            | SimEvent::Crashed(d)
            | SimEvent::Lost(d)
            | SimEvent::RetryDue(d) => d,
            SimEvent::Arrived { from, .. } => from,
        }
    }

    /// Rank used to order simultaneous events of different kinds: compute
    /// completions first, then burst deliveries, per-edge arrivals, inbox
    /// drains, and finally the fault/recovery events.
    fn kind_rank(&self) -> u8 {
        match self {
            SimEvent::ComputeDone(_) => 0,
            SimEvent::Delivered(_) => 1,
            SimEvent::Arrived { .. } => 2,
            SimEvent::InboxDrained(_) => 3,
            SimEvent::Crashed(_) => 4,
            SimEvent::Lost(_) => 5,
            SimEvent::RetryDue(_) => 6,
        }
    }
}

impl TieBreak for SimEvent {
    fn tie_key(&self) -> (u8, u32) {
        (self.kind_rank(), self.device())
    }
}

/// A subscribed handler's verdict after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running: the synchronous barrier (and every policy that keeps
    /// it) never returns anything else.
    Continue,
    /// Close the round at this event's timestamp: remaining events are
    /// discarded and the epoch's makespan is the close time. This is how
    /// `AggregationPolicy::Async` retires the global barrier.
    CloseRound,
}

/// One epoch's fully-priced event schedule, ready to run.
///
/// Construction performs the entire static pricing pass of the lockstep
/// simulator — compute ends, burst barriers, per-destination drain starts,
/// per-edge arrival fan-out — and seeds the queue with every device's
/// `ComputeDone`. [`EventDrivenRuntime::run`] then pops events in
/// deterministic order, forwarding each to the subscribed handler.
pub struct EventDrivenRuntime {
    queue: EventQueue<SimEvent>,
    busy: Vec<f64>,
    update_delivery: Vec<Option<f64>>,
    delivered: Vec<Option<VirtualTime>>,
    drain_end: Vec<Option<VirtualTime>>,
    out_edges: Vec<Vec<u32>>,
    bursts: Vec<bool>,
    available: Vec<bool>,
    active: usize,
    /// Actual arrival time of cross edges the fault plan delayed with
    /// retries; edges absent from the map arrive at the sender's burst
    /// delivery, exactly as in a fault-free schedule. Empty without a
    /// plan, so the default path never pays a lookup.
    edge_arrivals: BTreeMap<(u32, u32), VirtualTime>,
}

impl EventDrivenRuntime {
    /// Prices one epoch over the fleet and builds its event schedule.
    ///
    /// Devices with `available == false` contribute nothing (their update
    /// is skipped this round). Under [`Inbound::Aggregate`] the schedule is
    /// the legacy self-timed one; under [`Inbound::PerSender`] each
    /// receiver's drain additionally waits for its senders' actual
    /// deliveries (see `epoch.rs` for the collapse properties).
    ///
    /// # Panics
    /// Panics if `profiles` and `work` have different lengths.
    pub fn new(profiles: &[DeviceProfile], work: &[DeviceWork]) -> Self {
        Self::new_with_faults(profiles, work, None)
    }

    /// [`EventDrivenRuntime::new`] with a compiled [`FaultPlan`] folded
    /// into the schedule. `None` (or a clean plan) takes the exact same
    /// code path as `new` — same float operations in the same order — so
    /// the fault-free schedule stays bit-identical to the seed's.
    ///
    /// Fault semantics, all priced statically so every consequence is an
    /// event under the existing total order:
    ///
    /// - **Crash**: the device stops at `crash_frac × compute_end`. A
    ///   [`SimEvent::Crashed`] fires there instead of its `ComputeDone`;
    ///   it ships nothing, lands nothing, and receivers treat its payload
    ///   as staged (the absent-sender rule).
    /// - **Lost upload**: each lost attempt fires [`SimEvent::Lost`] at
    ///   its would-be landing; the retry fires [`SimEvent::RetryDue`]
    ///   after the recovery policy's timeout + backoff + jitter, then
    ///   re-serializes the upload (upload + latency again). A recovered
    ///   update lands — `Delivered`, arrivals, and the policies' landing
    ///   signal all move to the final attempt. An exhausted send fires a
    ///   final `Lost` and never lands: its delivery is `None`, and the
    ///   caller degrades it into the staleness buffer.
    /// - **Lost cross edge**: same loss/retry stream per `(from, to)`
    ///   edge, except a retry only re-pays the recovery delay (the burst
    ///   stays queued at the relay; no re-serialization). The receiver's
    ///   drain waits for the delayed arrival; a dead edge contributes
    ///   nothing and its `Arrived` is never scheduled.
    ///
    /// # Panics
    /// Panics if `profiles` and `work` have different lengths, or if the
    /// plan was compiled for a different fleet size.
    pub fn new_with_faults(
        profiles: &[DeviceProfile],
        work: &[DeviceWork],
        plan: Option<&FaultPlan>,
    ) -> Self {
        assert_eq!(
            profiles.len(),
            work.len(),
            "one workload entry per device profile"
        );
        let faults = plan.filter(|p| !p.is_clean());
        if let Some(f) = faults {
            assert_eq!(
                f.num_devices(),
                profiles.len(),
                "fault plan compiled for a different fleet size"
            );
        }
        let n = profiles.len();
        let mut queue: EventQueue<SimEvent> = EventQueue::new();
        let mut busy = vec![0.0f64; n];
        let mut update_delivery: Vec<Option<f64>> = vec![None; n];
        // Burst barrier (compute + upload + latency) of every scheduled
        // device; `delivered` is Some only when the device actually ships a
        // burst.
        let mut barrier: Vec<Option<VirtualTime>> = vec![None; n];
        let mut delivered: Vec<Option<VirtualTime>> = vec![None; n];
        let mut bursts = vec![false; n];
        let mut active = 0usize;

        for (d, (p, w)) in profiles.iter().zip(work).enumerate() {
            if !p.available {
                continue;
            }
            active += 1;
            if w.is_idle() {
                continue;
            }
            p.validate();
            let compute_end = VirtualTime::new(p.compute_secs(w.compute_units));
            if let Some(frac) = faults.and_then(|f| f.crash_frac(d)) {
                // Mid-round crash: the device dies a fraction into its
                // compute span. Nothing downstream of its ComputeDone is
                // scheduled, and its only cost this round is the work it
                // burned before dying.
                let crash = VirtualTime::new(compute_end.secs() * frac);
                queue.push(crash, SimEvent::Crashed(d as u32));
                busy[d] = crash.secs();
                continue;
            }
            queue.push(compute_end, SimEvent::ComputeDone(d as u32));
            let upload = p.upload_secs(w.bytes_out);
            let download = p.download_secs(w.bytes_in());
            let burst = w.messages_out > 0 || w.bytes_out > 0;
            bursts[d] = burst;
            let barrier_d = compute_end.after(upload).after(p.latency_secs);
            barrier[d] = Some(barrier_d);
            if burst {
                delivered[d] = Some(barrier_d);
            }
            update_delivery[d] = Some(if burst {
                barrier_d.secs()
            } else {
                compute_end.secs()
            });
            // Busy time mirrors the event chain exactly (same additions in
            // the same order, so a self-timed straggler's idle time is a
            // bitwise 0.0): any traffic serializes upload → latency → drain
            // after the compute. Waiting on other senders' deliveries is
            // idle.
            let has_traffic = burst || w.bytes_in() > 0;
            busy[d] = if has_traffic {
                ((compute_end.secs() + upload) + p.latency_secs) + download
            } else {
                compute_end.secs()
            };
            if !burst {
                continue;
            }
            let Some(send) = faults.and_then(|f| f.upload(d)) else {
                continue;
            };
            // Lost upload: walk the retry chain. Attempt i's would-be
            // landing is `landing`; each retry waits the recovery delay,
            // then re-serializes the burst (upload + latency again).
            let mut landing = barrier_d;
            for &delay_us in &send.retry_delays_us {
                queue.push(landing, SimEvent::Lost(d as u32));
                let due = landing.after(us_to_secs(delay_us));
                queue.push(due, SimEvent::RetryDue(d as u32));
                landing = due.after(upload).after(p.latency_secs);
            }
            // Each retry re-pays the upload's serialization (the timeout
            // and backoff in between are idle waiting, not busy time).
            busy[d] += send.retries() as f64 * upload;
            barrier[d] = Some(landing);
            if send.exhausted {
                // The final attempt is lost too: the update never lands
                // this round. Its own drain still runs (the device is
                // alive), but policies see no delivery — the caller
                // degrades the update into the staleness buffer.
                queue.push(landing, SimEvent::Lost(d as u32));
                delivered[d] = None;
                update_delivery[d] = None;
            } else {
                delivered[d] = Some(landing);
                update_delivery[d] = Some(landing.secs());
            }
        }

        // Per-destination pass: each scheduled receiver's drain start is
        // the max of its own barrier and its live cross-senders' delivery
        // times; the transpose gives every sender its per-edge arrival
        // events.
        let mut drain_end: Vec<Option<VirtualTime>> = vec![None; n];
        let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Live faulted edges land later than the sender's burst; dead ones
        // (retry budget exhausted) never land at all.
        let mut edge_arrivals: BTreeMap<(u32, u32), VirtualTime> = BTreeMap::new();
        let mut dead_edges: BTreeMap<(u32, u32), ()> = BTreeMap::new();
        for (d, w) in work.iter().enumerate() {
            let Some(own_barrier) = barrier[d] else {
                continue;
            };
            if w.bytes_in() == 0 {
                continue;
            }
            let mut start = own_barrier;
            if let Inbound::PerSender(list) = &w.inbound {
                for &(s, bytes) in list {
                    if bytes == 0 || s == d as u32 || s == SERVER_SENDER {
                        continue;
                    }
                    let Some(t) = delivered.get(s as usize).copied().flatten() else {
                        // Absent/idle/burst-less sender: its payload is
                        // treated as staged (the overlay never blocks the
                        // round on a device the round skipped).
                        continue;
                    };
                    let key = (s, d as u32);
                    let mut arrive = t;
                    if let Some(ef) = faults.and_then(|f| f.edge(s, d as u32)) {
                        if dead_edges.contains_key(&key) {
                            continue;
                        }
                        arrive = match edge_arrivals.get(&key) {
                            Some(&a) => a,
                            None => {
                                // First occurrence of this edge: schedule
                                // its loss/retry stream. A retry only
                                // re-pays the recovery delay — the burst
                                // stays queued at the relay.
                                let mut landing = t;
                                for &delay_us in &ef.retry_delays_us {
                                    queue.push(landing, SimEvent::Lost(s));
                                    let due = landing.after(us_to_secs(delay_us));
                                    queue.push(due, SimEvent::RetryDue(s));
                                    landing = due;
                                }
                                if ef.exhausted {
                                    queue.push(landing, SimEvent::Lost(s));
                                    dead_edges.insert(key, ());
                                    continue;
                                }
                                edge_arrivals.insert(key, landing);
                                landing
                            }
                        };
                    }
                    if arrive > start {
                        start = arrive;
                    }
                    // A sender repeated in the ledger list contributes one
                    // delivery edge, not one per occurrence: within this
                    // receiver's loop every push into `out_edges[s]` is
                    // `d`, so a trailing `d` means `s` was already
                    // recorded.
                    if out_edges[s as usize].last() != Some(&(d as u32)) {
                        out_edges[s as usize].push(d as u32);
                    }
                }
            }
            drain_end[d] = Some(start.after(profiles[d].download_secs(w.bytes_in())));
        }

        Self {
            queue,
            busy,
            update_delivery,
            delivered,
            drain_end,
            out_edges,
            bursts,
            available: profiles.iter().map(|p| p.available).collect(),
            active,
            edge_arrivals,
        }
    }

    /// When each device's own update will land: its burst delivery time, or
    /// its compute end when it ships nothing; `None` for absent or idle
    /// devices. The schedule is static, so this is known before the first
    /// event pops — it is the signal arrival-time policies precompute their
    /// deadlines and quorums from.
    pub fn update_delivery_secs(&self) -> &[Option<f64>] {
        &self.update_delivery
    }

    /// Whether each device ships an outbound burst this epoch: a bursting
    /// device's update lands at its `Delivered` event, a burst-less one's
    /// at its `ComputeDone`.
    pub fn ships_burst(&self) -> &[bool] {
        &self.bursts
    }

    /// Devices that participate this epoch (available, regardless of
    /// workload).
    pub fn active_devices(&self) -> usize {
        self.active
    }

    /// Runs the schedule to completion — or to the handler's
    /// [`Control::CloseRound`] — and returns the epoch's statistics.
    ///
    /// The handler sees every event in deterministic `(time, kind, device)`
    /// order. An uninterrupted run (a handler that always returns
    /// [`Control::Continue`]) reproduces the lockstep `simulate_epoch`
    /// bit for bit. On an early close the makespan is the closing event's
    /// timestamp, remaining events are discarded, and per-device busy time
    /// is clamped to the makespan so `busy + idle = makespan` still holds
    /// for every active device.
    pub fn run(mut self, mut handler: impl FnMut(VirtualTime, &SimEvent) -> Control) -> EpochStats {
        let mut events = 0u64;
        let mut straggler = None;
        let mut makespan = VirtualTime::ZERO;
        let mut closed = false;
        while let Some((t, ev)) = self.queue.pop() {
            events += 1;
            makespan = t;
            straggler = Some(ev.device());
            if let SimEvent::ComputeDone(dev) = ev {
                let d = dev as usize;
                // Uplink: messages serialize, so the burst's last message
                // lands one latency after the whole upload ends. Only the
                // closing delivery plus one arrival per receiving edge are
                // scheduled — earlier intra-burst deliveries are strictly
                // before them and observable by nothing.
                if let Some(time) = self.delivered[d] {
                    self.queue.push(time, SimEvent::Delivered(dev));
                    for &to in &self.out_edges[d] {
                        // A fault-delayed edge arrives at its retried
                        // landing; every other edge at the burst delivery
                        // (the map is empty without a fault plan).
                        let at = if self.edge_arrivals.is_empty() {
                            time
                        } else {
                            self.edge_arrivals.get(&(dev, to)).copied().unwrap_or(time)
                        };
                        self.queue.push(at, SimEvent::Arrived { from: dev, to });
                    }
                }
                // Downlink: the drain end was priced in the per-destination
                // pass (start >= the device's own barrier, so never in the
                // simulated past of this handler).
                if let Some(end) = self.drain_end[d] {
                    self.queue.push(end, SimEvent::InboxDrained(dev));
                }
            }
            if handler(t, &ev) == Control::CloseRound {
                closed = true;
                break;
            }
        }

        let makespan_secs = makespan.secs();
        let mut busy = self.busy;
        if closed {
            // The round closed mid-schedule: devices still mid-chain spend
            // the remainder of their critical path in the *next* round's
            // accounting, so their busy time here is capped at the close.
            for (b, &avail) in busy.iter_mut().zip(&self.available) {
                if avail && *b > makespan_secs {
                    *b = makespan_secs;
                }
            }
        }
        let idle = self
            .available
            .iter()
            .zip(&busy)
            .map(|(&avail, &b)| {
                if avail {
                    // Busy is each device's serialized critical path,
                    // computed with the exact float additions of the event
                    // chain, and the closing drain fires at or after that
                    // path's end — so busy can never exceed the makespan (a
                    // clamp here once masked the missing latency term).
                    let idle = makespan_secs - b;
                    debug_assert!(idle >= 0.0, "busy {b} exceeds makespan {makespan_secs}");
                    idle
                } else {
                    0.0
                }
            })
            .collect();
        EpochStats {
            makespan_secs,
            busy_secs: busy,
            idle_secs: idle,
            update_delivery_secs: self.update_delivery,
            straggler,
            active_devices: self.active,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_work(units: f64) -> DeviceWork {
        DeviceWork::aggregate(units, 1, 100, 0)
    }

    #[test]
    fn uninterrupted_run_matches_the_lockstep_simulator_bitwise() {
        let mut profiles = vec![DeviceProfile::baseline(); 4];
        for (i, p) in profiles.iter_mut().enumerate() {
            p.compute_rate = 80.0 / (i + 1) as f64;
        }
        let work: Vec<DeviceWork> = (0..4u32)
            .map(|i| DeviceWork {
                compute_units: 50.0 * (i + 1) as f64,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![((i + 1) % 4, 32)]),
            })
            .collect();
        let lockstep = crate::epoch::simulate_epoch(&profiles, &work);
        let event_driven = EventDrivenRuntime::new(&profiles, &work).run(|_, _| Control::Continue);
        assert_eq!(lockstep, event_driven);
    }

    #[test]
    fn handler_sees_every_event_in_order() {
        let profiles = vec![DeviceProfile::baseline(); 2];
        let work = vec![burst_work(100.0), burst_work(200.0)];
        let mut seen: Vec<(f64, SimEvent)> = Vec::new();
        let stats = EventDrivenRuntime::new(&profiles, &work).run(|t, ev| {
            seen.push((t.secs(), *ev));
            Control::Continue
        });
        assert_eq!(seen.len() as u64, stats.events);
        assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0), "time went back");
        assert_eq!(seen[0].1, SimEvent::ComputeDone(0));
        assert_eq!(seen.last().unwrap().1, SimEvent::Delivered(1));
    }

    #[test]
    fn close_round_discards_the_tail_and_caps_busy() {
        // Device 1 is a 100× straggler; closing at device 0's delivery must
        // shrink the makespan to that instant and keep busy <= makespan.
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 100.0;
        let work = vec![burst_work(100.0), burst_work(100.0)];
        let full = EventDrivenRuntime::new(&profiles, &work).run(|_, _| Control::Continue);
        let closed = EventDrivenRuntime::new(&profiles, &work).run(|_, ev| {
            if *ev == SimEvent::Delivered(0) {
                Control::CloseRound
            } else {
                Control::Continue
            }
        });
        assert!(closed.makespan_secs < full.makespan_secs);
        assert_eq!(closed.straggler, Some(0));
        assert!(closed.events < full.events);
        for d in 0..2 {
            assert!(closed.busy_secs[d] <= closed.makespan_secs);
            assert!(closed.idle_secs[d] >= 0.0);
        }
        let u = closed.mean_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn arrived_events_name_their_receiver() {
        let profiles = vec![DeviceProfile::baseline(); 2];
        let work = vec![
            DeviceWork {
                compute_units: 100.0,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![(1, 64)]),
            },
            burst_work(100.0),
        ];
        let mut arrivals = Vec::new();
        EventDrivenRuntime::new(&profiles, &work).run(|_, ev| {
            if let SimEvent::Arrived { from, to } = *ev {
                arrivals.push((from, to));
            }
            Control::Continue
        });
        assert_eq!(arrivals, vec![(1, 0)]);
    }

    #[test]
    fn a_none_plan_is_the_unfaulted_schedule_bitwise() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy};
        let mut profiles = vec![DeviceProfile::baseline(); 4];
        profiles[2].compute_rate /= 3.0;
        let work: Vec<DeviceWork> = (0..4u32)
            .map(|i| DeviceWork {
                compute_units: 60.0 * (i + 1) as f64,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![((i + 1) % 4, 32)]),
            })
            .collect();
        let mut st = FaultState::new(FaultSpec::None, RecoveryPolicy::default(), 3);
        let plan = st.compile_round(&profiles);
        let clean = EventDrivenRuntime::new(&profiles, &work).run(|_, _| Control::Continue);
        let planned = EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan))
            .run(|_, _| Control::Continue);
        assert_eq!(clean, planned);
    }

    #[test]
    fn a_crash_replaces_the_device_chain_with_one_event() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy};
        let profiles = vec![DeviceProfile::baseline(); 2];
        let work = vec![burst_work(100.0), burst_work(100.0)];
        let mut st = FaultState::new(
            FaultSpec::Faults {
                crash_rate: 1.0,
                loss_rate: 0.0,
                duplicate_rate: 0.0,
                outages: Vec::new(),
            },
            RecoveryPolicy::default(),
            7,
        );
        let plan = st.compile_round(&profiles);
        let rt = EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan));
        assert_eq!(rt.update_delivery_secs(), &[None, None]);
        let mut seen = Vec::new();
        let stats = rt.run(|t, ev| {
            seen.push((t.secs(), *ev));
            Control::Continue
        });
        assert_eq!(seen.len(), 2, "one Crashed per device, nothing else");
        for &(t, ev) in &seen {
            let SimEvent::Crashed(dev) = ev else {
                panic!("unexpected event {ev:?}");
            };
            let d = dev as usize;
            let frac = plan.crash_frac(d).unwrap();
            let compute = profiles[d].compute_secs(100.0);
            assert_eq!(t.to_bits(), (compute * frac).to_bits());
            assert_eq!(stats.busy_secs[d].to_bits(), t.to_bits());
        }
        assert_eq!(stats.active_devices, 2, "a crashed device still counts");
    }

    #[test]
    fn a_recovered_upload_lands_at_the_final_retry() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy, SendFaults};
        let profiles = vec![DeviceProfile::baseline(); 1];
        let work = vec![burst_work(100.0)];
        // Find a seed whose single-device round has >= 1 retry that still
        // recovers (loss 0.5 with a budget of 8 recovers almost surely).
        let recovery = RecoveryPolicy {
            timeout_us: 2_000_000,
            backoff_base_us: 1_000_000,
            jitter_us: 500_000,
            retry_budget: 8,
        };
        let (plan, send) = (0u64..64)
            .find_map(|seed| {
                let mut st = FaultState::new(FaultSpec::message_loss(0.5), recovery, seed);
                let plan = st.compile_round(&profiles);
                let send: Option<SendFaults> = plan.upload(0).cloned();
                send.filter(|s| !s.exhausted && s.retries() >= 1)
                    .map(|s| (plan, s))
            })
            .expect("some seed recovers after at least one retry");
        let clean = EventDrivenRuntime::new(&profiles, &work);
        let first_landing = clean.update_delivery_secs()[0].unwrap();
        let rt = EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan));
        let landed = rt.update_delivery_secs()[0].unwrap();
        // Each retry adds its recovery delay plus a full re-serialization.
        let p = &profiles[0];
        let mut expect = first_landing;
        for &delay_us in &send.retry_delays_us {
            expect =
                (expect + crate::fault::us_to_secs(delay_us) + p.upload_secs(100)) + p.latency_secs;
        }
        assert_eq!(landed.to_bits(), expect.to_bits());
        let mut lost = 0u32;
        let mut retries = 0u32;
        let stats = rt.run(|_, ev| {
            match ev {
                SimEvent::Lost(0) => lost += 1,
                SimEvent::RetryDue(0) => retries += 1,
                _ => {}
            }
            Control::Continue
        });
        assert_eq!(u64::from(lost), send.lost_attempts());
        assert_eq!(u64::from(retries), send.retries());
        assert_eq!(stats.update_delivery_secs[0], Some(landed));
        assert!(stats.makespan_secs >= landed);
        assert!(stats.idle_secs[0] >= 0.0);
    }

    #[test]
    fn an_exhausted_upload_never_lands_but_still_terminates() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy, HARD_RETRY_CAP};
        let profiles = vec![DeviceProfile::baseline(); 2];
        let work = vec![burst_work(100.0), burst_work(100.0)];
        let mut st = FaultState::new(
            FaultSpec::message_loss(1.0),
            RecoveryPolicy {
                retry_budget: u32::MAX,
                ..RecoveryPolicy::default()
            },
            11,
        );
        let plan = st.compile_round(&profiles);
        let rt = EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan));
        assert_eq!(
            rt.update_delivery_secs(),
            &[None, None],
            "exhausted sends never land"
        );
        let mut lost = 0u64;
        let stats = rt.run(|_, ev| {
            if matches!(ev, SimEvent::Lost(_)) {
                lost += 1;
            }
            Control::Continue
        });
        // Budget capped at HARD_RETRY_CAP: per device, CAP retries plus the
        // final lost attempt.
        assert_eq!(lost, 2 * (u64::from(HARD_RETRY_CAP) + 1));
        assert!(stats.makespan_secs.is_finite());
        for d in 0..2 {
            assert!(stats.idle_secs[d] >= 0.0);
        }
    }

    #[test]
    fn a_dead_cross_edge_never_arrives_and_a_delayed_one_arrives_late() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy};
        // Device 0 receives from 1; the 1 -> 0 edge is exhausted under
        // total loss, so no Arrived fires and 0's drain starts at its own
        // barrier.
        let profiles = vec![DeviceProfile::baseline(); 2];
        let work = vec![
            DeviceWork {
                compute_units: 100.0,
                messages_out: 1,
                bytes_out: 64,
                inbound: Inbound::PerSender(vec![(1, 64)]),
            },
            burst_work(100.0),
        ];
        let mut st = FaultState::new(FaultSpec::None, RecoveryPolicy::default(), 5);
        let clean_plan = st.compile_round_with_edges(&profiles, &[(1, 0)]);
        assert!(clean_plan.is_clean());

        let mut st = FaultState::new(FaultSpec::message_loss(1.0), RecoveryPolicy::default(), 5);
        let plan = st.compile_round_with_edges(&profiles, &[(1, 0)]);
        assert!(plan.edge(1, 0).unwrap().exhausted);
        let mut arrivals = Vec::new();
        let stats =
            EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan)).run(|_, ev| {
                if let SimEvent::Arrived { from, to } = *ev {
                    arrivals.push((from, to));
                }
                Control::Continue
            });
        assert!(arrivals.is_empty(), "a dead edge never arrives");
        assert!(stats.makespan_secs.is_finite());
    }

    #[test]
    fn fault_events_respect_the_total_order() {
        use crate::fault::{FaultSpec, FaultState, RecoveryPolicy};
        let profiles = vec![DeviceProfile::baseline(); 6];
        let work: Vec<DeviceWork> = (0..6).map(|_| burst_work(100.0)).collect();
        let mut st = FaultState::new(
            FaultSpec::Faults {
                crash_rate: 0.3,
                loss_rate: 0.4,
                duplicate_rate: 0.0,
                outages: Vec::new(),
            },
            RecoveryPolicy::default(),
            13,
        );
        let plan = st.compile_round(&profiles);
        let mut last = VirtualTime::ZERO;
        let mut fault_events = 0u64;
        EventDrivenRuntime::new_with_faults(&profiles, &work, Some(&plan)).run(|t, ev| {
            assert!(t >= last, "time went backwards at {ev:?}");
            if matches!(
                ev,
                SimEvent::Crashed(_) | SimEvent::Lost(_) | SimEvent::RetryDue(_)
            ) {
                fault_events += 1;
            }
            last = t;
            Control::Continue
        });
        assert!(fault_events > 0, "seeded faults must surface as events");
    }

    #[test]
    fn schedule_exposes_the_static_timing_signal() {
        let mut profiles = vec![DeviceProfile::baseline(); 3];
        profiles[2].available = false;
        let work = vec![
            burst_work(100.0),
            DeviceWork::aggregate(100.0, 0, 0, 0),
            burst_work(100.0),
        ];
        let rt = EventDrivenRuntime::new(&profiles, &work);
        assert_eq!(rt.active_devices(), 2);
        assert_eq!(rt.ships_burst(), &[true, false, false]);
        let planned = rt.update_delivery_secs().to_vec();
        assert!(planned[0].is_some() && planned[1].is_some());
        assert_eq!(planned[2], None, "absent device has no landing");
        // The static signal is exactly what the finished run reports.
        let stats = rt.run(|_, _| Control::Continue);
        assert_eq!(planned, stats.update_delivery_secs);
    }
}
