//! Named device-fleet scenarios and their round-to-round evolution.
//!
//! A [`Scenario`] is a preset [`FleetSpec`] — a point on the mild → extreme
//! heterogeneity axis — plus churn behavior. [`ScenarioState`] owns the
//! sampled fleet and a private RNG stream, applies dropout/rejoin between
//! rounds, and guarantees at least one device stays available, so a run
//! can never stall on an empty fleet.

use lumos_common::rng::Xoshiro256pp;

use crate::profile::{DeviceProfile, FleetSpec, Heterogeneity};

/// The scenario presets the heterogeneity sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Identical devices: the degenerate case where the event-driven
    /// makespan reduces to the old global cost model's shape.
    Uniform,
    /// A lognormal fleet of phones: moderate compute skew, strong
    /// bandwidth skew, no churn.
    MobileFleet,
    /// A Pareto compute tail: a few devices are extreme stragglers.
    StragglerTail,
    /// Mild heterogeneity plus devices dropping out and rejoining
    /// between rounds.
    Churn,
}

impl Scenario {
    /// All presets, in sweep order (mild → extreme → churn).
    pub const ALL: [Scenario; 4] = [
        Scenario::Uniform,
        Scenario::MobileFleet,
        Scenario::StragglerTail,
        Scenario::Churn,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::MobileFleet => "mobile-fleet",
            Scenario::StragglerTail => "straggler-tail",
            Scenario::Churn => "churn",
        }
    }

    /// Parses a scenario name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Some(Scenario::Uniform),
            "mobile-fleet" | "mobile" => Some(Scenario::MobileFleet),
            "straggler-tail" | "stragglers" => Some(Scenario::StragglerTail),
            "churn" => Some(Scenario::Churn),
            _ => None,
        }
    }

    /// The fleet distribution this scenario samples devices from.
    pub fn fleet_spec(self) -> FleetSpec {
        let base = DeviceProfile::baseline();
        match self {
            Scenario::Uniform => FleetSpec {
                base,
                compute: Heterogeneity::Uniform,
                link: Heterogeneity::Uniform,
                dropout: 0.0,
                rejoin: 1.0,
            },
            Scenario::MobileFleet => FleetSpec {
                base,
                compute: Heterogeneity::LogNormal { sigma: 0.5 },
                link: Heterogeneity::LogNormal { sigma: 0.75 },
                dropout: 0.0,
                rejoin: 1.0,
            },
            Scenario::StragglerTail => FleetSpec {
                base,
                compute: Heterogeneity::Pareto { alpha: 1.1 },
                link: Heterogeneity::Jitter { spread: 0.25 },
                dropout: 0.0,
                rejoin: 1.0,
            },
            Scenario::Churn => FleetSpec {
                base,
                compute: Heterogeneity::LogNormal { sigma: 0.35 },
                link: Heterogeneity::LogNormal { sigma: 0.5 },
                dropout: 0.10,
                rejoin: 0.60,
            },
        }
    }
}

/// A sampled fleet evolving round by round under its scenario's churn.
#[derive(Debug, Clone)]
pub struct ScenarioState {
    scenario: Scenario,
    spec: FleetSpec,
    profiles: Vec<DeviceProfile>,
    rng: Xoshiro256pp,
    rounds: u64,
    dropped_device_rounds: u64,
}

impl ScenarioState {
    /// Samples a fleet of `n` devices. The state owns an RNG stream derived
    /// only from `seed`, so scenario timing never perturbs the trainer's
    /// stochastic streams (same seed ⇒ same training math, scenario or not).
    pub fn new(scenario: Scenario, n: usize, seed: u64) -> Self {
        let spec = scenario.fleet_spec();
        // Domain-separate from the trainer's seed usage.
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x51AC_051A_u64.rotate_left(17));
        let profiles = spec.sample_fleet(n, &mut rng);
        Self {
            scenario,
            spec,
            profiles,
            rng,
            rounds: 0,
            dropped_device_rounds: 0,
        }
    }

    /// The scenario this state was built from.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The fleet as of the current round.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// Rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total device-rounds lost to churn so far.
    pub fn dropped_device_rounds(&self) -> u64 {
        self.dropped_device_rounds
    }

    /// Applies one round of churn: available devices drop with probability
    /// `dropout`, dropped devices rejoin with probability `rejoin`. At
    /// least one device always stays available.
    pub fn advance_round(&mut self) {
        self.rounds += 1;
        if self.spec.dropout > 0.0 || self.profiles.iter().any(|p| !p.available) {
            for p in self.profiles.iter_mut() {
                if p.available {
                    if self.rng.bernoulli(self.spec.dropout) {
                        p.available = false;
                    }
                } else if self.rng.bernoulli(self.spec.rejoin) {
                    p.available = true;
                }
            }
            if !self.profiles.is_empty() && self.profiles.iter().all(|p| !p.available) {
                // Revive a device drawn from the scenario's own seeded
                // stream. (Always reviving `profiles[0]` — the previous
                // behavior — systematically biased device 0's availability
                // whenever churn emptied the fleet.)
                let idx = self.rng.index(self.profiles.len());
                self.profiles[idx].available = true;
            }
        }
        self.dropped_device_rounds += self.profiles.iter().filter(|p| !p.available).count() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn uniform_fleet_is_flat() {
        let st = ScenarioState::new(Scenario::Uniform, 16, 7);
        let first = st.profiles()[0];
        assert!(st.profiles().iter().all(|p| *p == first));
        assert!(first.available);
    }

    #[test]
    fn straggler_tail_is_more_skewed_than_uniform() {
        let st = ScenarioState::new(Scenario::StragglerTail, 256, 7);
        let rates: Vec<f64> = st.profiles().iter().map(|p| p.compute_rate).collect();
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 5.0, "expected a heavy tail, got {max}/{min}");
    }

    #[test]
    fn churn_drops_and_rejoins_but_never_empties() {
        let mut st = ScenarioState::new(Scenario::Churn, 64, 11);
        let mut saw_drop = false;
        for _ in 0..50 {
            st.advance_round();
            let avail = st.profiles().iter().filter(|p| p.available).count();
            assert!(avail >= 1, "fleet must never empty");
            saw_drop |= avail < 64;
        }
        assert!(saw_drop, "10% dropout over 50 rounds must drop someone");
        assert!(st.dropped_device_rounds() > 0);
        assert_eq!(st.rounds(), 50);
    }

    #[test]
    fn no_churn_scenarios_keep_everyone() {
        for s in [
            Scenario::Uniform,
            Scenario::MobileFleet,
            Scenario::StragglerTail,
        ] {
            let mut st = ScenarioState::new(s, 32, 3);
            for _ in 0..10 {
                st.advance_round();
            }
            assert!(st.profiles().iter().all(|p| p.available));
            assert_eq!(st.dropped_device_rounds(), 0);
        }
    }

    #[test]
    fn revival_is_unbiased_across_seeds_and_deterministic_per_seed() {
        // Force total churn: everyone drops every round, nobody rejoins,
        // so the keep-alive revival fires each time. The revived device
        // must come from the seeded stream, not always slot 0.
        let survivors = |seed: u64, rounds: usize| -> Vec<usize> {
            let mut st = ScenarioState::new(Scenario::Churn, 16, seed);
            st.spec.dropout = 1.0;
            st.spec.rejoin = 0.0;
            (0..rounds)
                .map(|_| {
                    st.advance_round();
                    let alive: Vec<usize> = st
                        .profiles()
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.available)
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(alive.len(), 1, "exactly the revived device survives");
                    alive[0]
                })
                .collect()
        };
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            let a = survivors(seed, 12);
            let b = survivors(seed, 12);
            assert_eq!(a, b, "seed {seed}: revival must be deterministic");
            seen.extend(a);
        }
        assert!(
            seen.len() > 4,
            "revival must spread across the fleet, saw only {seen:?}"
        );
    }

    #[test]
    fn state_is_seed_deterministic() {
        let mut a = ScenarioState::new(Scenario::Churn, 32, 5);
        let mut b = ScenarioState::new(Scenario::Churn, 32, 5);
        for _ in 0..20 {
            a.advance_round();
            b.advance_round();
        }
        assert_eq!(a.profiles(), b.profiles());
        assert_eq!(a.dropped_device_rounds(), b.dropped_device_rounds());
    }
}
