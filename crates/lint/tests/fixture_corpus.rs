//! End-to-end corpus test: lints the fixture workspaces under
//! `tests/fixtures/` with the real default config and pins the result —
//! per-rule firing + suppression, and a byte-for-byte golden JSON snapshot.
//!
//! To regenerate the golden after an intentional rule change:
//! `cargo run -p lumos-lint -- --root crates/lint/tests/fixtures/ws \
//!    --format json --out crates/lint/tests/fixtures/golden_report.json`

#![forbid(unsafe_code)]

use std::path::PathBuf;

use lumos_lint::{lint_workspace, Config, Report};

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str) -> Report {
    lint_workspace(&Config::for_root(fixtures().join(name)))
}

/// Count findings for `rule`, split (unwaived, waived).
fn split(report: &Report, rule: &str) -> (usize, usize) {
    let hits = report.findings.iter().filter(|f| f.rule == rule);
    hits.fold(
        (0, 0),
        |(u, w), f| {
            if f.waived {
                (u, w + 1)
            } else {
                (u + 1, w)
            }
        },
    )
}

#[test]
fn every_rule_fires_and_every_waivable_rule_suppresses() {
    let report = lint_fixture("ws");
    assert_eq!(report.files_scanned, 10);

    // (rule, unwaived, waived) — one firing and one suppressed instance per
    // waivable rule; malformed-waiver is unwaivable by design.
    let expected = [
        ("nondeterministic-collection", 1, 1),
        ("wallclock-time", 2, 1), // the missing-reason waiver does not suppress
        ("unseeded-rng", 1, 1),
        ("secret-leak", 2, 1),
        ("unordered-scope-join", 1, 0),
        ("lossy-cast", 1, 1),
        ("malformed-waiver", 2, 0),
    ];
    for (rule, unwaived, waived) in expected {
        assert_eq!(
            split(&report, rule),
            (unwaived, waived),
            "rule {rule} has the wrong firing/suppression split"
        );
    }
    assert_eq!(report.unwaived_count(), 10);
    assert_eq!(report.waived_count(), 5);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn test_scope_and_allowlisted_fixtures_stay_silent() {
    let report = lint_fixture("ws");
    for silent in [
        "crates/app/tests/integration.rs", // tests/ path component
        "crates/app/src/tested.rs",        // #[cfg(test)] region masked
        "crates/crypto/src/slice.rs",      // audited thread::scope allowlist
    ] {
        assert!(
            report.findings.iter().all(|f| f.file != silent),
            "{silent} must produce no findings"
        );
    }
}

#[test]
fn every_waived_finding_carries_a_nonempty_reason() {
    let report = lint_fixture("ws");
    for f in report.findings.iter().filter(|f| f.waived) {
        let reason = f.reason.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "waived finding at {}:{} has no reason",
            f.file,
            f.line
        );
    }
}

#[test]
fn golden_json_snapshot_is_byte_identical() {
    let report = lint_fixture("ws");
    let golden = std::fs::read_to_string(fixtures().join("golden_report.json"))
        .expect("golden_report.json missing — regenerate per the module docs");
    assert_eq!(
        report.render_json(),
        golden,
        "lint output diverged from the golden snapshot; if the change is \
         intentional, regenerate per the module docs"
    );
}

#[test]
fn clean_fixture_workspace_has_no_findings() {
    let report = lint_fixture("clean_ws");
    assert_eq!(report.files_scanned, 1);
    assert!(report.findings.is_empty());
    assert_eq!(report.exit_code(), 0);
}
