//! The gate bites: drives the compiled `lumos-lint` binary exactly as CI
//! does and asserts the exit codes — 1 for a workspace with a bare
//! `HashMap`, 0 for a clean one — plus the JSON artifact on disk.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::Command;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn dirty_fixture_exits_one_and_writes_the_json_artifact() {
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixture_lint.json");
    let status = Command::new(env!("CARGO_BIN_EXE_lumos-lint"))
        .arg("--root")
        .arg(fixtures().join("ws"))
        .arg("--format")
        .arg("json")
        .arg("--out")
        .arg(&out)
        .status()
        .expect("lumos-lint binary runs");
    assert_eq!(status.code(), Some(1), "unwaived findings must exit 1");

    let json = std::fs::read_to_string(&out).expect("JSON artifact written");
    assert!(json.contains("\"tool\": \"lumos-lint\""));
    assert!(json.contains("\"rule\": \"nondeterministic-collection\""));
    assert!(json.contains("\"unwaived\": 10"));
}

#[test]
fn clean_fixture_exits_zero() {
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("clean_lint.json");
    let status = Command::new(env!("CARGO_BIN_EXE_lumos-lint"))
        .arg("--root")
        .arg(fixtures().join("clean_ws"))
        .arg("--format")
        .arg("json")
        .arg("--out")
        .arg(&out)
        .status()
        .expect("lumos-lint binary runs");
    assert_eq!(status.code(), Some(0), "a clean workspace must exit 0");
    let json = std::fs::read_to_string(&out).expect("JSON artifact written");
    assert!(json.contains("\"unwaived\": 0"));
}

#[test]
fn unknown_flag_exits_two() {
    let status = Command::new(env!("CARGO_BIN_EXE_lumos-lint"))
        .arg("--frobnicate")
        .status()
        .expect("lumos-lint binary runs");
    assert_eq!(status.code(), Some(2));
}
