//! Fixture: `malformed-waiver` — a waiver without the mandatory reason and
//! a waiver naming an unknown rule. Neither suppresses anything.

pub fn missing_reason() -> u128 {
    let t = std::time::Instant::now(); // lumos-lint: allow(wallclock-time)
    t.elapsed().as_micros()
}

pub fn unknown_rule() {
    // lumos-lint: allow(no-such-rule) — the rule name is wrong on purpose
    let _ = 1;
}
