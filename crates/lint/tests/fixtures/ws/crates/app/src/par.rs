//! Fixture: `unordered-scope-join` — `thread::scope` outside the audited
//! allowlist.

pub fn fan_out(xs: &mut [u64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(move || *x += 1);
        }
    });
}
