//! Fixture: a `#[cfg(test)]` region inside live code — the lexer masks it,
//! so the `HashSet` below must not fire.

pub fn live() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn probe() {
        let mut s = HashSet::new();
        s.insert(super::live());
        assert!(s.contains(&7));
    }
}
