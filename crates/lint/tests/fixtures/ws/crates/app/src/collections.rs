//! Fixture: `nondeterministic-collection` — one firing site, one waived.

pub fn order_breaker(keys: &[u32]) -> usize {
    let mut m = std::collections::HashMap::new();
    for &k in keys {
        m.insert(k, ());
    }
    m.len()
}

pub fn membership_only(keys: &[u32]) -> bool {
    // lumos-lint: allow(nondeterministic-collection) — membership-only probe set, never iterated
    let s: std::collections::HashSet<u32> = keys.iter().copied().collect();
    s.contains(&0)
}
