//! Fixture: `unseeded-rng` — one firing site, one waived. The calls are
//! free-standing on purpose: fixtures are linted, never compiled.

pub fn ambient_draw() -> u64 {
    let mut r = thread_rng();
    r.next_u64()
}

pub fn reseed() -> u64 {
    // lumos-lint: allow(unseeded-rng) — fixture stand-in for an audited one-time reseed path
    from_entropy()
}
