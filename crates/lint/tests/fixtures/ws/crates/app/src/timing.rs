//! Fixture: `wallclock-time` — one firing site, one waived.

pub fn naive_elapsed(t0: std::time::Instant) -> std::time::Duration {
    let now = std::time::Instant::now();
    now - t0
}

pub fn metered_elapsed() -> std::time::Duration {
    let t = std::time::Instant::now(); // lumos-lint: allow(wallclock-time) — fixture metering shim, reported not consumed
    t.elapsed()
}
