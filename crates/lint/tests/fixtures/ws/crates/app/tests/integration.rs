//! Fixture: a `tests/` path — contract rules do not apply in test scope.

use std::collections::HashMap;

#[test]
fn order_free_assertion() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    assert_eq!(m.get(&1), Some(&2));
}
