//! Fixture: `secret-leak` — a print macro and a `Debug` derive on a
//! share-bearing type inside a secret crate, plus a waived LDP symbol and a
//! non-share type that must stay silent.

pub fn reveal(word: u64) {
    println!("share = {word}");
}

#[derive(Debug, Clone)]
pub struct WordShare {
    pub lo: u64,
}

// lumos-lint: allow(secret-leak) — fixture mirror of the ε-LDP EncodedValue waiver: post-randomization symbol
#[derive(Debug, Clone)]
pub struct EncodedSymbol {
    pub bit: bool,
}

#[derive(Debug, Clone)]
pub struct PlainMeter {
    pub us: u64,
}
