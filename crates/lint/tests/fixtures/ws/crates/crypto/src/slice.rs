//! Fixture: `thread::scope` on the audited-allowlist path
//! (`crates/crypto/src/slice.rs` in the default config) — no finding.

pub fn audited_join(xs: &mut [u64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(move || *x ^= 1);
        }
    });
}
