//! Fixture: `lossy-cast` — a narrowing cast and a waived float→int encode
//! in a fixed-point cost module; widening casts must stay silent.

pub fn truncating_id(n: usize) -> u32 {
    n as u32
}

pub fn encode_us(secs: f64) -> u64 {
    // lumos-lint: allow(lossy-cast) — fixture mirror of the audited fixed-point µs encode
    (secs * 1e6).round() as u64
}

pub fn widening_ok(n: u32) -> u64 {
    n as u64
}
