//! Fixture: a clean file — deterministic collections, no contract breaches.

use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}
