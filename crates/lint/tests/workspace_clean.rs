//! The contract gate as a workspace test: linting the real repository must
//! produce zero unwaived findings, and every waiver must carry its reason.
//! This is the same check the CLI and the CI `lint` job run.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use lumos_lint::{lint_workspace, Config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn real_workspace_has_zero_unwaived_findings() {
    let report = lint_workspace(&Config::for_root(workspace_root()));
    // Sanity: the walker actually saw the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walker is misrooted",
        report.files_scanned
    );
    assert_eq!(
        report.unwaived_count(),
        0,
        "unwaived contract violations:\n{}",
        report.render_text()
    );
}

#[test]
fn every_workspace_waiver_has_a_reason() {
    let report = lint_workspace(&Config::for_root(workspace_root()));
    for f in report.findings.iter().filter(|f| f.waived) {
        let reason = f.reason.as_deref().unwrap_or("");
        assert!(
            !reason.trim().is_empty(),
            "waiver without reason at {}:{}",
            f.file,
            f.line
        );
    }
}
