//! Findings and the JSON/text reports. The JSON serializer is hand-rolled
//! (pure std, deterministic field order) so the golden-snapshot test can
//! compare byte-for-byte.

use crate::rules::RULES;

/// One rule match at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    /// Root-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed and truncated.
    pub excerpt: String,
    pub waived: bool,
    pub reason: Option<String>,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: usize, excerpt: &str) -> Self {
        let mut e: String = excerpt.trim().chars().take(120).collect();
        if excerpt.trim().chars().count() > 120 {
            e.push('…');
        }
        Self {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            excerpt: e,
            waived: false,
            reason: None,
        }
    }
}

/// The full lint result over a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts deterministically and drops exact duplicates (a line can match
    /// one rule through two patterns).
    pub fn finish(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.findings.dedup();
    }

    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    pub fn unwaived_count(&self) -> usize {
        self.findings.len() - self.waived_count()
    }

    /// Exit status for the CLI and CI gate.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.unwaived_count() > 0)
    }

    /// Human-readable listing (unwaived first is unnecessary: sorted by
    /// file/line so output is stable under re-runs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let status = if f.waived {
                format!("waived: {}", f.reason.as_deref().unwrap_or(""))
            } else {
                "UNWAIVED".to_string()
            };
            out.push_str(&format!(
                "{}:{}: [{}] {} ({})\n",
                f.file, f.line, f.rule, f.excerpt, status
            ));
        }
        out.push_str(&format!(
            "lumos-lint: {} files, {} findings ({} waived, {} unwaived)\n",
            self.files_scanned,
            self.findings.len(),
            self.waived_count(),
            self.unwaived_count()
        ));
        out
    }

    /// Deterministic JSON document.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"tool\": \"lumos-lint\",\n  \"schema\": 1,\n");
        s.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"summary\": {}}}{}\n",
                json_str(r.id),
                json_str(r.summary),
                if i + 1 < RULES.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"counts\": {{\"files\": {}, \"findings\": {}, \"waived\": {}, \"unwaived\": {}}},\n",
            self.files_scanned,
            self.findings.len(),
            self.waived_count(),
            self.unwaived_count()
        ));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"excerpt\": {}, \"waived\": {}, \"reason\": {}}}{}\n",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.excerpt),
                f.waived,
                f.reason.as_deref().map_or("null".to_string(), json_str),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_exit_code() {
        let mut r = Report::default();
        r.findings
            .push(Finding::new("wallclock-time", "b.rs", 2, "x"));
        r.findings.push({
            let mut f = Finding::new("lossy-cast", "a.rs", 1, "y");
            f.waived = true;
            f.reason = Some("bounded".into());
            f
        });
        r.finish();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.waived_count(), 1);
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.exit_code(), 1);
        r.findings.retain(|f| f.waived);
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn json_escapes_and_is_parseable_shape() {
        let mut r = Report::default();
        r.findings
            .push(Finding::new("secret-leak", "a.rs", 1, "say \"hi\"\\"));
        let j = r.render_json();
        assert!(j.contains(r#""say \"hi\"\\""#));
        assert!(j.contains("\"unwaived\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn long_excerpts_truncate() {
        let long = "x".repeat(300);
        let f = Finding::new("lossy-cast", "a.rs", 1, &long);
        assert!(f.excerpt.chars().count() <= 121);
        assert!(f.excerpt.ends_with('…'));
    }
}
