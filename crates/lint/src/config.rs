//! Rule scoping configuration. The defaults encode the workspace's audited
//! state; fixture tests override individual fields.

use std::path::PathBuf;

/// Scoping knobs for the rule engine. All paths are root-relative with
/// forward slashes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root the walker starts from.
    pub root: PathBuf,
    /// Crates whose non-test code holds secret shares: print macros and
    /// `Debug` derives on share-bearing types are findings here.
    pub secret_crates: Vec<String>,
    /// Substrings that mark a type as share-bearing.
    pub share_markers: Vec<String>,
    /// Files audited for deterministic index-order joins: `thread::scope`
    /// is allowed here and a finding everywhere else. Audit evidence:
    /// `crates/crypto/src/slice.rs` folds per-word results back by word
    /// index; `crates/bench/src/presets.rs` joins per-device partitions in
    /// device order.
    pub audited_scope_join: Vec<String>,
    /// The fixed-point cost modules where a narrowing `as` cast corrupts
    /// the µs encoding.
    pub lossy_cast_files: Vec<String>,
}

impl Config {
    /// The workspace rule scoping, rooted at `root`.
    pub fn for_root(root: PathBuf) -> Self {
        Self {
            root,
            secret_crates: vec!["crates/crypto/".into(), "crates/ldp/".into()],
            share_markers: vec!["Share".into(), "Pad".into(), "Encoded".into()],
            audited_scope_join: vec![
                "crates/crypto/src/slice.rs".into(),
                "crates/bench/src/presets.rs".into(),
            ],
            lossy_cast_files: vec![
                "crates/balance/src/problem.rs".into(),
                "crates/balance/src/mcmc.rs".into(),
                "crates/balance/src/maxfind.rs".into(),
                "crates/fed/src/runtime.rs".into(),
                "crates/sim/src/profile.rs".into(),
                // PR 10: retry/backoff delays are fixed-point µs end to
                // end; a narrowing cast here would corrupt the recovery
                // schedule's determinism contract.
                "crates/sim/src/fault.rs".into(),
            ],
        }
    }

    /// Defaults with an unset root (unit tests that never touch the disk).
    pub fn defaults() -> Self {
        Self::for_root(PathBuf::new())
    }
}
