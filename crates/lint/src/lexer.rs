//! A minimal Rust lexer for rule scanning: not a parser, but enough token
//! discipline that rules never match inside comments, string/char literals,
//! or test-only code.
//!
//! [`lex`] produces a *scrubbed* copy of the source with the same byte
//! layout (every line keeps its line number) in which
//!
//! * line comments, block comments (nested), string literals (plain, raw,
//!   byte, byte-raw) and char literals are blanked to spaces, and
//! * `#[cfg(test)]` items and `mod tests { … }` blocks are blanked wholesale,
//!
//! so a rule that greps the scrubbed text sees only live, non-test code.
//! Waiver comments (`// lumos-lint: allow(<rule>) — <reason>`) are parsed
//! out of the comment stream before it is blanked.

/// A parsed waiver annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule ids the waiver suppresses.
    pub rules: Vec<String>,
    /// Mandatory justification (non-empty by construction).
    pub reason: String,
    /// True when the line holds nothing but the comment, in which case the
    /// waiver applies to the *next* line instead of its own.
    pub comment_only: bool,
}

/// A comment that mentions `lumos-lint` but does not parse as a waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Malformed {
    pub line: usize,
    pub message: String,
}

/// Lexing result: scrubbed source plus the waiver annotations found.
#[derive(Debug)]
pub struct LexedFile {
    /// Same length/line structure as the input; non-code blanked to spaces.
    pub scrubbed: String,
    pub waivers: Vec<Waiver>,
    pub malformed: Vec<Malformed>,
}

/// Lexes one source file. Never fails: unterminated constructs blank to the
/// end of input, which is the conservative direction (no false matches).
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = chars.clone();
    let mut comments: Vec<(usize, String)> = Vec::new();

    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Doc comments are rendered prose (they may *describe* the
                // waiver syntax); only plain `//` comments carry waivers.
                if !text.starts_with("///") && !text.starts_with("//!") {
                    comments.push((line, text));
                }
                blank(&mut out, start, i);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            '"' => {
                let end = scan_string(&chars, i, &mut line);
                blank(&mut out, i, end);
                i = end;
            }
            '\'' => {
                // Char literal or lifetime. A literal is `'\…'` or `'x'`;
                // anything else (`'a`, `'static`) is a lifetime and stays.
                if chars.get(i + 1) == Some(&'\\') {
                    let end = scan_char(&chars, i);
                    blank(&mut out, i, end);
                    i = end;
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1;
                }
            }
            'r' | 'b' if !prev_is_ident(&chars, i) => {
                // Possible raw/byte literal prefix: r", r#…", b", br", b'.
                let (is_match, end) = scan_prefixed_literal(&chars, i, &mut line);
                if is_match {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let mut scrubbed: String = out.into_iter().collect();
    mask_test_regions(&mut scrubbed);

    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    let scrubbed_lines: Vec<&str> = scrubbed.split('\n').collect();
    for (ln, text) in comments {
        match parse_waiver(&text) {
            None => {}
            Some(Err(message)) => malformed.push(Malformed { line: ln, message }),
            Some(Ok((rules, reason))) => {
                let comment_only = scrubbed_lines
                    .get(ln - 1)
                    .is_none_or(|l| l.trim().is_empty());
                waivers.push(Waiver {
                    line: ln,
                    rules,
                    reason,
                    comment_only,
                });
            }
        }
    }

    LexedFile {
        scrubbed,
        waivers,
        malformed,
    }
}

/// Blanks `[start, end)` to spaces, preserving newlines.
fn blank(out: &mut [char], start: usize, end: usize) {
    let end = end.min(out.len());
    for c in out.iter_mut().take(end).skip(start) {
        if *c != '\n' {
            *c = ' ';
        }
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Scans a plain string literal starting at the opening quote; returns the
/// index one past the closing quote.
fn scan_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Scans a char literal starting at the opening quote (escape form).
fn scan_char(chars: &[char], start: usize) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Recognizes `r"…"`, `r#"…"#…`, `b"…"`, `br#"…"#`, `b'…'` at `start`.
fn scan_prefixed_literal(chars: &[char], start: usize, line: &mut usize) -> (bool, usize) {
    let mut i = start;
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'r') {
            raw = true;
            i += 1;
        }
    } else {
        // chars[start] == 'r'
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        if chars.get(i) != Some(&'"') {
            return (false, start);
        }
        i += 1;
        // Scan to `"` followed by `hashes` hashes; no escapes in raw strings.
        while i < chars.len() {
            if chars[i] == '"'
                && chars[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return (true, i + 1 + hashes);
            }
            if chars[i] == '\n' {
                *line += 1;
            }
            i += 1;
        }
        (true, i)
    } else if chars.get(i) == Some(&'"') {
        (true, scan_string(chars, i, line))
    } else if chars.get(i) == Some(&'\'') {
        (true, scan_char(chars, i))
    } else {
        (false, start)
    }
}

/// Blanks `#[cfg(test)]` items and `mod tests { … }` blocks in a scrubbed
/// source (comments/literals already spaces, so brace matching is exact).
fn mask_test_regions(scrubbed: &mut String) {
    let mut chars: Vec<char> = scrubbed.chars().collect();
    loop {
        let region = find_cfg_test_item(&chars).or_else(|| find_mod_tests(&chars));
        match region {
            Some((start, end)) => blank(&mut chars, start, end),
            None => break,
        }
    }
    *scrubbed = chars.into_iter().collect();
}

/// Finds the first unmasked `#[cfg(test)]` attribute and returns the span of
/// the attribute plus the item it gates.
fn find_cfg_test_item(chars: &[char]) -> Option<(usize, usize)> {
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + needle.len() <= chars.len() {
        if chars[i..i + needle.len()] == needle[..] {
            let end = item_end(chars, i + needle.len());
            return Some((i, end));
        }
        i += 1;
    }
    None
}

/// Finds the first unmasked `mod tests { … }` block (belt-and-braces for
/// test modules missing the cfg attribute).
fn find_mod_tests(chars: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < chars.len() {
        if ident_at(chars, i, "mod") {
            let mut j = i + 3;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if ident_at(chars, j, "tests") {
                let end = item_end(chars, j + 5);
                return Some((i, end));
            }
        }
        i += 1;
    }
    None
}

/// True when `needle` occurs at `i` with identifier boundaries on both sides.
fn ident_at(chars: &[char], i: usize, needle: &str) -> bool {
    let n: Vec<char> = needle.chars().collect();
    if i + n.len() > chars.len() || chars[i..i + n.len()] != n[..] {
        return false;
    }
    let left_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    let right = i + n.len();
    let right_ok = right >= chars.len() || !(chars[right].is_alphanumeric() || chars[right] == '_');
    left_ok && right_ok
}

/// From just past an attribute/ident, skips further attributes and returns
/// the index one past the gated item: through the matching `}` of its first
/// top-level brace, or past the terminating `;` for braceless items.
fn item_end(chars: &[char], mut i: usize) -> usize {
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        // Skip stacked attributes (`#[derive(..)]`, doc attrs, …).
        if i < chars.len() && chars[i] == '#' && chars.get(i + 1) == Some(&'[') {
            let mut depth = 0usize;
            while i < chars.len() {
                match chars[i] {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        break;
    }
    let mut paren = 0i32;
    while i < chars.len() {
        match chars[i] {
            '(' | '[' => paren += 1,
            ')' | ']' => paren -= 1,
            ';' if paren == 0 => return i + 1,
            '{' if paren == 0 => {
                let mut depth = 0i32;
                while i < chars.len() {
                    match chars[i] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a waiver out of one line comment. `None`: not a lint comment.
/// `Some(Err)`: mentions lumos-lint but is malformed (missing reason,
/// unknown syntax). Rule-id validation happens in the rule engine, which
/// owns the registry.
fn parse_waiver(comment: &str) -> Option<Result<(Vec<String>, String), String>> {
    let marker = "lumos-lint:";
    let pos = comment.find(marker)?;
    let rest = comment[pos + marker.len()..].trim_start();
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "expected `lumos-lint: allow(<rule>) — <reason>`".to_string()
        ));
    };
    let Some(close) = inner.find(')') else {
        return Some(Err("unclosed `allow(`".to_string()));
    };
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(Err("empty rule list in `allow()`".to_string()));
    }
    let tail = inner[close + 1..].trim_start();
    let reason = tail
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| tail.strip_prefix("--"))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Some(Err(
            "waiver reason is mandatory: `… allow(<rule>) — <reason>`".to_string(),
        ));
    }
    Some(Ok((rules, reason.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrub(src: &str) -> String {
        lex(src).scrubbed
    }

    #[test]
    fn line_and_block_comments_blank() {
        let s = scrub("let x = 1; // HashMap here\n/* HashSet */ let y = 2;");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("HashSet"));
        assert!(s.contains("let x = 1;"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_blank_fully() {
        let s = scrub("a /* outer /* inner HashMap */ still comment */ b");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("still comment"));
        assert!(s.starts_with('a'));
        assert!(s.trim_end().ends_with('b'));
    }

    #[test]
    fn string_contents_blank_but_code_stays() {
        let s = scrub("let m = \"HashMap::new()\"; let n = 1;");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let n = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_blank() {
        let s = scrub("let m = r#\"Instant::now() \"quoted\" \"#; let k = 2;");
        assert!(!s.contains("Instant"));
        assert!(s.contains("let k = 2;"));
        let s2 = scrub("let m = br##\"thread_rng\"##; f();");
        assert!(!s2.contains("thread_rng"));
        assert!(s2.contains("f();"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = scrub(r#"let m = "a \" HashMap"; g();"#);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("g();"));
    }

    #[test]
    fn char_literals_blank_lifetimes_survive() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.contains("'x'"));
        assert!(!s.contains("\\n"));
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let src = "let a = \"one\ntwo\nthree\";\nlet b = 1;";
        let s = scrub(src);
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
        assert!(s.lines().nth(3).unwrap().contains("let b = 1;"));
    }

    #[test]
    fn cfg_test_mod_region_blanks() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\nfn tail() {}";
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("fn live()"));
        assert!(s.contains("fn tail()"));
    }

    #[test]
    fn cfg_test_single_fn_blanks_only_that_item() {
        let src = "#[cfg(test)]\nfn helper() { Instant::now(); }\nfn live() { keep(); }";
        let s = scrub(src);
        assert!(!s.contains("Instant"));
        assert!(s.contains("fn live() { keep(); }"));
    }

    #[test]
    fn cfg_test_with_stacked_attributes_blanks_item() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { m: HashMap<u32, u32> }\nfn live() {}";
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("fn live()"));
    }

    #[test]
    fn cfg_test_use_statement_blanks_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("fn live()"));
    }

    #[test]
    fn bare_mod_tests_blanks_without_cfg() {
        let src = "fn live() {}\nmod tests {\n    fn t() { thread_rng(); }\n}";
        let s = scrub(src);
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("fn live()"));
    }

    #[test]
    fn mod_testsuite_is_not_mod_tests() {
        let src = "mod testsuite {\n    fn t() { marker(); }\n}";
        assert!(scrub(src).contains("marker();"));
    }

    #[test]
    fn waiver_parses_with_em_dash_and_double_hyphen() {
        let lexed = lex(
            "let a = 1; // lumos-lint: allow(wallclock-time) — metering only\nlet b = 2; // lumos-lint: allow(lossy-cast) -- bounded\n",
        );
        assert_eq!(lexed.waivers.len(), 2);
        assert_eq!(lexed.waivers[0].rules, vec!["wallclock-time"]);
        assert_eq!(lexed.waivers[0].reason, "metering only");
        assert!(!lexed.waivers[0].comment_only);
        assert_eq!(lexed.waivers[1].reason, "bounded");
        assert!(lexed.malformed.is_empty());
    }

    #[test]
    fn standalone_waiver_is_comment_only() {
        let lexed = lex("// lumos-lint: allow(secret-leak) — test fixture\nprintln!(\"x\");\n");
        assert_eq!(lexed.waivers.len(), 1);
        assert!(lexed.waivers[0].comment_only);
        assert_eq!(lexed.waivers[0].line, 1);
    }

    #[test]
    fn waiver_without_reason_is_malformed() {
        let lexed = lex("let a = 1; // lumos-lint: allow(wallclock-time)\n");
        assert!(lexed.waivers.is_empty());
        assert_eq!(lexed.malformed.len(), 1);
        assert!(lexed.malformed[0].message.contains("mandatory"));
    }

    #[test]
    fn waiver_with_multiple_rules_splits() {
        let lexed =
            lex("x(); // lumos-lint: allow(wallclock-time, lossy-cast) — bench meter path\n");
        assert_eq!(lexed.waivers[0].rules, vec!["wallclock-time", "lossy-cast"]);
    }

    #[test]
    fn unterminated_string_blanks_to_eof() {
        let s = scrub("let a = \"unterminated HashMap\nmore HashSet");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("HashSet"));
    }
}
