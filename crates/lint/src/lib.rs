//! **lumos-lint** — offline source-level enforcement of the workspace's
//! determinism & secrecy contracts.
//!
//! The whole reproduction rests on two invariants that used to be enforced
//! only dynamically: same seed ⇒ bit-identical reports (golden RNG vectors,
//! `tests/determinism.rs`), and secret shares never leave the MPC/LDP
//! layers in the clear. A stray `HashMap` iteration, an unseeded RNG, or a
//! `Debug`-printed share compiles clean and fails — or silently doesn't —
//! only at test time. This crate turns those contracts into machine-checked
//! source rules: a small lexer ([`lexer`]) blanks comments, literals, and
//! test regions; a rule engine ([`rules`]) greps what remains; per-line
//! waivers (`// lumos-lint: allow(<rule>) — <reason>`, reason mandatory)
//! record every audited exception in place.
//!
//! Three enforcement surfaces share this library: the `lumos-lint` CLI
//! (`cargo run -p lumos-lint -- --format json` → `LINT_report.json`, exit 1
//! on any unwaived finding), the workspace test
//! (`crates/lint/tests/workspace_clean.rs`), and the CI `lint` job.
//! `clippy.toml` at the workspace root mirrors the core rules as a second,
//! independent layer.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use report::{Finding, Report};

use std::path::Path;

/// Lints every workspace source file under `cfg.root`.
pub fn lint_workspace(cfg: &Config) -> Report {
    let files = walk::rust_files(&cfg.root);
    let mut report = Report::default();
    for rel in files {
        let Ok(source) = std::fs::read_to_string(cfg.root.join(&rel)) else {
            continue;
        };
        report.files_scanned += 1;
        let lexed = lexer::lex(&source);
        report
            .findings
            .extend(rules::scan_file(cfg, &rel, &source, &lexed));
    }
    report.finish();
    report
}

/// Lints one in-memory source (fixture and unit tests).
pub fn lint_source(cfg: &Config, rel: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    rules::scan_file(cfg, rel, source, &lexed)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the CLI finds the root when invoked from a
/// crate subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
