//! Deterministic workspace file discovery: every `.rs` file under the root
//! except vendored stubs, build output, VCS metadata, and the lint fixture
//! corpus (which exists to contain findings).

use std::path::{Path, PathBuf};

const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Returns root-relative paths (forward slashes), sorted.
pub fn rust_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    visit(root, Path::new(""), &mut out);
    out.sort();
    out
}

fn visit(root: &Path, rel: &Path, out: &mut Vec<String>) {
    let dir = root.join(rel);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let child = rel.join(name);
        let child_str = slashed(&child);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || SKIP_PREFIXES.iter().any(|p| child_str == *p) {
                continue;
            }
            visit(root, &child, out);
        } else if name.ends_with(".rs") {
            out.push(child_str);
        }
    }
}

fn slashed(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
