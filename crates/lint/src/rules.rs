//! The rule engine: every rule greps the *scrubbed* source (comments,
//! literals, and test regions already blanked by [`crate::lexer`]), so a
//! match is always live non-test code. Waivers suppress a finding on their
//! own line, or on the next line when the waiver comment stands alone.
//!
//! The rule set mirrors the two contracts the workspace is built on
//! (ROADMAP "Standing constraints"): same seed → bit-identical reports
//! (determinism) and secret shares never leave the MPC/LDP layers in the
//! clear (secrecy). `clippy.toml` at the workspace root carries a reduced,
//! independently-enforced copy of the same core rules — keep the two lists
//! in sync when editing either.

use crate::config::Config;
use crate::lexer::LexedFile;
use crate::report::Finding;

/// Static description of one rule, for reports and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The registry. `malformed-waiver` is a meta-rule emitted by the waiver
/// parser; it cannot itself be waived.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nondeterministic-collection",
        summary: "std HashMap/HashSet in non-test code: iteration order is seeded per instance and breaks same-seed bit-identity; use BTreeMap/BTreeSet",
    },
    RuleInfo {
        id: "wallclock-time",
        summary: "Instant::now/SystemTime in non-test code: wall-clock reads are nondeterministic; only waived metering code may time itself",
    },
    RuleInfo {
        id: "unseeded-rng",
        summary: "thread_rng/from_entropy/from_os_rng/OsRng: every random draw must come from the seeded workspace RNG",
    },
    RuleInfo {
        id: "secret-leak",
        summary: "print/debug macros or #[derive(Debug)] on share-bearing types inside the MPC/LDP crates: shares must never be formattable in the clear",
    },
    RuleInfo {
        id: "unordered-scope-join",
        summary: "std::thread::scope outside the audited allowlist: parallel results must be merged in deterministic index order (audit, then allowlist)",
    },
    RuleInfo {
        id: "lossy-cast",
        summary: "narrowing `as` cast in a fixed-point cost module: silent truncation corrupts the cost encoding; use try_from or waive with the bound",
    },
    RuleInfo {
        id: "malformed-waiver",
        summary: "waiver comment that names lumos-lint but is unparseable, lacks the mandatory reason, or names an unknown rule",
    },
];

/// True if `id` names a waivable rule.
pub fn is_waivable_rule(id: &str) -> bool {
    RULES
        .iter()
        .any(|r| r.id == id && r.id != "malformed-waiver")
}

const PRINT_MACROS: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];
const RNG_NEEDLES: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];
const NARROW_TARGETS: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32", "i64", "f32"];

/// Scans one file. `rel` is the root-relative path with forward slashes.
pub fn scan_file(cfg: &Config, rel: &str, source: &str, lexed: &LexedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let raw_lines: Vec<&str> = source.split('\n').collect();
    let lines: Vec<&str> = lexed.scrubbed.split('\n').collect();
    let test_path = is_test_path(rel);

    let mut emit = |rule: &'static str, line: usize| {
        // One finding per (rule, line); rules below may match repeatedly.
        findings.push(Finding::new(
            rule,
            rel,
            line,
            raw_lines.get(line - 1).copied().unwrap_or(""),
        ));
    };

    if !test_path {
        for (idx, l) in lines.iter().enumerate() {
            let ln = idx + 1;
            if has_ident(l, "HashMap") || has_ident(l, "HashSet") {
                emit("nondeterministic-collection", ln);
            }
            if l.contains("Instant::now") || has_ident(l, "SystemTime") {
                emit("wallclock-time", ln);
            }
            if RNG_NEEDLES.iter().any(|n| has_ident(l, n)) {
                emit("unseeded-rng", ln);
            }
            if l.contains("thread::scope") && !cfg.audited_scope_join.iter().any(|f| f == rel) {
                emit("unordered-scope-join", ln);
            }
            if cfg.lossy_cast_files.iter().any(|f| f == rel) && has_lossy_cast(l) {
                emit("lossy-cast", ln);
            }
        }

        if cfg
            .secret_crates
            .iter()
            .any(|c| rel.starts_with(c.as_str()))
        {
            for (idx, l) in lines.iter().enumerate() {
                if PRINT_MACROS.iter().any(|m| has_macro(l, m)) {
                    emit("secret-leak", idx + 1);
                }
            }
            for line in share_debug_derives(&lexed.scrubbed, &cfg.share_markers) {
                emit("secret-leak", line);
            }
        }
    }

    for m in &lexed.malformed {
        findings.push(Finding::new(
            "malformed-waiver",
            rel,
            m.line,
            &format!(
                "{} ({})",
                raw_lines.get(m.line - 1).copied().unwrap_or("").trim(),
                m.message
            ),
        ));
    }
    for w in &lexed.waivers {
        for r in &w.rules {
            if !is_waivable_rule(r) {
                findings.push(Finding::new(
                    "malformed-waiver",
                    rel,
                    w.line,
                    &format!("unknown rule `{r}` in waiver"),
                ));
            }
        }
    }

    apply_waivers(&mut findings, lexed);
    findings
}

/// A path is test scope when it lives under a `tests/` or `benches/` dir.
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Marks findings covered by a waiver on the same line, or by a
/// comment-only waiver on the line directly above.
fn apply_waivers(findings: &mut [Finding], lexed: &LexedFile) {
    for f in findings.iter_mut() {
        if f.rule == "malformed-waiver" {
            continue;
        }
        for w in &lexed.waivers {
            let covers_line = w.line == f.line || (w.comment_only && w.line + 1 == f.line);
            if covers_line && w.rules.contains(&f.rule) {
                f.waived = true;
                f.reason = Some(w.reason.clone());
            }
        }
    }
}

/// Identifier-boundary substring search.
fn has_ident(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Macro-call search: the needle includes the `!`; the left side must be an
/// identifier boundary so `eprintln!` does not match as `println!`.
fn has_macro(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `x as u32`-style narrowing, plus the float→int `.round() as` pattern.
fn has_lossy_cast(line: &str) -> bool {
    if line.contains(".round() as") {
        return true;
    }
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("as") {
        let start = from + pos;
        let end = start + 2;
        from = start + 1;
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if !(left_ok && right_ok) {
            continue;
        }
        let rest = line[end..].trim_start();
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NARROW_TARGETS.contains(&target.as_str()) {
            return true;
        }
    }
    false
}

/// Lines carrying `#[derive(.. Debug ..)]` whose gated type's name contains
/// a share marker (`Share`, `Pad`, `Encoded` by default).
fn share_debug_derives(scrubbed: &str, markers: &[String]) -> Vec<usize> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if !ident_at(&chars, i, "derive") {
            i += 1;
            continue;
        }
        let derive_line = line_of(&chars, i);
        let mut j = i + "derive".len();
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'(') {
            i = j;
            continue;
        }
        let mut depth = 0i32;
        let list_start = j;
        while j < chars.len() {
            match chars[j] {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let list: String = chars[list_start..j.min(chars.len())].iter().collect();
        i = j;
        if !list
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|t| t == "Debug")
        {
            continue;
        }
        // Scan ahead for the gated `struct`/`enum` name (skipping further
        // attributes and visibility tokens).
        let mut k = j;
        let limit = (k + 400).min(chars.len());
        while k < limit {
            if ident_at(&chars, k, "struct") || ident_at(&chars, k, "enum") {
                let skip = if ident_at(&chars, k, "struct") { 6 } else { 4 };
                let mut n = k + skip;
                while n < chars.len() && chars[n].is_whitespace() {
                    n += 1;
                }
                let name: String = chars[n..]
                    .iter()
                    .take_while(|c| c.is_alphanumeric() || **c == '_')
                    .collect();
                if markers.iter().any(|m| name.contains(m.as_str())) {
                    out.push(derive_line);
                }
                break;
            }
            k += 1;
        }
    }
    out
}

fn ident_at(chars: &[char], i: usize, needle: &str) -> bool {
    let n: Vec<char> = needle.chars().collect();
    if i + n.len() > chars.len() || chars[i..i + n.len()] != n[..] {
        return false;
    }
    let left_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    let right = i + n.len();
    let right_ok = right >= chars.len() || !(chars[right].is_alphanumeric() || chars[right] == '_');
    left_ok && right_ok
}

fn line_of(chars: &[char], pos: usize) -> usize {
    1 + chars[..pos].iter().filter(|&&c| c == '\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        let cfg = Config::defaults();
        scan_file(&cfg, rel, src, &lex(src))
    }

    #[test]
    fn hashmap_in_live_code_fires() {
        let f = scan("crates/app/src/a.rs", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterministic-collection");
        assert!(!f[0].waived);
    }

    #[test]
    fn hashmap_in_tests_dir_or_cfg_test_is_silent() {
        assert!(scan("crates/app/tests/a.rs", "use std::collections::HashMap;\n").is_empty());
        assert!(scan(
            "crates/app/src/a.rs",
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn same_line_waiver_suppresses_with_reason() {
        let f = scan(
            "crates/app/src/a.rs",
            "let t = Instant::now(); // lumos-lint: allow(wallclock-time) — metering\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
        assert_eq!(f[0].reason.as_deref(), Some("metering"));
    }

    #[test]
    fn standalone_waiver_covers_next_line_only() {
        let src = "// lumos-lint: allow(unseeded-rng) — fixture\nlet r = thread_rng();\nlet s = thread_rng();\n";
        let f = scan("crates/app/src/a.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].waived);
        assert!(!f[1].waived);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let f = scan(
            "crates/app/src/a.rs",
            "let t = Instant::now(); // lumos-lint: allow(lossy-cast) — wrong rule\n",
        );
        assert_eq!(f.len(), 1);
        assert!(!f[0].waived);
    }

    #[test]
    fn unknown_rule_in_waiver_is_malformed() {
        let f = scan(
            "crates/app/src/a.rs",
            "x(); // lumos-lint: allow(no-such-rule) — whatever\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-waiver");
    }

    #[test]
    fn secret_leak_scoped_to_secret_crates() {
        let src = "pub fn f(x: u64) { println!(\"{x}\"); }\n";
        assert_eq!(scan("crates/crypto/src/a.rs", src).len(), 1);
        assert_eq!(scan("crates/ldp/src/a.rs", src).len(), 1);
        assert!(scan("crates/bench/src/a.rs", src).is_empty());
    }

    #[test]
    fn debug_derive_on_share_type_fires_and_plain_type_does_not() {
        let share = "#[derive(Debug, Clone)]\npub struct KeyShare { a: u64 }\n";
        let f = scan("crates/crypto/src/a.rs", share);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "secret-leak");
        assert_eq!(f[0].line, 1);
        let plain = "#[derive(Debug, Clone)]\npub struct Meter { a: u64 }\n";
        assert!(scan("crates/crypto/src/a.rs", plain).is_empty());
        // Debug on a share type outside the secret crates is fine.
        assert!(scan("crates/core/src/a.rs", share).is_empty());
    }

    #[test]
    fn scope_join_respects_audited_allowlist() {
        let src = "pub fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(scan("crates/app/src/par.rs", src).len(), 1);
        assert!(scan("crates/crypto/src/slice.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_only_in_scoped_files_and_only_narrowing() {
        let narrowing = "let x = n as u32;\n";
        let widening = "let x = n as u64; let y = n as usize; let z = n as f64;\n";
        assert_eq!(scan("crates/balance/src/problem.rs", narrowing).len(), 1);
        assert!(scan("crates/balance/src/problem.rs", widening).is_empty());
        assert!(scan("crates/app/src/a.rs", narrowing).is_empty());
        let round = "let µs = (secs * 1e6).round() as u64;\n";
        assert_eq!(scan("crates/sim/src/profile.rs", round).len(), 1);
    }

    #[test]
    fn needles_in_strings_and_comments_never_fire() {
        let src = "let s = \"HashMap Instant::now thread_rng\"; // HashSet dbg!\n";
        assert!(scan("crates/crypto/src/a.rs", src).is_empty());
    }

    #[test]
    fn one_finding_per_rule_per_line() {
        let f = scan(
            "crates/app/src/a.rs",
            "use std::collections::{HashMap, HashSet};\n",
        );
        assert_eq!(f.len(), 1);
    }
}
