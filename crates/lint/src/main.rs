//! CLI entry point: `cargo run -p lumos-lint -- [--format text|json]
//! [--out PATH] [--root PATH]`. Exits 1 when any unwaived finding remains —
//! the CI gate and the pre-commit check are the same binary.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lumos_lint::{find_workspace_root, lint_workspace, Config};

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                format = args
                    .next()
                    .unwrap_or_else(|| usage("--format needs a value"))
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--out needs a value")),
                ))
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--root needs a value")),
                ))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if format != "text" && format != "json" {
        usage(&format!("unknown format `{format}` (text|json)"));
    }

    let root = root
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            find_workspace_root(&cwd)
        })
        .unwrap_or_else(|| usage("no --root given and no workspace root found from cwd"));

    let cfg = Config::for_root(root);
    let report = lint_workspace(&cfg);

    if format == "json" {
        let path = out.unwrap_or_else(|| PathBuf::from("LINT_report.json"));
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("lumos-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "lumos-lint: {} files, {} findings ({} waived, {} unwaived) → {}",
            report.files_scanned,
            report.findings.len(),
            report.waived_count(),
            report.unwaived_count(),
            path.display()
        );
    } else {
        print!("{}", report.render_text());
    }

    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: lumos-lint [--format text|json] [--out PATH] [--root PATH]");
    std::process::exit(2);
}
