//! `lumos-graph` — graph structures for the federated setting.
//!
//! Provides the global [`Graph`](graph::Graph) ground truth, the per-device
//! [`EgoNetwork`](ego::EgoNetwork) views that define node-level separation
//! (§IV-A of the paper), and random generators with the heavy-tailed degree
//! distributions that create the workload-imbalance problem Lumos solves.

#![forbid(unsafe_code)]
pub mod ego;
pub mod generate;
pub mod graph;

pub use ego::{split_into_egos, EgoNetwork};
pub use generate::{
    barabasi_albert, edge_homophily, erdos_renyi, homophilous_powerlaw, PowerLawConfig,
};
pub use graph::Graph;
