//! Random graph generators.
//!
//! The synthetic datasets substitute the paper's Facebook/LastFM crawls (see
//! DESIGN.md §4). The key structural property the paper relies on is a
//! heavy-tailed degree distribution (Definition 3: degree heterogeneity) and
//! label homophily (the source of GNN signal), both provided by
//! [`homophilous_powerlaw`].

use lumos_common::dist::{Categorical, PowerLaw};
use lumos_common::rng::Xoshiro256pp;

use crate::graph::Graph;

/// Erdős–Rényi `G(n, p)` graph.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.bernoulli(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment with `m` edges per new vertex.
///
/// # Panics
/// Panics if `n <= m` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Xoshiro256pp) -> Graph {
    assert!(m >= 1, "BA requires m >= 1");
    assert!(n > m, "BA requires n > m");
    let mut g = Graph::new(n);
    // Seed: a small clique over the first m+1 vertices.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            g.add_edge(u, v);
        }
    }
    // Repeated endpoints implement degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for (u, v) in g.edges().collect::<Vec<_>>() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in (m as u32 + 1)..n as u32 {
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < 50 * m {
            guard += 1;
            let u = *rng.choose(&endpoints);
            if g.add_edge(u, v) {
                endpoints.push(u);
                endpoints.push(v);
                added += 1;
            }
        }
    }
    g
}

/// Parameters for [`homophilous_powerlaw`].
#[derive(Debug, Clone)]
pub struct PowerLawConfig {
    /// Power-law exponent of the expected-degree distribution (≈2–3 for
    /// social networks).
    pub alpha: f64,
    /// Minimum expected degree.
    pub min_degree: u64,
    /// Maximum expected degree (the heavy-tail cutoff; drives Figure 7's
    /// untrimmed maxima of >150 / >100).
    pub max_degree: u64,
    /// Probability that an edge endpoint is drawn from the same label class
    /// (label homophily).
    pub homophily: f64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        Self {
            alpha: 2.3,
            min_degree: 2,
            max_degree: 150,
            homophily: 0.8,
        }
    }
}

/// Chung–Lu-style power-law graph with label homophily.
///
/// Expected degrees are drawn from a bounded power law; each edge picks its
/// first endpoint proportional to weight and its second endpoint from the
/// same label class with probability `homophily` (otherwise globally), again
/// proportional to weight. Duplicate edges and self-loops are resampled.
///
/// # Panics
/// Panics if `labels` is empty or the config is degenerate.
pub fn homophilous_powerlaw(labels: &[u32], cfg: &PowerLawConfig, rng: &mut Xoshiro256pp) -> Graph {
    let n = labels.len();
    assert!(n >= 2, "need at least two vertices");
    assert!(
        (0.0..=1.0).contains(&cfg.homophily),
        "homophily must be a probability"
    );
    let deg_dist = PowerLaw::new(cfg.min_degree, cfg.max_degree, cfg.alpha);
    let weights: Vec<f64> = (0..n).map(|_| deg_dist.sample(rng) as f64).collect();
    let target_edges = (weights.iter().sum::<f64>() / 2.0).round() as usize;

    // Weight-proportional samplers: one global, one per label class.
    let global = Categorical::new(&weights);
    let num_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut class_members: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        class_members[c as usize].push(v);
    }
    let class_samplers: Vec<Option<Categorical>> = class_members
        .iter()
        .map(|members| {
            if members.len() < 2 {
                None
            } else {
                let w: Vec<f64> = members.iter().map(|&v| weights[v]).collect();
                Some(Categorical::new(&w))
            }
        })
        .collect();

    let mut g = Graph::new(n);
    let mut attempts = 0usize;
    let max_attempts = 30 * target_edges.max(1);
    while g.num_edges() < target_edges && attempts < max_attempts {
        attempts += 1;
        let u = global.sample(rng);
        let c = labels[u] as usize;
        let v = if rng.bernoulli(cfg.homophily) {
            match &class_samplers[c] {
                Some(sampler) => class_members[c][sampler.sample(rng)],
                None => global.sample(rng),
            }
        } else {
            global.sample(rng)
        };
        if u != v {
            g.add_edge(u as u32, v as u32);
        }
    }
    g
}

/// Fraction of edges whose endpoints share a label (homophily measurement).
pub fn edge_homophily(g: &Graph, labels: &[u32]) -> f64 {
    let mut same = 0usize;
    let mut total = 0usize;
    for (u, v) in g.edges() {
        total += 1;
        if labels[u as usize] == labels[v as usize] {
            same += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(2023)
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut r = rng();
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut r);
        g.check_invariants().unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "edges {actual} vs expected {expected}"
        );
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut r = rng();
        let g = barabasi_albert(500, 3, &mut r);
        g.check_invariants().unwrap();
        assert_eq!(g.num_nodes(), 500);
        // Every non-seed vertex attaches with ~m edges.
        assert!(g.num_edges() >= 3 * (500 - 4) * 9 / 10);
        // Preferential attachment produces a hub much larger than m.
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn homophilous_powerlaw_has_heavy_tail_and_homophily() {
        let mut r = rng();
        let num_classes = 4u32;
        let labels: Vec<u32> = (0..3000)
            .map(|_| r.next_below(num_classes as u64) as u32)
            .collect();
        let cfg = PowerLawConfig {
            alpha: 2.3,
            min_degree: 3,
            max_degree: 120,
            homophily: 0.8,
        };
        let g = homophilous_powerlaw(&labels, &cfg, &mut r);
        g.check_invariants().unwrap();
        // Heavy tail: maximum degree far above the average.
        assert!(g.avg_degree() > 3.0);
        assert!(
            g.max_degree() as f64 > 4.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
        // Homophily: same-label edges dominate. The second endpoint is
        // class-constrained with probability 0.8, plus chance matches.
        let h = edge_homophily(&g, &labels);
        assert!(h > 0.6, "homophily {h}");
    }

    #[test]
    fn homophilous_powerlaw_zero_homophily_is_near_random_mixing() {
        let mut r = rng();
        let labels: Vec<u32> = (0..2000).map(|_| r.next_below(4) as u32).collect();
        let cfg = PowerLawConfig {
            homophily: 0.0,
            ..Default::default()
        };
        let g = homophilous_powerlaw(&labels, &cfg, &mut r);
        let h = edge_homophily(&g, &labels);
        // With 4 balanced classes, random mixing gives ~0.25.
        assert!((h - 0.25).abs() < 0.08, "homophily {h}");
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let labels: Vec<u32> = (0..500).map(|v| v % 3).collect();
        let cfg = PowerLawConfig::default();
        let g1 = homophilous_powerlaw(&labels, &cfg, &mut Xoshiro256pp::seed_from_u64(5));
        let g2 = homophilous_powerlaw(&labels, &cfg, &mut Xoshiro256pp::seed_from_u64(5));
        assert_eq!(g1, g2);
    }
}
