//! Undirected simple graph.
//!
//! The paper models the federated system as `G = (V, E)` where each vertex is
//! a device and each edge a social relation (§IV-A). This type is the global
//! ground truth that the simulator splits into per-device ego networks; no
//! device ever observes it directly.

/// An undirected simple graph with vertices `0..n`.
///
/// Adjacency lists are kept sorted, enabling `O(log d)` membership tests.
/// Self-loops and parallel edges are rejected at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list, ignoring duplicates and self-loops.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge was
    /// new; self-loops and duplicates are ignored (returning `false`).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        let n = self.adj.len() as u32;
        assert!(
            u < n && v < n,
            "edge ({u},{v}) out of range for {n} vertices"
        );
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("symmetric edge must be absent");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|nb| nb.binary_search(&v).is_ok())
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Degrees of all vertices.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(|nb| nb.len()).collect()
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|nb| nb.len()).max().unwrap_or(0)
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nb)| {
            let u = u as u32;
            nb.iter()
                .copied()
                .filter_map(move |v| (u < v).then_some((u, v)))
        })
    }

    /// Both directed arcs for every edge — `(u→v)` and `(v→u)` — the form
    /// message-passing layers consume.
    pub fn directed_arcs(&self) -> Vec<(u32, u32)> {
        let mut arcs = Vec::with_capacity(2 * self.num_edges);
        for (u, nb) in self.adj.iter().enumerate() {
            for &v in nb {
                arcs.push((u as u32, v));
            }
        }
        arcs
    }

    /// Number of isolated vertices (degree zero).
    pub fn num_isolated(&self) -> usize {
        self.adj.iter().filter(|nb| nb.is_empty()).count()
    }

    /// Checks internal invariants (sorted, symmetric, loop-free adjacency);
    /// used by generator tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, nb) in self.adj.iter().enumerate() {
            if !nb.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} not strictly sorted"));
            }
            for &v in nb {
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
                if self.adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
            }
            count += nb.len();
        }
        if count != 2 * self.num_edges {
            return Err(format!(
                "edge count {} inconsistent with adjacency size {count}",
                self.num_edges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_rejects_loops() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "reverse duplicate ignored");
        assert!(!g.add_edge(0, 0), "self-loop ignored");
        assert!(g.add_edge(2, 3));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        g.check_invariants().unwrap();
    }

    #[test]
    fn neighbors_sorted_and_degrees() {
        let g = Graph::from_edges(5, &[(0, 3), (0, 1), (0, 4), (1, 2)]);
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degrees(), vec![3, 2, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
        let arcs = g.directed_arcs();
        assert_eq!(arcs.len(), 8);
    }

    #[test]
    fn isolated_count() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_isolated(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
