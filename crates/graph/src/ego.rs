//! Ego networks — the only graph view a device holds.
//!
//! In the node-level federated setting (§IV-A) device `v` stores `E(v)`: its
//! own id, its direct neighbors, and nothing else about the global topology.
//! Features/labels live in `lumos-data`; this type is purely structural.

use crate::graph::Graph;

/// The ego network of one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgoNetwork {
    /// The device's own vertex id.
    pub center: u32,
    /// Sorted ids of the device's direct neighbors.
    pub neighbors: Vec<u32>,
}

impl EgoNetwork {
    /// Extracts the ego network of `v` from the global graph.
    pub fn from_graph(g: &Graph, v: u32) -> Self {
        Self {
            center: v,
            neighbors: g.neighbors(v).to_vec(),
        }
    }

    /// Degree of the center (the private value the paper protects).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether `u` is a direct neighbor.
    pub fn contains(&self, u: u32) -> bool {
        self.neighbors.binary_search(&u).is_ok()
    }
}

/// Splits a global graph into one ego network per vertex — the federation
/// step that turns the centralized dataset into the node-separated setting.
pub fn split_into_egos(g: &Graph) -> Vec<EgoNetwork> {
    (0..g.num_nodes() as u32)
        .map(|v| EgoNetwork::from_graph(g, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ego_extraction_matches_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let e0 = EgoNetwork::from_graph(&g, 0);
        assert_eq!(e0.center, 0);
        assert_eq!(e0.neighbors, vec![1, 2]);
        assert_eq!(e0.degree(), 2);
        assert!(e0.contains(2));
        assert!(!e0.contains(3));
    }

    #[test]
    fn split_covers_every_vertex_and_edge_twice() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let egos = split_into_egos(&g);
        assert_eq!(egos.len(), 5);
        let total_degree: usize = egos.iter().map(|e| e.degree()).sum();
        assert_eq!(total_degree, 2 * g.num_edges());
        for e in &egos {
            for &u in &e.neighbors {
                assert!(g.has_edge(e.center, u));
            }
        }
    }
}
