//! Finite-difference gradient checking.
//!
//! Exposed publicly (not just for this crate's tests) so downstream crates
//! (`lumos-gnn`, `lumos-core`) can verify their layer compositions against
//! numeric derivatives.

use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Central-difference numeric gradient of `eval` with respect to parameter
/// `id`. `eval` must be a pure function of the store (rebuild the tape inside
/// it). The store is restored to its original values before returning.
pub fn numeric_grad(
    store: &mut ParamStore,
    id: ParamId,
    eval: &dyn Fn(&ParamStore) -> f32,
    eps: f32,
) -> Tensor {
    let (r, c) = store.value(id).dims();
    let mut grad = Tensor::zeros(r, c);
    for i in 0..r * c {
        let orig = store.value(id).data()[i];
        store.get_mut(id).value.data_mut()[i] = orig + eps;
        let plus = eval(store);
        store.get_mut(id).value.data_mut()[i] = orig - eps;
        let minus = eval(store);
        store.get_mut(id).value.data_mut()[i] = orig;
        grad.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    grad
}

/// Relative error between an analytic and a numeric gradient:
/// `max |a-n| / (max(|a|,|n|) + 1)`. Values below ~1e-2 for `f32` indicate a
/// correct backward implementation.
pub fn relative_error(analytic: &Tensor, numeric: &Tensor) -> f32 {
    assert_eq!(analytic.dims(), numeric.dims(), "gradient shape mismatch");
    analytic
        .data()
        .iter()
        .zip(numeric.data())
        .map(|(&a, &n)| (a - n).abs() / (a.abs().max(n.abs()) + 1.0))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn numeric_grad_of_quadratic_is_linear() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let av = t.param(store, a);
            let sq = t.mul(av, av);
            let l = t.sum_all(sq);
            t.value(l).item()
        };
        let g = numeric_grad(&mut store, a, &eval, 1e-3);
        // d/dx x^2 = 2x
        let expected = Tensor::from_vec(1, 3, vec![2.0, -4.0, 1.0]);
        assert!(g.max_abs_diff(&expected) < 1e-2, "{g:?}");
        // Store restored.
        assert_eq!(store.value(a).data(), &[1.0, -2.0, 0.5]);
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(relative_error(&t, &t), 0.0);
    }
}
