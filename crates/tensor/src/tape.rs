//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation as a node with an explicit [`Op`]
//! descriptor (no closures), so the backward pass is a transparent reverse
//! sweep with a `match` per op. One tape is built per training step; leaves
//! are constants or snapshots of [`ParamStore`] parameters, and
//! [`Tape::backward`] returns gradients that can be folded back into the
//! store with [`Tape::accumulate_param_grads`].

use std::rc::Rc;

use crate::kernels::{
    concat_cols, gather_rows, log_softmax_rows, scale_rows, scatter_add_rows, segment_softmax,
    segment_softmax_backward, split_cols,
};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a value recorded on a [`Tape`].
pub type VarId = usize;

/// Operation descriptor stored with each tape node.
#[derive(Debug, Clone)]
enum Op {
    /// Input value; optionally bound to a trainable parameter.
    Leaf { param: Option<ParamId> },
    /// Elementwise `a + b` (same shape).
    Add(VarId, VarId),
    /// Elementwise `a - b`.
    Sub(VarId, VarId),
    /// Elementwise `a * b`.
    Mul(VarId, VarId),
    /// `alpha * a`.
    Scale(VarId, f32),
    /// `[n,d] + [1,d]` row-broadcast (bias add).
    AddRowBroadcast(VarId, VarId),
    /// `[n,d] * [n,1]` column-broadcast (attention weighting).
    MulColBroadcast(VarId, VarId),
    /// Matrix product `a @ b`.
    MatMul(VarId, VarId),
    /// Rectified linear unit.
    Relu(VarId),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(VarId, f32),
    /// Logistic sigmoid.
    Sigmoid(VarId),
    /// Inverted dropout with a fixed 0/scale mask sampled at forward time.
    Dropout(VarId, Rc<Vec<f32>>),
    /// Row gather by index.
    GatherRows(VarId, Rc<Vec<u32>>),
    /// Row scatter-add into `out_rows` rows.
    ScatterAddRows(VarId, Rc<Vec<u32>>, usize),
    /// Constant per-row scaling (GCN normalization, mean-pool weights).
    ScaleRows(VarId, Rc<Vec<f32>>),
    /// Softmax within segments (GAT attention normalization).
    SegmentSoftmax(VarId, Rc<Vec<u32>>, usize),
    /// Horizontal concatenation (multi-head outputs).
    ConcatCols(Vec<VarId>),
    /// Sum of all elements, producing a 1×1 scalar.
    SumAll(VarId),
    /// Mean of all elements, producing a 1×1 scalar.
    MeanAll(VarId),
    /// Row-wise log-softmax.
    LogSoftmaxRows(VarId),
    /// Masked negative log-likelihood over rows of log-probabilities.
    NllMasked {
        logp: VarId,
        targets: Rc<Vec<u32>>,
        mask: Rc<Vec<f32>>,
    },
    /// Mean binary cross-entropy on logits against fixed targets.
    BceWithLogitsMean {
        logits: VarId,
        targets: Rc<Vec<f32>>,
    },
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Tensor,
}

/// Gradients produced by [`Tape::backward`], indexed by [`VarId`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. variable `id`, if it participated.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// A recording of a forward computation.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a recorded variable.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value });
        self.nodes.len() - 1
    }

    /// Records a constant (non-trainable) input.
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(Op::Leaf { param: None }, value)
    }

    /// Records a snapshot of a trainable parameter as a leaf.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.push(Op::Leaf { param: Some(id) }, store.value(id).clone())
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.mul(&self.nodes[b].value);
        self.push(Op::Mul(a, b), v)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: VarId, alpha: f32) -> VarId {
        let v = self.nodes[a].value.scale(alpha);
        self.push(Op::Scale(a, alpha), v)
    }

    /// Adds a `[1, d]` row vector to every row of a `[n, d]` matrix.
    pub fn add_row_broadcast(&mut self, a: VarId, b: VarId) -> VarId {
        let (n, d) = self.nodes[a].value.dims();
        let (br, bc) = self.nodes[b].value.dims();
        assert_eq!((br, bc), (1, d), "bias must be [1, {d}], got [{br}, {bc}]");
        let mut v = self.nodes[a].value.clone();
        for i in 0..n {
            for (x, &y) in v.row_mut(i).iter_mut().zip(self.nodes[b].value.row(0)) {
                *x += y;
            }
        }
        self.push(Op::AddRowBroadcast(a, b), v)
    }

    /// Multiplies each row of a `[n, d]` matrix by the matching entry of a
    /// `[n, 1]` column vector.
    pub fn mul_col_broadcast(&mut self, a: VarId, b: VarId) -> VarId {
        let (n, _d) = self.nodes[a].value.dims();
        let (br, bc) = self.nodes[b].value.dims();
        assert_eq!((br, bc), (n, 1), "column factor must be [{n}, 1]");
        let mut v = self.nodes[a].value.clone();
        for i in 0..n {
            let c = self.nodes[b].value.at(i, 0);
            for x in v.row_mut(i) {
                *x *= c;
            }
        }
        self.push(Op::MulColBroadcast(a, b), v)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(Op::MatMul(a, b), v)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        let v = self.nodes[a]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Inverted dropout. `mask` must contain `0.0` (dropped) or
    /// `1/(1-p)` (kept) per element; sample it with
    /// [`crate::nn::dropout_mask`].
    pub fn dropout(&mut self, a: VarId, mask: Rc<Vec<f32>>) -> VarId {
        let val = &self.nodes[a].value;
        assert_eq!(mask.len(), val.len(), "dropout mask length mismatch");
        let mut v = val.clone();
        for (x, &m) in v.data_mut().iter_mut().zip(mask.iter()) {
            *x *= m;
        }
        self.push(Op::Dropout(a, mask), v)
    }

    /// Gathers rows by index.
    pub fn gather_rows(&mut self, a: VarId, idx: Rc<Vec<u32>>) -> VarId {
        let v = gather_rows(&self.nodes[a].value, &idx);
        self.push(Op::GatherRows(a, idx), v)
    }

    /// Scatter-adds rows into a tensor with `out_rows` rows.
    pub fn scatter_add_rows(&mut self, a: VarId, idx: Rc<Vec<u32>>, out_rows: usize) -> VarId {
        let v = scatter_add_rows(&self.nodes[a].value, &idx, out_rows);
        self.push(Op::ScatterAddRows(a, idx, out_rows), v)
    }

    /// Scales each row by a constant coefficient (no gradient to the
    /// coefficients).
    pub fn scale_rows(&mut self, a: VarId, coeff: Rc<Vec<f32>>) -> VarId {
        let v = scale_rows(&self.nodes[a].value, &coeff);
        self.push(Op::ScaleRows(a, coeff), v)
    }

    /// Segment softmax (per destination node, per head).
    pub fn segment_softmax(&mut self, a: VarId, seg: Rc<Vec<u32>>, n_seg: usize) -> VarId {
        let v = segment_softmax(&self.nodes[a].value, &seg, n_seg);
        self.push(Op::SegmentSoftmax(a, seg, n_seg), v)
    }

    /// Horizontal concatenation of several variables.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| &self.nodes[p].value).collect();
        let v = concat_cols(&tensors);
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Sum of all elements (1×1 output).
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[a].value.sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements (1×1 output).
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[a].value.mean());
        self.push(Op::MeanAll(a), v)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: VarId) -> VarId {
        let v = log_softmax_rows(&self.nodes[a].value);
        self.push(Op::LogSoftmaxRows(a), v)
    }

    /// Masked NLL loss over rows of log-probabilities: returns
    /// `-(Σ_i mask_i · logp[i, t_i]) / Σ_i mask_i` as a 1×1 scalar.
    ///
    /// # Panics
    /// Panics if lengths disagree, a target is out of range, or the mask sums
    /// to zero.
    pub fn nll_masked(&mut self, logp: VarId, targets: Rc<Vec<u32>>, mask: Rc<Vec<f32>>) -> VarId {
        let val = &self.nodes[logp].value;
        let (n, c) = val.dims();
        assert_eq!(targets.len(), n, "targets length mismatch");
        assert_eq!(mask.len(), n, "mask length mismatch");
        let denom: f32 = mask.iter().sum();
        assert!(denom > 0.0, "mask must select at least one row");
        let mut total = 0.0f32;
        for i in 0..n {
            let t = targets[i] as usize;
            assert!(t < c, "target {t} out of range for {c} classes");
            total -= mask[i] * val.at(i, t);
        }
        let v = Tensor::scalar(total / denom);
        self.push(
            Op::NllMasked {
                logp,
                targets,
                mask,
            },
            v,
        )
    }

    /// Mean binary cross-entropy with logits:
    /// `mean_i [ max(z,0) − z·t + ln(1+e^{−|z|}) ]`, a 1×1 scalar.
    ///
    /// # Panics
    /// Panics if `targets.len()` differs from the element count.
    pub fn bce_with_logits_mean(&mut self, logits: VarId, targets: Rc<Vec<f32>>) -> VarId {
        let val = &self.nodes[logits].value;
        assert_eq!(targets.len(), val.len(), "targets length mismatch");
        let mut total = 0.0f32;
        for (&z, &t) in val.data().iter().zip(targets.iter()) {
            total += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        }
        let v = Tensor::scalar(total / targets.len() as f32);
        self.push(Op::BceWithLogitsMean { logits, targets }, v)
    }

    /// Reverse sweep from a scalar loss.
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.nodes[loss].value.dims(),
            (1, 1),
            "backward starts from a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss] = Some(Tensor::scalar(1.0));

        for id in (0..=loss).rev() {
            let Some(g) = grads[id].take() else {
                continue;
            };
            // Put it back so callers can inspect intermediate grads.
            let g_ref = g.clone();
            grads[id] = Some(g);
            let g = g_ref;
            match &self.nodes[id].op {
                Op::Leaf { .. } => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let da = g.mul(&self.nodes[*b].value);
                    let db = g.mul(&self.nodes[*a].value);
                    accumulate(&mut grads, *a, &da);
                    accumulate(&mut grads, *b, &db);
                }
                Op::Scale(a, alpha) => {
                    accumulate(&mut grads, *a, &g.scale(*alpha));
                }
                Op::AddRowBroadcast(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g.sum_rows());
                }
                Op::MulColBroadcast(a, b) => {
                    let bval = &self.nodes[*b].value;
                    let aval = &self.nodes[*a].value;
                    let (n, _d) = aval.dims();
                    let mut da = g.clone();
                    for i in 0..n {
                        let c = bval.at(i, 0);
                        for x in da.row_mut(i) {
                            *x *= c;
                        }
                    }
                    accumulate(&mut grads, *a, &da);
                    let db = g.mul(aval).sum_cols();
                    accumulate(&mut grads, *b, &db);
                }
                Op::MatMul(a, b) => {
                    let da = g.matmul_nt(&self.nodes[*b].value);
                    let db = self.nodes[*a].value.matmul_tn(&g);
                    accumulate(&mut grads, *a, &da);
                    accumulate(&mut grads, *b, &db);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[*a].value;
                    let da = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, &da);
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[*a].value;
                    let s = *slope;
                    let da = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { s * gi });
                    accumulate(&mut grads, *a, &da);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[id].value;
                    let da = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, &da);
                }
                Op::Dropout(a, mask) => {
                    let mut da = g.clone();
                    for (x, &m) in da.data_mut().iter_mut().zip(mask.iter()) {
                        *x *= m;
                    }
                    accumulate(&mut grads, *a, &da);
                }
                Op::GatherRows(a, idx) => {
                    let rows = self.nodes[*a].value.rows();
                    let da = scatter_add_rows(&g, idx, rows);
                    accumulate(&mut grads, *a, &da);
                }
                Op::ScatterAddRows(a, idx, out_rows) => {
                    debug_assert_eq!(g.rows(), *out_rows, "upstream gradient shape");
                    let da = gather_rows(&g, idx);
                    accumulate(&mut grads, *a, &da);
                }
                Op::ScaleRows(a, coeff) => {
                    let da = scale_rows(&g, coeff);
                    accumulate(&mut grads, *a, &da);
                }
                Op::SegmentSoftmax(a, seg, n_seg) => {
                    let y = &self.nodes[id].value;
                    let da = segment_softmax_backward(y, &g, seg, *n_seg);
                    accumulate(&mut grads, *a, &da);
                }
                Op::ConcatCols(parts) => {
                    let widths: Vec<usize> =
                        parts.iter().map(|&p| self.nodes[p].value.cols()).collect();
                    let pieces = split_cols(&g, &widths);
                    for (&p, piece) in parts.iter().zip(&pieces) {
                        accumulate(&mut grads, p, piece);
                    }
                }
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[*a].value.dims();
                    let da = Tensor::full(r, c, g.item());
                    accumulate(&mut grads, *a, &da);
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[*a].value.dims();
                    let da = Tensor::full(r, c, g.item() / (r * c) as f32);
                    accumulate(&mut grads, *a, &da);
                }
                Op::LogSoftmaxRows(a) => {
                    // dx = g - softmax(x) * rowsum(g)
                    let y = &self.nodes[id].value; // log-probs
                    let (n, c) = y.dims();
                    let mut da = g.clone();
                    for i in 0..n {
                        let row_g_sum: f32 = g.row(i).iter().sum();
                        let yr = y.row(i);
                        let dr = da.row_mut(i);
                        for j in 0..c {
                            dr[j] -= yr[j].exp() * row_g_sum;
                        }
                    }
                    accumulate(&mut grads, *a, &da);
                }
                Op::NllMasked {
                    logp,
                    targets,
                    mask,
                } => {
                    let (n, c) = self.nodes[*logp].value.dims();
                    let denom: f32 = mask.iter().sum();
                    let scale = g.item() / denom;
                    let mut da = Tensor::zeros(n, c);
                    for i in 0..n {
                        let t = targets[i] as usize;
                        da.set(i, t, -mask[i] * scale);
                    }
                    accumulate(&mut grads, *logp, &da);
                }
                Op::BceWithLogitsMean { logits, targets } => {
                    let z = &self.nodes[*logits].value;
                    let n = targets.len() as f32;
                    let scale = g.item() / n;
                    let mut da = z.clone();
                    for (x, &t) in da.data_mut().iter_mut().zip(targets.iter()) {
                        let sig = 1.0 / (1.0 + (-*x).exp());
                        *x = (sig - t) * scale;
                    }
                    accumulate(&mut grads, *logits, &da);
                }
            }
        }
        Gradients { grads }
    }

    /// Folds leaf gradients into the owning [`ParamStore`].
    pub fn accumulate_param_grads(&self, grads: &Gradients, store: &mut ParamStore) {
        for (id, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf { param: Some(pid) } = node.op {
                if let Some(g) = grads.get(id) {
                    store.accumulate_grad(pid, g);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: VarId, g: &Tensor) {
    match &mut grads[id] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks `loss = mean(sigmoid(x @ w + b))` against finite differences.
    /// Sigmoid is smooth everywhere, so the comparison is exact up to f32
    /// truncation (ReLU's kink is covered by a dedicated test below).
    #[test]
    fn linear_sigmoid_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(7);
        let w = store.add("w", Tensor::rand_uniform(3, 2, -1.0, 1.0, &mut rng));
        let b = store.add("b", Tensor::rand_uniform(1, 2, -0.5, 0.5, &mut rng));
        let x = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng);

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.constant(x.clone());
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let h = t.matmul(xv, wv);
            let h = t.add_row_broadcast(h, bv);
            let h = t.sigmoid(h);
            let l = t.mean_all(h);
            t.value(l).item()
        };

        // Analytic gradients.
        let mut t = Tape::new();
        let xv = t.constant(x.clone());
        let wv = t.param(&store, w);
        let bv = t.param(&store, b);
        let h = t.matmul(xv, wv);
        let h = t.add_row_broadcast(h, bv);
        let h = t.sigmoid(h);
        let l = t.mean_all(h);
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);

        // Finite differences.
        let num_w = crate::gradcheck::numeric_grad(&mut store, w, &eval, 1e-3);
        let num_b = crate::gradcheck::numeric_grad(&mut store, b, &eval, 1e-3);
        assert!(
            store.get(w).grad.max_abs_diff(&num_w) < 1e-2,
            "w grads differ: {:?} vs {:?}",
            store.get(w).grad,
            num_w
        );
        assert!(store.get(b).grad.max_abs_diff(&num_b) < 1e-2);
    }

    /// ReLU backward on values safely away from the kink at zero.
    #[test]
    fn relu_backward_exact_away_from_kink() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 4, vec![-2.0, -0.5, 0.5, 2.0]));
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let r = t.relu(av);
        let w = t.constant(Tensor::from_vec(1, 4, vec![10.0, 20.0, 30.0, 40.0]));
        let m = t.mul(r, w);
        let l = t.sum_all(m);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0.0, 0.0, 30.0, 40.0]);
    }

    #[test]
    fn mul_and_scale_gradients() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 2, vec![2.0, 3.0]));
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let sq = t.mul(av, av); // a^2
        let scaled = t.scale(sq, 0.5); // a^2 / 2
        let l = t.sum_all(scaled);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        // d/da (a^2/2) = a
        assert_eq!(store.get(a).grad.data(), &[2.0, 3.0]);
    }

    #[test]
    fn gather_scatter_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(11);
        let x = store.add("x", Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng));
        let idx = Rc::new(vec![0u32, 2, 2, 3, 1]);
        let dst = Rc::new(vec![1u32, 0, 1, 1, 0]);

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.param(store, x);
            let gath = t.gather_rows(xv, idx.clone());
            let act = t.leaky_relu(gath, 0.2);
            let sc = t.scatter_add_rows(act, dst.clone(), 2);
            let l = t.sum_all(sc);
            t.value(l).item()
        };

        let mut t = Tape::new();
        let xv = t.param(&store, x);
        let gath = t.gather_rows(xv, idx.clone());
        let act = t.leaky_relu(gath, 0.2);
        let sc = t.scatter_add_rows(act, dst.clone(), 2);
        let l = t.sum_all(sc);
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);
        let numeric = crate::gradcheck::numeric_grad(&mut store, x, &eval, 1e-3);
        assert!(store.get(x).grad.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn segment_softmax_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(13);
        let x = store.add("x", Tensor::rand_uniform(5, 2, -1.0, 1.0, &mut rng));
        let seg = Rc::new(vec![0u32, 0, 1, 1, 1]);
        let weight = Tensor::rand_uniform(5, 2, 0.1, 1.0, &mut rng);

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.param(store, x);
            let sm = t.segment_softmax(xv, seg.clone(), 2);
            let wv = t.constant(weight.clone());
            let weighted = t.mul(sm, wv);
            let l = t.sum_all(weighted);
            t.value(l).item()
        };

        let mut t = Tape::new();
        let xv = t.param(&store, x);
        let sm = t.segment_softmax(xv, seg.clone(), 2);
        let wv = t.constant(weight.clone());
        let weighted = t.mul(sm, wv);
        let l = t.sum_all(weighted);
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);
        let numeric = crate::gradcheck::numeric_grad(&mut store, x, &eval, 1e-3);
        assert!(
            store.get(x).grad.max_abs_diff(&numeric) < 1e-2,
            "{:?} vs {numeric:?}",
            store.get(x).grad
        );
    }

    #[test]
    fn nll_loss_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(17);
        let x = store.add("x", Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng));
        let targets = Rc::new(vec![0u32, 2, 1, 2]);
        let mask = Rc::new(vec![1.0f32, 1.0, 0.0, 1.0]);

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let xv = t.param(store, x);
            let lp = t.log_softmax_rows(xv);
            let l = t.nll_masked(lp, targets.clone(), mask.clone());
            t.value(l).item()
        };

        let mut t = Tape::new();
        let xv = t.param(&store, x);
        let lp = t.log_softmax_rows(xv);
        let l = t.nll_masked(lp, targets.clone(), mask.clone());
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);
        let numeric = crate::gradcheck::numeric_grad(&mut store, x, &eval, 1e-3);
        assert!(store.get(x).grad.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn bce_with_logits_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(19);
        let z = store.add("z", Tensor::rand_uniform(6, 1, -2.0, 2.0, &mut rng));
        let targets = Rc::new(vec![1.0f32, 0.0, 1.0, 1.0, 0.0, 0.0]);

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let zv = t.param(store, z);
            let l = t.bce_with_logits_mean(zv, targets.clone());
            t.value(l).item()
        };

        let mut t = Tape::new();
        let zv = t.param(&store, z);
        let l = t.bce_with_logits_mean(zv, targets.clone());
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);
        let numeric = crate::gradcheck::numeric_grad(&mut store, z, &eval, 1e-3);
        assert!(store.get(z).grad.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn concat_cols_routes_gradients_to_parts() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(2, 1, vec![1.0, 2.0]));
        let b = store.add("b", Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let bv = t.param(&store, b);
        let cat = t.concat_cols(&[av, bv]);
        let mask = t.constant(Tensor::from_vec(2, 3, vec![1., 0., 2., 0., 3., 0.]));
        let m = t.mul(cat, mask);
        let l = t.sum_all(m);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        assert_eq!(store.get(a).grad.data(), &[1.0, 0.0]);
        assert_eq!(store.get(b).grad.data(), &[0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn mul_col_broadcast_gradients_match_finite_difference() {
        let mut store = ParamStore::new();
        let mut rng = lumos_common::rng::Xoshiro256pp::seed_from_u64(23);
        let a = store.add("a", Tensor::rand_uniform(3, 4, -1.0, 1.0, &mut rng));
        let c = store.add("c", Tensor::rand_uniform(3, 1, -1.0, 1.0, &mut rng));

        let eval = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let av = t.param(store, a);
            let cv = t.param(store, c);
            let m = t.mul_col_broadcast(av, cv);
            let s = t.sigmoid(m);
            let l = t.mean_all(s);
            t.value(l).item()
        };

        let mut t = Tape::new();
        let av = t.param(&store, a);
        let cv = t.param(&store, c);
        let m = t.mul_col_broadcast(av, cv);
        let s = t.sigmoid(m);
        let l = t.mean_all(s);
        let grads = t.backward(l);
        store.zero_grad();
        t.accumulate_param_grads(&grads, &mut store);
        let na = crate::gradcheck::numeric_grad(&mut store, a, &eval, 1e-3);
        let nc = crate::gradcheck::numeric_grad(&mut store, c, &eval, 1e-3);
        assert!(store.get(a).grad.max_abs_diff(&na) < 1e-2);
        assert!(store.get(c).grad.max_abs_diff(&nc) < 1e-2);
    }

    #[test]
    fn dropout_backward_respects_mask() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let mask = Rc::new(vec![0.0f32, 2.0, 0.0, 2.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let d = t.dropout(av, mask);
        let l = t.sum_all(d);
        assert_eq!(t.value(d).data(), &[0., 4., 0., 8.]);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        assert_eq!(store.get(a).grad.data(), &[0., 2., 0., 2.]);
    }

    #[test]
    fn diamond_reuse_accumulates_gradients() {
        // loss = sum(a + a) must give da = 2.
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let s = t.add(av, av);
        let l = t.sum_all(s);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        assert_eq!(store.get(a).grad.data(), &[2.0, 2.0]);
    }

    #[test]
    fn sub_gradient_signs() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(3.0));
        let b = store.add("b", Tensor::scalar(1.0));
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let bv = t.param(&store, b);
        let d = t.sub(av, bv);
        let l = t.sum_all(d);
        let grads = t.backward(l);
        t.accumulate_param_grads(&grads, &mut store);
        assert_eq!(store.get(a).grad.item(), 1.0);
        assert_eq!(store.get(b).grad.item(), -1.0);
    }
}
