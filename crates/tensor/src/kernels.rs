//! Sparse-access kernels for graph neural networks.
//!
//! Message passing on the batched tree graph reduces to three primitives:
//! gathering source-node rows along edges, scatter-adding edge messages into
//! destination nodes, and a segment softmax for attention coefficients. All
//! are implemented over the dense [`Tensor`] with explicit index arrays.

use crate::tensor::Tensor;

/// Gathers rows: `out[i, :] = x[idx[i], :]`.
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn gather_rows(x: &Tensor, idx: &[u32]) -> Tensor {
    let (n, d) = x.dims();
    let mut out = Tensor::zeros(idx.len(), d);
    for (i, &j) in idx.iter().enumerate() {
        let j = j as usize;
        assert!(j < n, "gather index {j} out of bounds for {n} rows");
        out.row_mut(i).copy_from_slice(x.row(j));
    }
    out
}

/// Scatter-add rows: `out[idx[i], :] += x[i, :]`, with `out` having
/// `out_rows` rows.
///
/// This is the adjoint of [`gather_rows`]; in the GNN it accumulates edge
/// messages at their destination vertices and leaf embeddings at their
/// global vertices (the POOL layer).
///
/// # Panics
/// Panics if `idx.len() != x.rows()` or any index is out of bounds.
pub fn scatter_add_rows(x: &Tensor, idx: &[u32], out_rows: usize) -> Tensor {
    let (n, d) = x.dims();
    assert_eq!(idx.len(), n, "scatter index length must match row count");
    let mut out = Tensor::zeros(out_rows, d);
    for (i, &j) in idx.iter().enumerate() {
        let j = j as usize;
        assert!(
            j < out_rows,
            "scatter index {j} out of bounds for {out_rows} rows"
        );
        for (o, &v) in out.row_mut(j).iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
    out
}

/// Multiplies row `i` of `x` by the scalar `coeff[i]` (constant weights, as
/// used for the symmetric GCN normalization `1/sqrt(d_u d_v)` and for mean
/// pooling `1/count`).
///
/// # Panics
/// Panics if `coeff.len() != x.rows()`.
pub fn scale_rows(x: &Tensor, coeff: &[f32]) -> Tensor {
    let (n, d) = x.dims();
    assert_eq!(coeff.len(), n, "coefficient length must match row count");
    let mut out = x.clone();
    for (row, &c) in out.data_mut().chunks_exact_mut(d.max(1)).zip(coeff) {
        for v in row {
            *v *= c;
        }
    }
    out
}

/// Softmax over segments: entries of `x` (shape `[e, h]`) are grouped by
/// `seg[i]` (values in `0..n_seg`), and a numerically stable softmax is
/// taken independently within each segment for each column.
///
/// Empty segments are fine (they simply produce no output rows). This is the
/// GAT attention normalization: one segment per destination node, one column
/// per attention head.
///
/// # Panics
/// Panics if `seg.len() != x.rows()` or a segment id is out of bounds.
pub fn segment_softmax(x: &Tensor, seg: &[u32], n_seg: usize) -> Tensor {
    let (e, h) = x.dims();
    assert_eq!(seg.len(), e, "segment length must match row count");
    // Per-segment, per-column max for stability.
    let mut seg_max = vec![f32::NEG_INFINITY; n_seg * h];
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        assert!(s < n_seg, "segment id {s} out of bounds for {n_seg}");
        let row = x.row(i);
        let m = &mut seg_max[s * h..(s + 1) * h];
        for (mx, &v) in m.iter_mut().zip(row) {
            *mx = mx.max(v);
        }
    }
    // exp(x - max), accumulate sums.
    let mut out = Tensor::zeros(e, h);
    let mut seg_sum = vec![0.0f32; n_seg * h];
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        let m = &seg_max[s * h..(s + 1) * h];
        let sums = &mut seg_sum[s * h..(s + 1) * h];
        let row_in = x.row(i);
        let row_out = out.row_mut(i);
        for c in 0..h {
            let v = (row_in[c] - m[c]).exp();
            row_out[c] = v;
            sums[c] += v;
        }
    }
    // Normalize.
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        let sums = &seg_sum[s * h..(s + 1) * h];
        let row_out = out.row_mut(i);
        for c in 0..h {
            // A segment sum is zero only if the segment is empty, which
            // cannot happen for a row that belongs to it.
            row_out[c] /= sums[c];
        }
    }
    out
}

/// Backward pass for [`segment_softmax`]: given the forward output `y` and
/// the upstream gradient `dy`, returns `dx = y * (dy - sum_seg(dy * y))`.
pub fn segment_softmax_backward(y: &Tensor, dy: &Tensor, seg: &[u32], n_seg: usize) -> Tensor {
    let (e, h) = y.dims();
    assert_eq!(dy.dims(), (e, h), "dy shape mismatch");
    assert_eq!(seg.len(), e, "segment length must match row count");
    let mut seg_dot = vec![0.0f32; n_seg * h];
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        let dots = &mut seg_dot[s * h..(s + 1) * h];
        let yr = y.row(i);
        let dyr = dy.row(i);
        for c in 0..h {
            dots[c] += yr[c] * dyr[c];
        }
    }
    let mut dx = Tensor::zeros(e, h);
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        let dots = &seg_dot[s * h..(s + 1) * h];
        let yr = y.row(i);
        let dyr = dy.row(i);
        let dxr = dx.row_mut(i);
        for c in 0..h {
            dxr[c] = yr[c] * (dyr[c] - dots[c]);
        }
    }
    dx
}

/// Row-wise log-softmax for classification heads.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let (n, c) = x.dims();
    let mut out = Tensor::zeros(n, c);
    for i in 0..n {
        let row = x.row(i);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        for (o, &v) in out.row_mut(i).iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    out
}

/// Concatenates tensors horizontally (same row count).
///
/// # Panics
/// Panics if the list is empty or row counts differ.
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_cols needs at least one input");
    let n = parts[0].rows();
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Tensor::zeros(n, total);
    for i in 0..n {
        let row = out.row_mut(i);
        let mut off = 0;
        for p in parts {
            assert_eq!(p.rows(), n, "concat_cols requires equal row counts");
            let pc = p.cols();
            row[off..off + pc].copy_from_slice(p.row(i));
            off += pc;
        }
    }
    out
}

/// Splits a tensor into horizontal blocks with the given column widths
/// (inverse of [`concat_cols`]).
///
/// # Panics
/// Panics if the widths do not sum to the column count.
pub fn split_cols(x: &Tensor, widths: &[usize]) -> Vec<Tensor> {
    let (n, c) = x.dims();
    assert_eq!(widths.iter().sum::<usize>(), c, "widths must sum to cols");
    let mut out: Vec<Tensor> = widths.iter().map(|&w| Tensor::zeros(n, w)).collect();
    for i in 0..n {
        let row = x.row(i);
        let mut off = 0;
        for (b, &w) in out.iter_mut().zip(widths) {
            b.row_mut(i).copy_from_slice(&row[off..off + w]);
            off += w;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_then_scatter_is_degree_weighted_identity() {
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let idx = vec![0u32, 1, 1, 2];
        let g = gather_rows(&x, &idx);
        assert_eq!(g.dims(), (4, 2));
        assert_eq!(g.row(2), &[3., 4.]);
        let s = scatter_add_rows(&g, &idx, 3);
        // Row 1 was gathered twice, so it doubles.
        assert_eq!(s.row(0), &[1., 2.]);
        assert_eq!(s.row(1), &[6., 8.]);
        assert_eq!(s.row(2), &[5., 6.]);
    }

    #[test]
    fn scatter_into_larger_output() {
        let x = Tensor::from_vec(2, 1, vec![1., 2.]);
        let s = scatter_add_rows(&x, &[4, 4], 6);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.at(4, 0), 3.0);
        assert_eq!(s.at(0, 0), 0.0);
    }

    #[test]
    fn scale_rows_applies_per_row_coefficient() {
        let x = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let y = scale_rows(&x, &[2.0, 0.5]);
        assert_eq!(y.data(), &[2., 4., 1.5, 2.]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let x = Tensor::from_vec(5, 2, vec![1., 0., 2., 0., 3., 0., -1., 5., 0.5, 5.]);
        let seg = vec![0u32, 0, 0, 1, 1];
        let y = segment_softmax(&x, &seg, 2);
        let sum0: f32 = (0..3).map(|i| y.at(i, 0)).sum();
        let sum1: f32 = (3..5).map(|i| y.at(i, 0)).sum();
        assert!((sum0 - 1.0).abs() < 1e-6);
        assert!((sum1 - 1.0).abs() < 1e-6);
        // Monotone in the logits.
        assert!(y.at(2, 0) > y.at(1, 0));
        assert!(y.at(1, 0) > y.at(0, 0));
        // Second head column normalizes independently.
        let h1: f32 = (3..5).map(|i| y.at(i, 1)).sum();
        assert!((h1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_single_element_segment_is_one() {
        let x = Tensor::from_vec(1, 1, vec![-42.0]);
        let y = segment_softmax(&x, &[0], 3);
        assert!((y.item() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn segment_softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(2, 1, vec![1e4, 1e4 + 1.0]);
        let y = segment_softmax(&x, &[0, 0], 1);
        assert!(y.all_finite());
        assert!((y.at(0, 0) + y.at(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_backward_zero_for_uniform_upstream() {
        // If dy is constant within a segment, dx must be ~0 (softmax is
        // shift-invariant).
        let x = Tensor::from_vec(3, 1, vec![0.3, -1.2, 2.0]);
        let seg = vec![0u32, 0, 0];
        let y = segment_softmax(&x, &seg, 1);
        let dy = Tensor::full(3, 1, 5.0);
        let dx = segment_softmax_backward(&y, &dy, &seg, 1);
        for i in 0..3 {
            assert!(dx.at(i, 0).abs() < 1e-5, "dx[{i}] = {}", dx.at(i, 0));
        }
    }

    #[test]
    fn log_softmax_rows_normalizes() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let lp = log_softmax_rows(&x);
        for i in 0..2 {
            let total: f32 = lp.row(i).iter().map(|&v| v.exp()).sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
        // argmax preserved
        assert!(lp.at(0, 2) > lp.at(0, 0));
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_vec(2, 1, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let cat = concat_cols(&[&a, &b]);
        assert_eq!(cat.dims(), (2, 3));
        assert_eq!(cat.row(1), &[2., 5., 6.]);
        let parts = split_cols(&cat, &[1, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        let x = Tensor::zeros(2, 2);
        gather_rows(&x, &[5]);
    }
}
