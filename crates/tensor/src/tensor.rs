//! A dense, row-major, two-dimensional `f32` tensor.
//!
//! Everything the GNN trainer needs is expressible over matrices: node
//! feature matrices `[n, d]`, weight matrices `[d_in, d_out]`, per-edge
//! attention logits `[e, heads]`, column vectors `[n, 1]` and scalars
//! `[1, 1]`. Restricting the engine to rank 2 keeps every kernel simple,
//! auditable and fast.

use lumos_common::rng::Xoshiro256pp;

/// Dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw parts.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape [{rows}, {cols}]",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// 1×1 tensor holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| lo + (hi - lo) * rng.next_f32())
            .collect();
        Self { rows, cols, data }
    }

    /// I.i.d. standard-normal entries scaled by `std` (Box–Muller).
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Xoshiro256pp) -> Self {
        let dist = lumos_common::dist::Normal::new(0.0, std as f64);
        let data = (0..rows * cols).map(|_| dist.sample(rng) as f32).collect();
        Self { rows, cols, data }
    }

    /// Glorot/Xavier uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn glorot(fan_in: usize, fan_out: usize, rng: &mut Xoshiro256pp) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "item() requires a 1x1 tensor"
        );
        self.data[0]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise sum with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combination with another tensor of identical shape.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.dims(),
            other.dims(),
            "shape mismatch in elementwise op"
        );
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.dims(), other.dims(), "shape mismatch in add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.dims(), other.dims(), "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scalar multiplication.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| alpha * x)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 if empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self @ other`.
    ///
    /// Uses the cache-friendly i-k-j loop order and skips zero multipliers
    /// (useful because LDP-encoded features contain many constants).
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: [{},{}] @ [{},{}]",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a != 0.0 {
                    let b_row = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Self::from_vec(m, n, out)
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt inner dims: [{},{}] @ [{},{}]^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Self::from_vec(m, n, out)
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn inner dims: [{},{}]^T @ [{},{}]",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a != 0.0 {
                    let o_row = &mut out[i * n..(i + 1) * n];
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
        Self::from_vec(m, n, out)
    }

    /// Sum over rows, producing a `[1, cols]` row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        Self::from_vec(1, self.cols, out)
    }

    /// Sum over columns, producing an `[rows, 1]` column vector.
    pub fn sum_cols(&self) -> Self {
        let data = (0..self.rows).map(|r| self.row(r).iter().sum()).collect();
        Self::from_vec(self.rows, 1, data)
    }

    /// Maximum absolute difference from another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.dims(), other.dims(), "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.dims(), (2, 3));
        assert_eq!(t.len(), 6);
        assert_eq!(Tensor::ones(1, 2).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::scalar(4.0).item(), 4.0);
        let i = Tensor::eye(3);
        assert_eq!(i.at(1, 1), 1.0);
        assert_eq!(i.at(0, 1), 0.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_and_tn_agree_with_explicit_transpose() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let a = Tensor::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-6);

        let c = Tensor::rand_uniform(4, 6, -1.0, 1.0, &mut rng);
        let via_t2 = a.transpose().matmul(&c);
        let direct2 = a.matmul_tn(&c);
        assert!(via_t2.max_abs_diff(&direct2) < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let a = Tensor::rand_uniform(3, 7, -2.0, 2.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.sum(), 6.0);
        assert!((a.mean() - 2.0).abs() < 1e-7);
        assert_eq!(a.sq_norm(), 14.0);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(1, 2, vec![1., 1.]);
        let b = Tensor::from_vec(1, 2, vec![2., 3.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3., 4.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[4., 5.5]);
    }

    #[test]
    fn row_and_col_sums() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows().data(), &[5., 7., 9.]);
        assert_eq!(a.sum_cols().data(), &[6., 15.]);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let w = Tensor::glorot(64, 16, &mut rng);
        let limit = (6.0f32 / 80.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        // Should not be degenerate.
        assert!(w.data().iter().any(|&x| x.abs() > limit * 0.1));
    }

    #[test]
    fn randn_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let x = Tensor::randn(100, 100, 2.0, &mut rng);
        let mean = x.mean();
        let var = x
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic]
    fn item_requires_scalar() {
        Tensor::zeros(2, 1).item();
    }
}
