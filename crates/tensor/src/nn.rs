//! Small neural-network helpers shared by GNN layers.

use std::rc::Rc;

use lumos_common::rng::Xoshiro256pp;

/// Samples an inverted-dropout mask: each entry is `0.0` with probability
/// `p` and `1/(1-p)` otherwise, so the expected activation is unchanged.
///
/// # Panics
/// Panics unless `0 <= p < 1`.
pub fn dropout_mask(len: usize, p: f32, rng: &mut Xoshiro256pp) -> Rc<Vec<f32>> {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout probability must be in [0,1)"
    );
    if p == 0.0 {
        return Rc::new(vec![1.0; len]);
    }
    let keep = 1.0 / (1.0 - p);
    Rc::new(
        (0..len)
            .map(|_| if rng.bernoulli(p as f64) { 0.0 } else { keep })
            .collect(),
    )
}

/// Numerically stable logistic sigmoid of a scalar.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise argmax of a tensor; returns one class index per row.
pub fn argmax_rows(x: &crate::tensor::Tensor) -> Vec<u32> {
    (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn dropout_mask_values_and_rate() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let p = 0.3f32;
        let mask = dropout_mask(100_000, p, &mut rng);
        let keep = 1.0 / (1.0 - p);
        let mut zeros = 0usize;
        for &m in mask.iter() {
            assert!(m == 0.0 || (m - keep).abs() < 1e-6);
            if m == 0.0 {
                zeros += 1;
            }
        }
        let rate = zeros as f64 / mask.len() as f64;
        assert!((rate - 0.3).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mask = dropout_mask(16, 0.0, &mut rng);
        assert!(mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let x = Tensor::from_vec(2, 3, vec![0.1, 0.9, 0.3, 2.0, -1.0, 1.0]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }
}
