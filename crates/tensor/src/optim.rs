//! First-order optimizers.
//!
//! The paper trains every model with Adam at `lr = 0.01` (§VIII-B); SGD is
//! provided for ablations and tests.

use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Learning rate accessor.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let idx = self.m.len();
            let (r, c) = store
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value.dims())
                .expect("index within store");
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
    }

    /// Applies one Adam update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for id in store.ids().collect::<Vec<_>>() {
            let i = id.index();
            let p = store.get_mut(id);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((w, &g), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum `mu`.
    pub fn with_momentum(lr: f32, mu: f32) -> Self {
        Self {
            lr,
            momentum: mu,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        while self.velocity.len() < store.len() {
            let idx = self.velocity.len();
            let (r, c) = store
                .iter()
                .nth(idx)
                .map(|(_, p)| p.value.dims())
                .expect("index within store");
            self.velocity.push(Tensor::zeros(r, c));
        }
        for id in store.ids().collect::<Vec<_>>() {
            let i = id.index();
            let p = store.get_mut(id);
            let vel = &mut self.velocity[i];
            for ((w, &g), v) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(vel.data_mut().iter_mut())
            {
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing `(x - 3)^2` should converge to 3 quickly with Adam.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::scalar(-5.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            store.zero_grad();
            let mut t = Tape::new();
            let xv = t.param(&store, x);
            let c = t.constant(Tensor::scalar(3.0));
            let d = t.sub(xv, c);
            let sq = t.mul(d, d);
            let l = t.sum_all(sq);
            let grads = t.backward(l);
            t.accumulate_param_grads(&grads, &mut store);
            opt.step(&mut store);
        }
        let xf = store.value(x).item();
        assert!((xf - 3.0).abs() < 1e-2, "x converged to {xf}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::scalar(4.0));
        let mut opt = Sgd::with_momentum(0.05, 0.5);
        for _ in 0..200 {
            store.zero_grad();
            let mut t = Tape::new();
            let xv = t.param(&store, x);
            let sq = t.mul(xv, xv);
            let l = t.sum_all(sq);
            let grads = t.backward(l);
            t.accumulate_param_grads(&grads, &mut store);
            opt.step(&mut store);
        }
        assert!(store.value(x).item().abs() < 1e-2);
    }

    #[test]
    fn adam_handles_params_added_between_steps() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.01);
        store.zero_grad();
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        opt.step(&mut store);
        // Register a second parameter afterwards; state must grow lazily.
        let b = store.add("b", Tensor::scalar(2.0));
        store.zero_grad();
        store.accumulate_grad(b, &Tensor::scalar(1.0));
        opt.step(&mut store);
        assert!(store.value(a).item() < 1.0);
        assert!(store.value(b).item() < 2.0);
    }
}
