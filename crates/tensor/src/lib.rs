//! `lumos-tensor` — a dense tensor and reverse-mode autodiff engine.
//!
//! The Lumos paper's GNN trainer (its §VI) needs hand-rolled GCN/GAT layers
//! over tree-structured graphs. This crate provides the minimal but complete
//! machinery: a row-major 2-D [`Tensor`](tensor::Tensor), sparse-access
//! kernels (gather / scatter-add / segment softmax), a transparent
//! [`Tape`](tape::Tape)-based autograd with an explicit op enum, trainable
//! [`ParamStore`](param::ParamStore), and [`Adam`](optim::Adam)/[`Sgd`](optim::Sgd)
//! optimizers. [`gradcheck`] exposes finite-difference checking so every
//! downstream layer can be verified numerically.
//!
//! # Example
//!
//! ```
//! use lumos_tensor::{Tensor, Tape, ParamStore, Adam};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(0.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     store.zero_grad();
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&store, w);
//!     let target = tape.constant(Tensor::scalar(2.0));
//!     let diff = tape.sub(wv, target);
//!     let loss = tape.mul(diff, diff);
//!     let loss = tape.sum_all(loss);
//!     let grads = tape.backward(loss);
//!     tape.accumulate_param_grads(&grads, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).item() - 2.0).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
pub mod gradcheck;
pub mod kernels;
pub mod nn;
pub mod optim;
pub mod param;
pub mod tape;
pub mod tensor;

pub use optim::{Adam, Sgd};
pub use param::{Param, ParamId, ParamStore};
pub use tape::{Gradients, Tape, VarId};
pub use tensor::Tensor;
