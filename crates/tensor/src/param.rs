//! Trainable parameters and their store.
//!
//! A [`ParamStore`] owns every weight of a model together with its gradient
//! accumulator. Each training step builds a fresh [`crate::tape::Tape`],
//! introduces the parameters as leaves, runs backward, and folds the leaf
//! gradients back into the store, after which an optimizer consumes them.

use crate::tensor::Tensor;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One named parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name (e.g. `"gcn0.weight"`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

/// Container for all trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.dims();
        self.params.push(Param {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Parameter accessor.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable parameter accessor.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Adds `g` into the gradient accumulator of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterator over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterator over ids only.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Global gradient L2 norm (diagnostic; useful for detecting blow-ups).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.sq_norm())
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(2, 3));
        let b = store.add("b", Tensor::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.get(w).name, "w");
        assert_eq!(store.value(b).dims(), (1, 3));
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        store.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(store.get(w).grad.data(), &[1.5, 2.5]);
        assert!((store.grad_norm() - (1.5f32 * 1.5 + 2.5 * 2.5).sqrt()).abs() < 1e-6);
        store.zero_grad();
        assert_eq!(store.get(w).grad.data(), &[0.0, 0.0]);
    }
}
