//! Cross-oracle agreement on Algorithm 3 (secure max-workload location).
//!
//! `MeteredPlainOracle` is the cost-model stand-in used at paper scale;
//! `SecureOracle` runs the real OT-based comparison circuits. The two must
//! be observationally identical: same orderings, hence the same candidate
//! vertex sets, the same selected max-workload device (given the same
//! server tie-break stream), and the same charged communication.

use lumos_balance::{
    find_max_workload_device, greedy_init, mcmc_balance, Assignment, CompareOracle, McmcConfig,
    MeteredPlainOracle, SecureOracle,
};
use lumos_common::rng::Xoshiro256pp;
use lumos_graph::generate::{barabasi_albert, erdos_renyi};
use lumos_graph::Graph;

/// Runs Algorithm 3 under both oracles on the same assignment with the same
/// server randomness and asserts identical outcomes.
fn assert_maxfind_agreement(g: &Graph, assignment: &Assignment, label: &str) {
    let mut secure = SecureOracle::new(0x00A1_1CE5);
    let mut plain = MeteredPlainOracle::new();
    let mut rng_secure = Xoshiro256pp::seed_from_u64(2024);
    let mut rng_plain = Xoshiro256pp::seed_from_u64(2024);
    let a = find_max_workload_device(g, assignment, &mut secure, &mut rng_secure);
    let b = find_max_workload_device(g, assignment, &mut plain, &mut rng_plain);
    assert_eq!(
        a.device, b.device,
        "{label}: oracles located different devices"
    );
    assert_eq!(a.cvs_size, b.cvs_size, "{label}: candidate sets differ");
    assert_eq!(a.server, b.server, "{label}: server traffic differs");
    assert_eq!(secure.meter(), plain.meter(), "{label}: cost model drifted");
    assert_eq!(
        secure.comparisons(),
        plain.comparisons(),
        "{label}: comparison counts differ"
    );
    // Sanity: the located device really is a maximum.
    let max_wl = assignment.workloads().into_iter().max().unwrap();
    assert_eq!(
        assignment.workload(a.device),
        max_wl,
        "{label}: not a max-workload device"
    );
}

#[test]
fn oracles_agree_on_seeded_erdos_renyi_graphs() {
    for seed in [1u64, 7, 42] {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = erdos_renyi(40, 0.12, &mut rng);
        if g.num_edges() == 0 {
            continue;
        }
        assert_maxfind_agreement(&g, &Assignment::full(&g), &format!("er-full seed {seed}"));
    }
}

#[test]
fn oracles_agree_on_heavy_tailed_graphs() {
    // Barabási–Albert graphs have the hub-dominated degree profile that
    // makes Algorithm 3's phase 1 actually prune; agreement must survive it.
    for seed in [3u64, 11] {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = barabasi_albert(50, 2, &mut rng);
        assert_maxfind_agreement(&g, &Assignment::full(&g), &format!("ba-full seed {seed}"));
    }
}

#[test]
fn oracles_agree_after_greedy_trimming() {
    // Agreement must also hold on the trimmed assignments Algorithm 3 sees
    // in production (inside the MCMC loop), not just the untrimmed ones.
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let g = erdos_renyi(35, 0.18, &mut rng);
    let mut oracle = MeteredPlainOracle::new();
    let trimmed = greedy_init(&g, &mut oracle);
    trimmed.check_feasible(&g).unwrap();
    assert_maxfind_agreement(&g, &trimmed, "greedy-trimmed");
}

#[test]
fn full_balancing_pipeline_is_oracle_invariant() {
    // Greedy + MCMC driven end-to-end under each oracle: identical final
    // assignments and identical objective traces.
    let mut rng = Xoshiro256pp::seed_from_u64(21);
    let g = erdos_renyi(30, 0.2, &mut rng);
    let cfg = McmcConfig {
        iterations: 15,
        seed: 99,
    };

    let mut secure = SecureOracle::new(5);
    let init_secure = greedy_init(&g, &mut secure);
    let out_secure = mcmc_balance(&g, init_secure, &cfg, &mut secure);

    let mut plain = MeteredPlainOracle::new();
    let init_plain = greedy_init(&g, &mut plain);
    let out_plain = mcmc_balance(&g, init_plain, &cfg, &mut plain);

    assert_eq!(out_secure.assignment, out_plain.assignment);
    assert_eq!(
        out_secure.assignment.objective(),
        out_plain.assignment.objective()
    );
    assert_eq!(secure.meter(), plain.meter());
}
