//! Property tests for the cost-weighted balance objective.
//!
//! Three contracts keep the heterogeneity-aware objective honest:
//!
//! 1. **Degeneracy** — the all-ones cost vector is the paper's node-count
//!    objective, bit for bit: same retained sets, same MCMC trace, same
//!    number of secure comparisons.
//! 2. **Dominance** — the weighted objective is the weighted makespan: it
//!    equals the busiest device's `c_u · |N_u|` and therefore dominates
//!    every device's weighted busy time and the fleet mean.
//! 3. **Oracle invariance** — the real OT-based comparison circuits and
//!    their metered cost model drive the weighted chain to identical
//!    states, exactly as they do for the unweighted one.

use proptest::prelude::*;

use lumos_balance::{
    greedy_init, greedy_init_weighted, mcmc_balance, CompareOracle, McmcConfig, MeteredPlainOracle,
    SecureOracle,
};
use lumos_common::rng::Xoshiro256pp;
use lumos_graph::generate::erdos_renyi;
use lumos_graph::Graph;

/// A seeded graph plus a seeded cost vector in `[1, 1000]` µs.
fn graph_and_costs(seed: u64, n: usize, p: f64) -> (Graph, Vec<u64>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let g = erdos_renyi(n, p, &mut rng);
    let costs = (0..n).map(|_| rng.range_u64(1, 1000)).collect();
    (g, costs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-ones costs reproduce the node-count balancing run bit for bit:
    /// retained sets, objective trace, comparison count, acceptance count.
    #[test]
    fn all_ones_costs_reproduce_node_count_balancing(seed in any::<u64>()) {
        let (g, _) = graph_and_costs(seed, 40, 0.12);
        let cfg = McmcConfig { iterations: 30, seed: seed ^ 0xF00D };
        let mut plain_oracle = MeteredPlainOracle::new();
        let plain_init = greedy_init(&g, &mut plain_oracle);
        let plain = mcmc_balance(&g, plain_init, &cfg, &mut plain_oracle);

        let ones = vec![1u64; g.num_nodes()];
        let mut ones_oracle = MeteredPlainOracle::new();
        let ones_init = greedy_init_weighted(&g, Some(&ones), &mut ones_oracle);
        let weighted = mcmc_balance(&g, ones_init, &cfg, &mut ones_oracle);

        for v in 0..g.num_nodes() as u32 {
            prop_assert_eq!(plain.assignment.kept(v), weighted.assignment.kept(v));
        }
        prop_assert_eq!(&plain.trace, &weighted.trace);
        // The all-ones weighted workload IS the node count, so the weighted
        // trace coincides with the node-count trace element-wise.
        prop_assert_eq!(
            weighted.weighted_trace,
            plain.trace.iter().map(|&x| x as u64).collect::<Vec<_>>()
        );
        prop_assert_eq!(plain_oracle.comparisons(), ones_oracle.comparisons(),
            "all-ones must not change the number of secure comparisons");
        prop_assert_eq!(plain.stats.accepted, weighted.stats.accepted);
    }

    /// The weighted objective is the weighted makespan: feasible, equal to
    /// the maximum per-device weighted busy time, and hence at least the
    /// fleet's mean weighted load.
    #[test]
    fn weighted_objective_dominates_busy_and_mean(seed in any::<u64>()) {
        let (g, costs) = graph_and_costs(seed, 48, 0.10);
        let cfg = McmcConfig { iterations: 40, seed: seed ^ 0xBEEF };
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init_weighted(&g, Some(&costs), &mut oracle);
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();

        let busy = out.assignment.weighted_workloads();
        let objective = out.assignment.weighted_objective();
        prop_assert_eq!(objective, busy.iter().copied().max().unwrap_or(0));
        for (d, &b) in busy.iter().enumerate() {
            prop_assert!(objective >= b, "device {} busy {} exceeds makespan {}", d, b, objective);
        }
        let total: u64 = busy.iter().sum();
        prop_assert!(
            objective as u128 * busy.len() as u128 >= total as u128,
            "weighted makespan {} below the fleet mean of {}", objective, total
        );
        // The trace and the returned assignment can never drift apart: the
        // final entry is exactly the final assignment's objective. (No
        // monotonicity claim — Metropolis–Hastings may legitimately end an
        // uphill move above where it started.)
        prop_assert_eq!(
            out.weighted_trace.last().copied(),
            Some(out.assignment.weighted_objective())
        );
    }
}

proptest! {
    // The real OT circuits run 48-bit comparisons per edge per sweep; keep
    // the instance count small so the suite stays sub-second.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Secure and metered-plain oracles drive the weighted chain through
    /// identical states and charge the identical comparison count.
    #[test]
    fn secure_and_plain_oracles_agree_on_weighted_workloads(seed in any::<u64>()) {
        let (g, costs) = graph_and_costs(seed, 14, 0.25);
        let cfg = McmcConfig { iterations: 6, seed: seed ^ 0x5AFE };

        let mut secure = SecureOracle::new(seed ^ 0xA11CE);
        let secure_init = greedy_init_weighted(&g, Some(&costs), &mut secure);
        let secure_out = mcmc_balance(&g, secure_init, &cfg, &mut secure);

        let mut plain = MeteredPlainOracle::new();
        let plain_init = greedy_init_weighted(&g, Some(&costs), &mut plain);
        let plain_out = mcmc_balance(&g, plain_init, &cfg, &mut plain);

        prop_assert_eq!(secure_out.assignment, plain_out.assignment);
        prop_assert_eq!(secure_out.weighted_trace, plain_out.weighted_trace);
        prop_assert_eq!(secure.comparisons(), plain.comparisons());
        prop_assert_eq!(secure.meter(), plain.meter(), "cost model drifted on weighted lane");
    }
}
