//! Exact solver for the workload-balancing problem, used as the reference
//! point when measuring how close greedy + MCMC land (Theorem 2's bound is
//! probabilistic; this gives the ground truth on real instances).
//!
//! Observation: an optimal solution never needs `x_(u,v) = x_(v,u) = 1` —
//! dropping one side keeps Eq. 10 feasible and cannot increase the max.
//! So the problem is: *orient* every edge so the maximum out-degree is
//! minimized. Feasibility of "max workload ≤ k" is a bipartite assignment
//! (edges → endpoints with vertex capacity k), decided by max-flow; binary
//! search on `k` yields the optimum in `O(E·√V · log Δ)`.
//!
//! (This also means the *centralized* problem is polynomial; the paper's
//! hardness argument applies to its decentralized, privacy-constrained
//! variant. The exact solver requires global knowledge and is therefore
//! only a simulator-side yardstick.)

use lumos_graph::Graph;

use crate::flow::FlowNetwork;
use crate::problem::Assignment;

/// Result of the exact solver.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// An optimal assignment (each edge kept by exactly one endpoint).
    pub assignment: Assignment,
    /// The optimal objective `f(X*)`.
    pub objective: usize,
}

/// Decides whether an orientation with maximum workload ≤ `k` exists and,
/// if so, returns the retained-neighbor sets realizing it.
fn orient_with_cap(g: &Graph, k: usize) -> Option<Vec<Vec<u32>>> {
    let n = g.num_nodes();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let m = edges.len();
    if m == 0 {
        return Some(vec![Vec::new(); n]);
    }
    // Nodes: 0 = source, 1..=m edge nodes, m+1..=m+n vertex nodes, m+n+1 = sink.
    let source = 0usize;
    let sink = m + n + 1;
    let mut net = FlowNetwork::new(m + n + 2);
    let mut choice_arcs = Vec::with_capacity(m);
    for (i, &(u, v)) in edges.iter().enumerate() {
        net.add_arc(source, 1 + i, 1);
        let a_u = net.add_arc(1 + i, 1 + m + u as usize, 1);
        let a_v = net.add_arc(1 + i, 1 + m + v as usize, 1);
        choice_arcs.push((a_u, a_v));
    }
    for v in 0..n {
        net.add_arc(1 + m + v, sink, k as i64);
    }
    if net.max_flow(source, sink) < m as i64 {
        return None;
    }
    let mut keep: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &(u, v)) in edges.iter().enumerate() {
        let (a_u, a_v) = choice_arcs[i];
        if net.flow(a_u) > 0 {
            // Edge assigned to u: u keeps neighbor v.
            keep[u as usize].push(v);
        } else {
            debug_assert!(net.flow(a_v) > 0, "saturated edge must pick a side");
            keep[v as usize].push(u);
        }
    }
    Some(keep)
}

/// Solves the workload-balancing problem exactly.
pub fn solve_exact(g: &Graph) -> ExactSolution {
    if g.num_edges() == 0 {
        return ExactSolution {
            assignment: Assignment::from_sets(vec![Vec::new(); g.num_nodes()]),
            objective: 0,
        };
    }
    let mut lo = crate::problem::objective_lower_bound(g);
    let mut hi = g.max_degree();
    let mut best = orient_with_cap(g, hi).expect("max degree is always feasible");
    let mut best_k = hi;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match orient_with_cap(g, mid) {
            Some(keep) => {
                best = keep;
                best_k = mid;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    let assignment = Assignment::from_sets(best);
    debug_assert!(assignment.check_feasible(g).is_ok());
    // The realized objective can undershoot the capacity bound.
    let objective = assignment.objective().min(best_k);
    ExactSolution {
        assignment,
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_init;
    use crate::mcmc::{mcmc_balance, McmcConfig};
    use crate::oracle::MeteredPlainOracle;
    use lumos_common::rng::Xoshiro256pp;
    use lumos_graph::generate::{erdos_renyi, homophilous_powerlaw, PowerLawConfig};

    #[test]
    fn star_optimum_is_one() {
        // A star's edges can all be oriented leaf → hub: every leaf keeps
        // the hub, workload 1 everywhere.
        let edges: Vec<(u32, u32)> = (1..=8).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(9, &edges);
        let sol = solve_exact(&g);
        assert_eq!(sol.objective, 1);
        sol.assignment.check_feasible(&g).unwrap();
    }

    #[test]
    fn cycle_optimum_is_one() {
        // A cycle orients around: out-degree 1 for everyone.
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i as u32, ((i + 1) % 6) as u32)).collect();
        let g = Graph::from_edges(6, &edges);
        assert_eq!(solve_exact(&g).objective, 1);
    }

    #[test]
    fn clique_optimum_matches_density_bound() {
        // K5: 10 edges over 5 vertices ⇒ some vertex keeps ≥ 2; and 2 is
        // achievable.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges);
        assert_eq!(solve_exact(&g).objective, 2);
    }

    #[test]
    fn exact_is_a_true_lower_bound_for_the_heuristics() {
        for seed in 0..5u64 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let g = erdos_renyi(60, 0.12, &mut rng);
            let exact = solve_exact(&g);
            let mut oracle = MeteredPlainOracle::new();
            let init = greedy_init(&g, &mut oracle);
            let out = mcmc_balance(
                &g,
                init,
                &McmcConfig {
                    iterations: 120,
                    seed,
                },
                &mut oracle,
            );
            assert!(
                out.assignment.objective() >= exact.objective,
                "heuristic {} below optimum {}?!",
                out.assignment.objective(),
                exact.objective
            );
        }
    }

    /// Empirical Theorem-2 check: on power-law graphs (the regime the paper
    /// targets) greedy + MCMC lands within a small factor of the optimum.
    #[test]
    fn heuristic_is_near_optimal_on_powerlaw_graphs() {
        let mut rng = Xoshiro256pp::seed_from_u64(2023);
        let labels: Vec<u32> = (0..300).map(|_| rng.next_below(4) as u32).collect();
        let g = homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng);
        let exact = solve_exact(&g);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let out = mcmc_balance(
            &g,
            init,
            &McmcConfig {
                iterations: 300,
                seed: 5,
            },
            &mut oracle,
        );
        let ratio = out.assignment.objective() as f64 / exact.objective.max(1) as f64;
        assert!(
            ratio <= 3.0,
            "approximation ratio {ratio} (heuristic {} vs optimal {})",
            out.assignment.objective(),
            exact.objective
        );
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = Graph::new(4);
        let sol = solve_exact(&g);
        assert_eq!(sol.objective, 0);
    }
}
