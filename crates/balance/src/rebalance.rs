//! Incremental live re-balancing of an existing assignment.
//!
//! The constructor's greedy + MCMC balancers (§V) run once, up front, on
//! round-0 prices. When the fleet's live per-node prices drift during
//! training — a device churns out (its price inflates by the
//! unavailability factor) or slows down — the trainer can migrate work
//! *incrementally* instead of re-running the whole constructor:
//! [`rebalance_assignment`] drains each overloaded device by handing every
//! retained edge `(u, v)` to its other endpoint `v` whenever `v` is
//! currently cheaper. The move is always feasibility-preserving (Eq. 16's
//! transition: `v` picks up `u`, the edge stays covered) and purely
//! price-directed, so it is deterministic given the price vector.

use crate::problem::Assignment;

/// Outcome of one [`rebalance_assignment`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Tree nodes (retained edges) moved off overloaded devices.
    pub moved_nodes: usize,
    /// Devices that lost at least one node, sorted by id.
    pub drained: Vec<u32>,
}

/// Migrates work off each device in `overloaded`: every retained edge
/// `(u, v)` whose other endpoint `v` is strictly cheaper under `prices`
/// moves into `v`'s tree (`N_u ← N_u \ {v}`, `N_v ← N_v ∪ {u}`). Edges
/// whose other endpoint is at least as expensive stay put — migrating them
/// would not reduce the weighted makespan.
///
/// Deterministic: devices are processed in the order given, each device's
/// retained set in sorted order.
///
/// # Panics
/// Panics if `prices` does not have one entry per device or `overloaded`
/// names a device out of range.
pub fn rebalance_assignment(
    a: &mut Assignment,
    prices: &[u64],
    overloaded: &[u32],
) -> RebalanceOutcome {
    assert_eq!(
        prices.len(),
        a.num_devices(),
        "one live price per device: got {} prices for {} devices",
        prices.len(),
        a.num_devices(),
    );
    let mut outcome = RebalanceOutcome::default();
    for &u in overloaded {
        assert!(
            (u as usize) < a.num_devices(),
            "overloaded device {u} out of range"
        );
        let mut moved_here = 0usize;
        for v in a.kept(u).to_vec() {
            if prices[v as usize] < prices[u as usize] && a.transfer(u, v) {
                moved_here += 1;
            }
        }
        if moved_here > 0 {
            outcome.moved_nodes += moved_here;
            outcome.drained.push(u);
        }
    }
    outcome.drained.sort_unstable();
    outcome.drained.dedup();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_graph::Graph;

    fn star_graph() -> Graph {
        // Hub 0 with spokes 1..=4.
        Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn overloaded_hub_drains_to_cheaper_spokes() {
        let g = star_graph();
        // Hub keeps everything (workloads 4,0,0,0,0).
        let mut a = Assignment::from_sets(vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
        a.check_feasible(&g).unwrap();
        // Hub is 4× the spokes' price (it churned out); every spoke is
        // cheaper, so every edge migrates.
        let prices = vec![400, 100, 100, 100, 100];
        let out = rebalance_assignment(&mut a, &prices, &[0]);
        assert_eq!(out.moved_nodes, 4);
        assert_eq!(out.drained, vec![0]);
        assert_eq!(a.workload(0), 0);
        for v in 1..5u32 {
            assert_eq!(a.kept(v), &[0], "spoke {v} must have picked up the hub");
        }
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn edges_never_move_to_pricier_endpoints() {
        let g = star_graph();
        let mut a = Assignment::from_sets(vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
        // Spokes 3 and 4 are *more* expensive than the hub: their edges
        // stay, the cheap spokes' edges move.
        let prices = vec![400, 100, 100, 900, 900];
        let out = rebalance_assignment(&mut a, &prices, &[0]);
        assert_eq!(out.moved_nodes, 2);
        assert_eq!(a.kept(0), &[3, 4]);
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn cheapest_device_is_a_noop() {
        let g = star_graph();
        let mut a = Assignment::from_sets(vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
        let before = a.clone();
        let prices = vec![100, 400, 400, 400, 400];
        let out = rebalance_assignment(&mut a, &prices, &[0]);
        assert_eq!(out, RebalanceOutcome::default());
        assert_eq!(a, before);
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn rebalance_is_deterministic() {
        let run = || {
            let mut a =
                Assignment::from_sets(vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]]);
            let prices = vec![400, 100, 500, 100, 100];
            let out = rebalance_assignment(&mut a, &prices, &[0, 2]);
            (a, out)
        };
        let (a1, o1) = run();
        let (a2, o2) = run();
        assert_eq!(a1, a2);
        assert_eq!(o1, o2);
    }

    #[test]
    #[should_panic(expected = "one live price per device")]
    fn mismatched_price_vector_panics() {
        let mut a = Assignment::from_sets(vec![vec![1], vec![]]);
        rebalance_assignment(&mut a, &[1], &[0]);
    }
}
