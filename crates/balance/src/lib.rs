//! `lumos-balance` — the heterogeneity-aware workload balancer (§V).
//!
//! Contains the min–max workload-balancing problem (Eq. 10, NP-hard by
//! Theorem 1), the greedy initialization of Algorithm 1, the secure
//! max-workload location protocol of Algorithm 3, and the MCMC /
//! Metropolis–Hastings iteration of Algorithm 2 whose tail behaviour is
//! bounded by Theorem 2. All private-value comparisons run through a
//! [`CompareOracle`](oracle::CompareOracle), which either executes the real
//! simulated two-party circuits or charges the identical cost model.

#![forbid(unsafe_code)]
pub mod analysis;
pub mod exact;
pub mod flow;
pub mod greedy;
pub mod maxfind;
pub mod mcmc;
pub mod oracle;
pub mod problem;
pub mod rebalance;

pub use analysis::{degree_ecdf, summarize, workload_ecdf, BalanceSummary};
pub use exact::{solve_exact, ExactSolution};
pub use flow::FlowNetwork;
pub use greedy::{
    greedy_init, greedy_init_weighted, rounded_log_degree, rounded_log_weighted, LOG_DEGREE_BITS,
};
pub use maxfind::{
    find_max_workload_device, workload_bits, MaxFindOutcome, ServerTraffic, WEIGHTED_WORKLOAD_BITS,
    WORKLOAD_BITS,
};
pub use mcmc::{mcmc_balance, McmcConfig, McmcOutcome, McmcStats};
pub use oracle::{
    make_oracle, make_oracle_backend, BitslicedPlainOracle, BitslicedSecureOracle, CompareBackend,
    CompareOracle, MeteredPlainOracle, SecureOracle, SecurityMode,
};
pub use problem::{device_id_count, objective_lower_bound, Assignment, BalanceObjective};
pub use rebalance::{rebalance_assignment, RebalanceOutcome};
