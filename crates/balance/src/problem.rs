//! The workload-balancing problem (Eq. 9–10).
//!
//! The decision variable `x_(u,v) = 1` means "device u includes neighbor v
//! in its tree"; an [`Assignment`] stores the retained-neighbor sets `N_u`.
//! The objective `f(X) = max_u |N_u|` is minimized subject to every edge
//! appearing in at least one tree (`x_(u,v) + x_(v,u) ≥ 1`). Theorem 1
//! proves the problem NP-hard (reduction to min–max colored TSP), which is
//! why Lumos approximates it with greedy + MCMC.

use lumos_graph::Graph;

/// Retained-neighbor sets for every device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    keep: Vec<Vec<u32>>,
}

impl Assignment {
    /// Creates an assignment where every device keeps all its neighbors
    /// (the untrimmed trees — "Lumos w.o. TT" in the ablation).
    pub fn full(g: &Graph) -> Self {
        Self {
            keep: (0..g.num_nodes() as u32)
                .map(|v| g.neighbors(v).to_vec())
                .collect(),
        }
    }

    /// Creates an assignment from explicit per-device sets.
    pub fn from_sets(keep: Vec<Vec<u32>>) -> Self {
        let mut keep = keep;
        for set in &mut keep {
            set.sort_unstable();
            set.dedup();
        }
        Self { keep }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.keep.len()
    }

    /// Retained neighbors of device `u` (sorted).
    pub fn kept(&self, u: u32) -> &[u32] {
        &self.keep[u as usize]
    }

    /// Workload of device `u`: `wl(u) = |N_u|`.
    pub fn workload(&self, u: u32) -> usize {
        self.keep[u as usize].len()
    }

    /// All workloads.
    pub fn workloads(&self) -> Vec<usize> {
        self.keep.iter().map(|s| s.len()).collect()
    }

    /// The objective `f(X) = max_u |N_u|` (0 for an empty system).
    pub fn objective(&self) -> usize {
        self.keep.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Whether `v ∈ N_u`.
    pub fn keeps(&self, u: u32, v: u32) -> bool {
        self.keep[u as usize].binary_search(&v).is_ok()
    }

    /// Applies the transition of Eq. 16: `N_u ← N_u \ {v}`,
    /// `N_v ← N_v ∪ {u}`. Returns `false` (and does nothing) if `v ∉ N_u`.
    pub fn transfer(&mut self, u: u32, v: u32) -> bool {
        let Ok(pos) = self.keep[u as usize].binary_search(&v) else {
            return false;
        };
        self.keep[u as usize].remove(pos);
        if let Err(ins) = self.keep[v as usize].binary_search(&u) {
            self.keep[v as usize].insert(ins, u);
        }
        true
    }

    /// Reverses [`Assignment::transfer`] given whether `u` was already in
    /// `N_v` beforehand.
    pub fn untransfer(&mut self, u: u32, v: u32, v_kept_u_before: bool) {
        if let Err(ins) = self.keep[u as usize].binary_search(&v) {
            self.keep[u as usize].insert(ins, v);
        }
        if !v_kept_u_before {
            if let Ok(pos) = self.keep[v as usize].binary_search(&u) {
                self.keep[v as usize].remove(pos);
            }
        }
    }

    /// Checks the covering constraint of Eq. 10: every edge of `g` is
    /// retained by at least one endpoint, and no device keeps a non-neighbor.
    pub fn check_feasible(&self, g: &Graph) -> Result<(), String> {
        if self.keep.len() != g.num_nodes() {
            return Err("device count mismatch".into());
        }
        for (u, set) in self.keep.iter().enumerate() {
            for &v in set {
                if !g.has_edge(u as u32, v) {
                    return Err(format!("device {u} keeps non-neighbor {v}"));
                }
            }
        }
        for (u, v) in g.edges() {
            if !self.keeps(u, v) && !self.keeps(v, u) {
                return Err(format!("edge ({u},{v}) is covered by neither tree"));
            }
        }
        Ok(())
    }

    /// Total retained entries `Σ_u |N_u|` (the total system workload).
    pub fn total_workload(&self) -> usize {
        self.keep.iter().map(|s| s.len()).sum()
    }
}

/// A trivial lower bound on the optimal objective: every edge must be kept
/// somewhere, so some device carries at least `⌈|E| / |V|⌉`; and a vertex
/// pair connected by an edge has at least one retainer, so
/// `f(X*) ≥ max(1, ⌈|E|/|V|⌉)` whenever `|E| > 0`.
pub fn objective_lower_bound(g: &Graph) -> usize {
    if g.num_edges() == 0 {
        0
    } else {
        g.num_edges().div_ceil(g.num_nodes()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn full_assignment_keeps_everything() {
        let g = path_graph();
        let a = Assignment::full(&g);
        assert_eq!(a.workloads(), vec![1, 2, 2, 1]);
        assert_eq!(a.objective(), 2);
        assert_eq!(a.total_workload(), 2 * g.num_edges());
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn transfer_moves_the_edge() {
        let g = path_graph();
        let mut a = Assignment::full(&g);
        let before = a.keeps(2, 1);
        assert!(before, "full assignment keeps both directions");
        assert!(a.transfer(1, 2));
        assert!(!a.keeps(1, 2));
        assert!(a.keeps(2, 1));
        a.check_feasible(&g).unwrap();
        // Transfer of an absent neighbor is a no-op.
        assert!(!a.transfer(1, 2));
    }

    #[test]
    fn untransfer_restores_state() {
        let g = path_graph();
        let mut a = Assignment::from_sets(vec![vec![1], vec![2], vec![3], vec![]]);
        a.check_feasible(&g).unwrap();
        let v_kept = a.keeps(2, 1);
        assert!(!v_kept);
        let snapshot = a.clone();
        assert!(a.transfer(1, 2));
        a.untransfer(1, 2, v_kept);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn infeasible_assignments_are_detected() {
        let g = path_graph();
        // Edge (1,2) uncovered.
        let a = Assignment::from_sets(vec![vec![1], vec![], vec![], vec![2]]);
        assert!(a.check_feasible(&g).is_err());
        // Device keeps a non-neighbor.
        let b = Assignment::from_sets(vec![vec![3], vec![0, 2], vec![3], vec![]]);
        assert!(b.check_feasible(&g).is_err());
    }

    #[test]
    fn lower_bound_is_sane() {
        let g = path_graph();
        assert_eq!(objective_lower_bound(&g), 1);
        let empty = Graph::new(3);
        assert_eq!(objective_lower_bound(&empty), 0);
        let dense = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(objective_lower_bound(&dense), 1);
    }
}
