//! The workload-balancing problem (Eq. 9–10), optionally cost-weighted.
//!
//! The decision variable `x_(u,v) = 1` means "device u includes neighbor v
//! in its tree"; an [`Assignment`] stores the retained-neighbor sets `N_u`.
//! The paper's objective `f(X) = max_u |N_u|` is minimized subject to every
//! edge appearing in at least one tree (`x_(u,v) + x_(v,u) ≥ 1`). Theorem 1
//! proves the problem NP-hard (reduction to min–max colored TSP), which is
//! why Lumos approximates it with greedy + MCMC.
//!
//! Heterogeneity-aware extension: each device may carry a fixed-point
//! per-tree-node cost `c_u` (virtual microseconds, from the device's
//! capability profile), turning the objective into the weighted makespan
//! `f(X) = max_u c_u · |N_u|`. Costs stay integers so the secure-comparison
//! circuits operate on them unchanged; the all-ones cost vector degenerates
//! to the paper's node-count objective bit for bit.

use lumos_graph::Graph;

/// Which quantity the balancer minimizes the maximum of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceObjective {
    /// The paper's objective: tree-node count per device, `max_u |N_u|`.
    #[default]
    TreeNodes,
    /// Capability-weighted objective: virtual seconds per device,
    /// `max_u c_u · |N_u|` with `c_u` in fixed-point microseconds.
    VirtualSecs,
}

impl BalanceObjective {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BalanceObjective::TreeNodes => "tree-nodes",
            BalanceObjective::VirtualSecs => "virtual-secs",
        }
    }

    /// Parses an objective name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tree-nodes" | "nodes" => Some(BalanceObjective::TreeNodes),
            "virtual-secs" | "vsecs" => Some(BalanceObjective::VirtualSecs),
            _ => None,
        }
    }
}

/// Retained-neighbor sets for every device, plus optional per-node costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    keep: Vec<Vec<u32>>,
    /// Per-device fixed-point cost (virtual µs) of one retained tree node;
    /// `None` means the unweighted node-count objective (cost 1 everywhere).
    costs: Option<Vec<u64>>,
}

/// Checked `usize → u32` device-id conversion. Device ids are `u32` on the
/// wire (protocol messages, tree centers, share lanes), so a fleet larger
/// than `u32::MAX` is unrepresentable — fail loudly instead of letting an
/// `as` cast wrap ids into collisions (lumos-lint `lossy-cast`).
pub fn device_id_count(n: usize) -> u32 {
    u32::try_from(n).expect("fleet size exceeds the u32 device-id space")
}

impl Assignment {
    /// Creates an assignment where every device keeps all its neighbors
    /// (the untrimmed trees — "Lumos w.o. TT" in the ablation).
    pub fn full(g: &Graph) -> Self {
        Self {
            keep: (0..device_id_count(g.num_nodes()))
                .map(|v| g.neighbors(v).to_vec())
                .collect(),
            costs: None,
        }
    }

    /// Creates an assignment from explicit per-device sets.
    pub fn from_sets(keep: Vec<Vec<u32>>) -> Self {
        let mut keep = keep;
        for set in &mut keep {
            set.sort_unstable();
            set.dedup();
        }
        Self { keep, costs: None }
    }

    /// Attaches per-device tree-node costs (fixed-point virtual µs),
    /// switching every weighted accessor — and the balancers driven by them
    /// — to the `max_u c_u · |N_u|` objective.
    ///
    /// # Panics
    /// Panics if the cost vector length differs from the device count or
    /// any cost is zero (a zero-cost device would absorb the whole graph
    /// for free and break the fixed-point log encoding).
    pub fn with_costs(mut self, costs: Vec<u64>) -> Self {
        assert_eq!(costs.len(), self.keep.len(), "one cost per device");
        assert!(costs.iter().all(|&c| c >= 1), "costs must be >= 1");
        self.costs = Some(costs);
        self
    }

    /// The per-device costs, if the weighted objective is active.
    pub fn costs(&self) -> Option<&[u64]> {
        self.costs.as_deref()
    }

    /// Cost of one retained tree node on device `u` (1 when unweighted).
    pub fn node_cost(&self, u: u32) -> u64 {
        self.costs.as_ref().map_or(1, |c| c[u as usize])
    }

    /// Mean per-node cost, the natural unit for the MCMC acceptance
    /// temperature (exactly 1.0 for the unweighted objective, so the
    /// degenerate case divides by one and stays bit-identical).
    pub fn cost_scale(&self) -> f64 {
        match &self.costs {
            None => 1.0,
            Some(c) if c.is_empty() => 1.0,
            Some(c) => c.iter().map(|&x| x as f64).sum::<f64>() / c.len() as f64,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.keep.len()
    }

    /// Retained neighbors of device `u` (sorted).
    pub fn kept(&self, u: u32) -> &[u32] {
        &self.keep[u as usize]
    }

    /// Workload of device `u`: `wl(u) = |N_u|`.
    pub fn workload(&self, u: u32) -> usize {
        self.keep[u as usize].len()
    }

    /// All workloads.
    pub fn workloads(&self) -> Vec<usize> {
        self.keep.iter().map(|s| s.len()).collect()
    }

    /// The objective `f(X) = max_u |N_u|` (0 for an empty system).
    pub fn objective(&self) -> usize {
        self.keep.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Weighted workload of device `u`: `c_u · |N_u|` virtual µs (reduces
    /// to the node count when no costs are attached).
    ///
    /// # Panics
    /// Panics if `c_u · |N_u|` exceeds `i64::MAX` — the secure-difference
    /// protocol subtracts workloads as signed 64-bit values, and a wrapped
    /// product would silently balance on garbage. Profile-derived costs are
    /// clamped far below this; only extreme caller-supplied costs hit it.
    pub fn weighted_workload(&self, u: u32) -> u64 {
        match self
            .node_cost(u)
            .checked_mul(self.keep[u as usize].len() as u64)
        {
            Some(w) if w <= i64::MAX as u64 => w,
            _ => panic!(
                "weighted workload c_u * |N_u| overflows on device {u}; \
                 use smaller fixed-point costs"
            ),
        }
    }

    /// All weighted workloads.
    pub fn weighted_workloads(&self) -> Vec<u64> {
        (0..device_id_count(self.keep.len()))
            .map(|u| self.weighted_workload(u))
            .collect()
    }

    /// The weighted objective `f(X) = max_u c_u · |N_u|` (0 for an empty
    /// system).
    pub fn weighted_objective(&self) -> u64 {
        (0..device_id_count(self.keep.len()))
            .map(|u| self.weighted_workload(u))
            .max()
            .unwrap_or(0)
    }

    /// Whether `v ∈ N_u`.
    pub fn keeps(&self, u: u32, v: u32) -> bool {
        self.keep[u as usize].binary_search(&v).is_ok()
    }

    /// Applies the transition of Eq. 16: `N_u ← N_u \ {v}`,
    /// `N_v ← N_v ∪ {u}`. Returns `false` (and does nothing) if `v ∉ N_u`.
    pub fn transfer(&mut self, u: u32, v: u32) -> bool {
        let Ok(pos) = self.keep[u as usize].binary_search(&v) else {
            return false;
        };
        self.keep[u as usize].remove(pos);
        if let Err(ins) = self.keep[v as usize].binary_search(&u) {
            self.keep[v as usize].insert(ins, u);
        }
        true
    }

    /// Reverses [`Assignment::transfer`] given whether `u` was already in
    /// `N_v` beforehand.
    pub fn untransfer(&mut self, u: u32, v: u32, v_kept_u_before: bool) {
        if let Err(ins) = self.keep[u as usize].binary_search(&v) {
            self.keep[u as usize].insert(ins, v);
        }
        if !v_kept_u_before {
            if let Ok(pos) = self.keep[v as usize].binary_search(&u) {
                self.keep[v as usize].remove(pos);
            }
        }
    }

    /// Checks the covering constraint of Eq. 10: every edge of `g` is
    /// retained by at least one endpoint, and no device keeps a non-neighbor.
    pub fn check_feasible(&self, g: &Graph) -> Result<(), String> {
        if self.keep.len() != g.num_nodes() {
            return Err("device count mismatch".into());
        }
        for (u, set) in self.keep.iter().enumerate() {
            let u = u32::try_from(u).expect("device ids are u32 wire values");
            for &v in set {
                if !g.has_edge(u, v) {
                    return Err(format!("device {u} keeps non-neighbor {v}"));
                }
            }
        }
        for (u, v) in g.edges() {
            if !self.keeps(u, v) && !self.keeps(v, u) {
                return Err(format!("edge ({u},{v}) is covered by neither tree"));
            }
        }
        Ok(())
    }

    /// Total retained entries `Σ_u |N_u|` (the total system workload).
    pub fn total_workload(&self) -> usize {
        self.keep.iter().map(|s| s.len()).sum()
    }
}

/// A trivial lower bound on the optimal objective: every edge must be kept
/// somewhere, so some device carries at least `⌈|E| / |V|⌉`; and a vertex
/// pair connected by an edge has at least one retainer, so
/// `f(X*) ≥ max(1, ⌈|E|/|V|⌉)` whenever `|E| > 0`.
pub fn objective_lower_bound(g: &Graph) -> usize {
    if g.num_edges() == 0 {
        0
    } else {
        g.num_edges().div_ceil(g.num_nodes()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn full_assignment_keeps_everything() {
        let g = path_graph();
        let a = Assignment::full(&g);
        assert_eq!(a.workloads(), vec![1, 2, 2, 1]);
        assert_eq!(a.objective(), 2);
        assert_eq!(a.total_workload(), 2 * g.num_edges());
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn transfer_moves_the_edge() {
        let g = path_graph();
        let mut a = Assignment::full(&g);
        let before = a.keeps(2, 1);
        assert!(before, "full assignment keeps both directions");
        assert!(a.transfer(1, 2));
        assert!(!a.keeps(1, 2));
        assert!(a.keeps(2, 1));
        a.check_feasible(&g).unwrap();
        // Transfer of an absent neighbor is a no-op.
        assert!(!a.transfer(1, 2));
    }

    #[test]
    fn untransfer_restores_state() {
        let g = path_graph();
        let mut a = Assignment::from_sets(vec![vec![1], vec![2], vec![3], vec![]]);
        a.check_feasible(&g).unwrap();
        let v_kept = a.keeps(2, 1);
        assert!(!v_kept);
        let snapshot = a.clone();
        assert!(a.transfer(1, 2));
        a.untransfer(1, 2, v_kept);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn infeasible_assignments_are_detected() {
        let g = path_graph();
        // Edge (1,2) uncovered.
        let a = Assignment::from_sets(vec![vec![1], vec![], vec![], vec![2]]);
        assert!(a.check_feasible(&g).is_err());
        // Device keeps a non-neighbor.
        let b = Assignment::from_sets(vec![vec![3], vec![0, 2], vec![3], vec![]]);
        assert!(b.check_feasible(&g).is_err());
    }

    #[test]
    fn objective_names_round_trip() {
        for o in [BalanceObjective::TreeNodes, BalanceObjective::VirtualSecs] {
            assert_eq!(BalanceObjective::parse(o.name()), Some(o));
        }
        assert_eq!(
            BalanceObjective::parse("nodes"),
            Some(BalanceObjective::TreeNodes)
        );
        assert_eq!(
            BalanceObjective::parse("VSECS"),
            Some(BalanceObjective::VirtualSecs)
        );
        assert_eq!(BalanceObjective::parse("nope"), None);
        assert_eq!(BalanceObjective::default(), BalanceObjective::TreeNodes);
    }

    #[test]
    fn weighted_accessors_reduce_to_counts_without_costs() {
        let g = path_graph();
        let a = Assignment::full(&g);
        assert_eq!(a.costs(), None);
        assert_eq!(a.cost_scale(), 1.0);
        assert_eq!(a.weighted_workloads(), vec![1, 2, 2, 1]);
        assert_eq!(a.weighted_objective(), 2);
        for u in 0..4u32 {
            assert_eq!(a.weighted_workload(u), a.workload(u) as u64);
        }
    }

    #[test]
    fn costs_weight_the_objective() {
        let g = path_graph();
        let a = Assignment::full(&g).with_costs(vec![100, 1, 1, 7]);
        assert_eq!(a.weighted_workloads(), vec![100, 2, 2, 7]);
        assert_eq!(a.weighted_objective(), 100);
        // Node-count views are unchanged by costs.
        assert_eq!(a.objective(), 2);
        assert!((a.cost_scale() - 27.25).abs() < 1e-12);
        // Transfers preserve the cost vector.
        let mut b = a.clone();
        assert!(b.transfer(0, 1));
        assert_eq!(b.costs(), Some(&[100u64, 1, 1, 7][..]));
        assert_eq!(b.weighted_workload(0), 0);
    }

    #[test]
    #[should_panic(expected = "one cost per device")]
    fn mismatched_cost_length_panics() {
        let g = path_graph();
        let _ = Assignment::full(&g).with_costs(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "costs must be >= 1")]
    fn zero_cost_panics() {
        let g = path_graph();
        let _ = Assignment::full(&g).with_costs(vec![1, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "overflows on device 1")]
    fn overflowing_weighted_workload_panics() {
        // Device 1 keeps 2 neighbors; u64::MAX · 2 would wrap silently in
        // release and balance on garbage — it must panic instead.
        let g = path_graph();
        let a = Assignment::full(&g).with_costs(vec![1, u64::MAX, 1, 1]);
        let _ = a.weighted_workload(1);
    }

    #[test]
    fn lower_bound_is_sane() {
        let g = path_graph();
        assert_eq!(objective_lower_bound(&g), 1);
        let empty = Graph::new(3);
        assert_eq!(objective_lower_bound(&empty), 0);
        let dense = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(objective_lower_bound(&dense), 1);
    }
}
