//! MCMC iteration (Algorithm 2) with Metropolis–Hastings acceptance.
//!
//! Starting from the greedy assignment, each iteration moves `k` branches
//! off the currently most-loaded device `u` (Eq. 17, with `k` sampled from
//! `1..=round(ln |N_u|)`), then accepts the move with probability
//! `min(1, e^{f(X_t) − f(X'_t)})` (Eq. 18). The most-loaded device is found
//! with Algorithm 3 and the objective difference with the secure-difference
//! protocol, so no workload is ever revealed in the clear. Theorem 2 bounds
//! the probability that the chain settles far from the optimum.

use lumos_common::rng::Xoshiro256pp;
use lumos_crypto::CommMeter;
use lumos_graph::Graph;

use crate::maxfind::{find_max_workload_device, ServerTraffic};
use crate::oracle::CompareOracle;
use crate::problem::Assignment;

/// Configuration for the MCMC balancer.
#[derive(Debug, Clone)]
pub struct McmcConfig {
    /// Number of iterations `T` (the paper uses 1,000 for Facebook and 300
    /// for LastFM).
    pub iterations: usize,
    /// Seed for proposal sampling and tie breaking.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            iterations: 300,
            seed: 0x0BA1_A4CE,
        }
    }
}

/// Statistics of one MCMC run.
#[derive(Debug, Clone, Default)]
pub struct McmcStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Accepted transitions.
    pub accepted: usize,
    /// Device-to-device assignment update messages (Alg. 2 line 9).
    pub device_messages: u64,
    /// Server traffic from the embedded Algorithm 3 runs.
    pub server: ServerTraffic,
    /// Secure-protocol communication (comparisons + differences).
    pub secure: CommMeter,
    /// Number of secure comparisons.
    pub comparisons: u64,
}

/// Result of the MCMC balancer.
#[derive(Debug, Clone)]
pub struct McmcOutcome {
    /// Final assignment.
    pub assignment: Assignment,
    /// Objective value after each iteration (simulator-side trace for
    /// reporting; devices never see it in the clear).
    pub trace: Vec<usize>,
    /// Run statistics.
    pub stats: McmcStats,
}

/// Runs Algorithm 2 for `cfg.iterations` iterations.
pub fn mcmc_balance(
    g: &Graph,
    mut assignment: Assignment,
    cfg: &McmcConfig,
    oracle: &mut dyn CompareOracle,
) -> McmcOutcome {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mut stats = McmcStats::default();
    let mut trace = Vec::with_capacity(cfg.iterations);
    let meter_base = oracle.meter();
    let comparisons_base = oracle.comparisons();

    for _ in 0..cfg.iterations {
        stats.iterations += 1;

        // Line 2: locate the most-loaded device under X_t.
        let before = find_max_workload_device(g, &assignment, oracle, &mut rng);
        stats.server.messages += before.server.messages;
        let u = before.device;
        let wl_u = assignment.workload(u);
        if wl_u == 0 {
            // Perfectly empty maximum: nothing to balance.
            trace.push(assignment.objective());
            continue;
        }
        let f_old = wl_u as i64;

        // Lines 3–4: sample the step size and the branches to move.
        let k_max = ((wl_u as f64).ln().round() as usize).max(1).min(wl_u);
        let k = 1 + rng.index(k_max);
        let picks: Vec<u32> = rng
            .sample_indices(wl_u, k)
            .into_iter()
            .map(|i| assignment.kept(u)[i])
            .collect();

        // Line 5: form X'_t (remembering prior state for rollback).
        let prior: Vec<bool> = picks.iter().map(|&v| assignment.keeps(v, u)).collect();
        for &v in &picks {
            assignment.transfer(u, v);
        }

        // Line 6: most-loaded device under X'_t.
        let after = find_max_workload_device(g, &assignment, oracle, &mut rng);
        stats.server.messages += after.server.messages;
        let f_new = assignment.workload(after.device) as i64;

        // Line 7: devices {u, u'} compute f(X_t) − f(X'_t) securely.
        let delta = oracle.difference(f_old, f_new);

        // Line 8 (Eq. 18): Metropolis–Hastings acceptance.
        let accept = if delta >= 0 {
            true
        } else {
            rng.bernoulli((delta as f64).exp())
        };

        if accept {
            stats.accepted += 1;
            // Line 9: u broadcasts the accepted state to the k movers.
            stats.device_messages += k as u64;
        } else {
            for (&v, &was) in picks.iter().zip(&prior).rev() {
                assignment.untransfer(u, v, was);
            }
        }
        trace.push(assignment.objective());
    }

    stats.secure = oracle.meter().since(&meter_base);
    stats.comparisons = oracle.comparisons() - comparisons_base;
    McmcOutcome {
        assignment,
        trace,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_init;
    use crate::oracle::MeteredPlainOracle;
    use crate::problem::objective_lower_bound;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    fn powerlaw_graph(n: usize, seed: u64) -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let labels: Vec<u32> = (0..n).map(|_| rng.next_below(4) as u32).collect();
        homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng)
    }

    #[test]
    fn mcmc_keeps_feasibility_and_does_not_worsen_much() {
        let g = powerlaw_graph(400, 9);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let init_obj = init.objective();
        let cfg = McmcConfig {
            iterations: 150,
            seed: 4,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();
        assert_eq!(out.trace.len(), 150);
        // MH can accept slightly worse states transiently, but the end state
        // should not be worse than the start (on this scale it improves or
        // ties with overwhelming probability).
        assert!(
            out.assignment.objective() <= init_obj,
            "final {} vs init {init_obj}",
            out.assignment.objective()
        );
        assert!(out.assignment.objective() >= objective_lower_bound(&g));
    }

    #[test]
    fn mcmc_improves_a_star_imbalance() {
        // Star + ring: greedy on a star leaves the hub empty, but starting
        // from the *full* assignment the hub has everything; MCMC must shed
        // hub branches.
        let mut edges: Vec<(u32, u32)> = (1..=12).map(|v| (0u32, v)).collect();
        edges.extend((1..12).map(|v| (v as u32, v as u32 + 1)));
        let g = Graph::from_edges(13, &edges);
        let full = Assignment::full(&g);
        assert_eq!(full.objective(), 12);
        let mut oracle = MeteredPlainOracle::new();
        let cfg = McmcConfig {
            iterations: 200,
            seed: 7,
        };
        let out = mcmc_balance(&g, full, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();
        assert!(
            out.assignment.objective() <= 6,
            "hub should shed load, got {}",
            out.assignment.objective()
        );
        assert!(out.stats.accepted > 0);
    }

    #[test]
    fn trace_is_recorded_and_stats_counted() {
        let g = powerlaw_graph(120, 11);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let cfg = McmcConfig {
            iterations: 25,
            seed: 1,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        assert_eq!(out.stats.iterations, 25);
        assert!(out.stats.comparisons > 0);
        assert!(out.stats.secure.messages > 0);
        assert!(out.stats.server.messages > 0);
        // Two Alg-3 sweeps per iteration, each comparing every edge.
        assert!(out.stats.comparisons >= 2 * 25 * g.num_edges() as u64);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = powerlaw_graph(60, 2);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let snapshot = init.clone();
        let cfg = McmcConfig {
            iterations: 0,
            seed: 0,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        assert_eq!(out.assignment, snapshot);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = powerlaw_graph(200, 3);
        let run = || {
            let mut oracle = MeteredPlainOracle::new();
            let init = greedy_init(&g, &mut oracle);
            let cfg = McmcConfig {
                iterations: 50,
                seed: 99,
            };
            mcmc_balance(&g, init, &cfg, &mut oracle)
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.trace, b.trace);
    }
}
