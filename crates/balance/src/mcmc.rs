//! MCMC iteration (Algorithm 2) with Metropolis–Hastings acceptance.
//!
//! Starting from the greedy assignment, each iteration moves `k` branches
//! off the currently most-loaded device `u` (Eq. 17, with `k` sampled from
//! `1..=round(ln |N_u|)`), then accepts the move with probability
//! `min(1, e^{f(X_t) − f(X'_t)})` (Eq. 18). The most-loaded device is found
//! with Algorithm 3 and the objective difference with the secure-difference
//! protocol, so no workload is ever revealed in the clear. Theorem 2 bounds
//! the probability that the chain settles far from the optimum.
//!
//! When the assignment carries per-node costs ([`Assignment::with_costs`]),
//! every workload in the chain is the *weighted* workload `c_u · |N_u|`
//! (fixed-point virtual µs): Algorithm 3 locates the slowest-in-µs device
//! and Eq. 18's exponent is normalized by the fleet's mean per-node cost so
//! the acceptance temperature stays in tree-node units. With unit costs the
//! normalizer is exactly 1.0 and the chain is bit-identical to the paper's.
//!
//! The chain's dominant cost — `2 × iterations` Algorithm-3 sweeps, each
//! comparing every edge — goes to the [`CompareOracle`] as whole-sweep
//! batches, so a bit-sliced backend
//! ([`crate::oracle::CompareBackend::Bitsliced`]) evaluates 64 edges per
//! circuit while leaving every outcome, and hence the chain's trajectory,
//! untouched.

use lumos_common::rng::Xoshiro256pp;
use lumos_crypto::CommMeter;
use lumos_graph::Graph;

use crate::maxfind::{find_max_workload_device, ServerTraffic};
use crate::oracle::CompareOracle;
use crate::problem::Assignment;

/// Configuration for the MCMC balancer.
#[derive(Debug, Clone)]
pub struct McmcConfig {
    /// Number of iterations `T` (the paper uses 1,000 for Facebook and 300
    /// for LastFM).
    pub iterations: usize,
    /// Seed for proposal sampling and tie breaking.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            iterations: 300,
            seed: 0x0BA1_A4CE,
        }
    }
}

/// Statistics of one MCMC run.
#[derive(Debug, Clone, Default)]
pub struct McmcStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Accepted transitions.
    pub accepted: usize,
    /// Device-to-device assignment update messages (Alg. 2 line 9).
    pub device_messages: u64,
    /// Server traffic from the embedded Algorithm 3 runs.
    pub server: ServerTraffic,
    /// Secure-protocol communication (comparisons + differences).
    pub secure: CommMeter,
    /// Number of secure comparisons.
    pub comparisons: u64,
}

/// Result of the MCMC balancer.
#[derive(Debug, Clone)]
pub struct McmcOutcome {
    /// Final assignment.
    pub assignment: Assignment,
    /// Objective value after each iteration (simulator-side trace for
    /// reporting; devices never see it in the clear).
    pub trace: Vec<usize>,
    /// Weighted objective (`max_u c_u · |N_u|`, virtual µs) after each
    /// iteration; equals `trace` element-wise under unit costs.
    pub weighted_trace: Vec<u64>,
    /// Run statistics.
    pub stats: McmcStats,
}

/// Runs Algorithm 2 for `cfg.iterations` iterations.
pub fn mcmc_balance(
    g: &Graph,
    mut assignment: Assignment,
    cfg: &McmcConfig,
    oracle: &mut dyn CompareOracle,
) -> McmcOutcome {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let mut stats = McmcStats::default();
    let mut trace = Vec::with_capacity(cfg.iterations);
    let mut weighted_trace = Vec::with_capacity(cfg.iterations);
    let meter_base = oracle.meter();
    let comparisons_base = oracle.comparisons();
    // Acceptance temperature in tree-node units: 1.0 when unweighted, the
    // mean per-node cost when weighted (dividing by 1.0 is a bitwise no-op,
    // so the default objective's RNG stream is untouched).
    let scale = assignment.cost_scale();

    for _ in 0..cfg.iterations {
        stats.iterations += 1;

        // Line 2: locate the most-loaded device under X_t.
        let before = find_max_workload_device(g, &assignment, oracle, &mut rng);
        stats.server.messages += before.server.messages;
        let u = before.device;
        let wl_u = assignment.workload(u);
        if wl_u == 0 {
            // Perfectly empty maximum: nothing to balance.
            trace.push(assignment.objective());
            weighted_trace.push(assignment.weighted_objective());
            continue;
        }
        // `weighted_workload` guarantees ≤ i64::MAX (checked mul + bound),
        // so the conversion cannot fail; try_from documents the invariant.
        let f_old = i64::try_from(assignment.weighted_workload(u))
            .expect("weighted workload fits the i64 secure-difference lane");

        // Lines 3–4: sample the step size and the branches to move.
        // lumos-lint: allow(lossy-cast) — k_max = round(ln(wl)) ≤ 45 for any u64 workload; truncation impossible
        let k_max = ((wl_u as f64).ln().round() as usize).max(1).min(wl_u);
        let k = 1 + rng.index(k_max);
        let picks: Vec<u32> = rng
            .sample_indices(wl_u, k)
            .into_iter()
            .map(|i| assignment.kept(u)[i])
            .collect();

        // Line 5: form X'_t (remembering prior state for rollback).
        let prior: Vec<bool> = picks.iter().map(|&v| assignment.keeps(v, u)).collect();
        for &v in &picks {
            assignment.transfer(u, v);
        }

        // Line 6: most-loaded device under X'_t.
        let after = find_max_workload_device(g, &assignment, oracle, &mut rng);
        stats.server.messages += after.server.messages;
        let f_new = i64::try_from(assignment.weighted_workload(after.device))
            .expect("weighted workload fits the i64 secure-difference lane");

        // Line 7: devices {u, u'} compute f(X_t) − f(X'_t) securely.
        let delta = oracle.difference(f_old, f_new);

        // Line 8 (Eq. 18): Metropolis–Hastings acceptance, with the
        // exponent in mean-per-node-cost units so weighted runs keep the
        // paper's temperature instead of collapsing to pure descent.
        let accept = if delta >= 0 {
            true
        } else {
            rng.bernoulli((delta as f64 / scale).exp())
        };

        if accept {
            stats.accepted += 1;
            // Line 9: u broadcasts the accepted state to the k movers.
            stats.device_messages += k as u64;
        } else {
            for (&v, &was) in picks.iter().zip(&prior).rev() {
                assignment.untransfer(u, v, was);
            }
        }
        trace.push(assignment.objective());
        weighted_trace.push(assignment.weighted_objective());
    }

    stats.secure = oracle.meter().since(&meter_base);
    stats.comparisons = oracle.comparisons() - comparisons_base;
    McmcOutcome {
        assignment,
        trace,
        weighted_trace,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_init;
    use crate::oracle::MeteredPlainOracle;
    use crate::problem::objective_lower_bound;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    fn powerlaw_graph(n: usize, seed: u64) -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let labels: Vec<u32> = (0..n).map(|_| rng.next_below(4) as u32).collect();
        homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng)
    }

    #[test]
    fn mcmc_keeps_feasibility_and_does_not_worsen_much() {
        let g = powerlaw_graph(400, 9);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let init_obj = init.objective();
        let cfg = McmcConfig {
            iterations: 150,
            seed: 4,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();
        assert_eq!(out.trace.len(), 150);
        // MH can accept slightly worse states transiently, but the end state
        // should not be worse than the start (on this scale it improves or
        // ties with overwhelming probability).
        assert!(
            out.assignment.objective() <= init_obj,
            "final {} vs init {init_obj}",
            out.assignment.objective()
        );
        assert!(out.assignment.objective() >= objective_lower_bound(&g));
    }

    #[test]
    fn mcmc_improves_a_star_imbalance() {
        // Star + ring: greedy on a star leaves the hub empty, but starting
        // from the *full* assignment the hub has everything; MCMC must shed
        // hub branches.
        let mut edges: Vec<(u32, u32)> = (1..=12).map(|v| (0u32, v)).collect();
        edges.extend((1..12).map(|v| (v as u32, v as u32 + 1)));
        let g = Graph::from_edges(13, &edges);
        let full = Assignment::full(&g);
        assert_eq!(full.objective(), 12);
        let mut oracle = MeteredPlainOracle::new();
        let cfg = McmcConfig {
            iterations: 200,
            seed: 7,
        };
        let out = mcmc_balance(&g, full, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();
        assert!(
            out.assignment.objective() <= 6,
            "hub should shed load, got {}",
            out.assignment.objective()
        );
        assert!(out.stats.accepted > 0);
    }

    #[test]
    fn weighted_chain_strips_the_expensive_device() {
        // Ring of 12 devices with perfectly balanced node counts (2 each):
        // the unweighted chain has nothing to do, but device 0's per-node
        // cost is 1,000× its peers', so the weighted chain must shed its
        // branches onto the cheap neighbors.
        let edges: Vec<(u32, u32)> = (0..12u32).map(|v| (v, (v + 1) % 12)).collect();
        let g = Graph::from_edges(12, &edges);
        let mut costs = vec![10u64; 12];
        costs[0] = 10_000;
        let full = Assignment::full(&g).with_costs(costs);
        assert_eq!(full.weighted_objective(), 20_000);
        let mut oracle = MeteredPlainOracle::new();
        let cfg = McmcConfig {
            iterations: 60,
            seed: 12,
        };
        let out = mcmc_balance(&g, full, &cfg, &mut oracle);
        out.assignment.check_feasible(&g).unwrap();
        assert_eq!(
            out.assignment.workload(0),
            0,
            "the expensive device must end up empty"
        );
        assert!(
            out.assignment.weighted_objective() <= 40,
            "weighted objective must collapse to the cheap devices, got {}",
            out.assignment.weighted_objective()
        );
        assert_eq!(out.weighted_trace.len(), 60);
        assert!(out.weighted_trace.last().unwrap() < &20_000);
    }

    #[test]
    fn unit_cost_traces_coincide() {
        let g = powerlaw_graph(150, 5);
        let run = |costs: Option<Vec<u64>>| {
            let mut oracle = MeteredPlainOracle::new();
            let init = match costs {
                Some(c) => greedy_init(&g, &mut oracle).with_costs(c),
                None => greedy_init(&g, &mut oracle),
            };
            let cfg = McmcConfig {
                iterations: 40,
                seed: 77,
            };
            (mcmc_balance(&g, init, &cfg, &mut oracle), oracle)
        };
        let (plain, plain_oracle) = run(None);
        let (ones, ones_oracle) = run(Some(vec![1; g.num_nodes()]));
        // Same chain: identical retained sets, traces, and — because the
        // all-ones weighted workload *is* the node count — the weighted
        // trace equals the node-count trace.
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(plain.assignment.kept(v), ones.assignment.kept(v));
        }
        assert_eq!(plain.trace, ones.trace);
        assert_eq!(
            ones.weighted_trace,
            ones.trace.iter().map(|&x| x as u64).collect::<Vec<_>>()
        );
        assert_eq!(plain_oracle.comparisons(), ones_oracle.comparisons());
        assert_eq!(plain.stats.accepted, ones.stats.accepted);
    }

    #[test]
    fn bitsliced_backend_reproduces_the_scalar_chain() {
        // The MH chain consumes only comparison *outcomes* and its own RNG
        // stream, so swapping the comparison engine must reproduce the
        // trajectory exactly — while the wire meters collapse.
        use crate::oracle::BitslicedPlainOracle;
        let g = powerlaw_graph(200, 21);
        let cfg = McmcConfig {
            iterations: 40,
            seed: 33,
        };
        let mut scalar = MeteredPlainOracle::new();
        let scalar_out = mcmc_balance(&g, greedy_init(&g, &mut scalar), &cfg, &mut scalar);
        let mut sliced = BitslicedPlainOracle::new();
        let sliced_out = mcmc_balance(&g, greedy_init(&g, &mut sliced), &cfg, &mut sliced);
        assert_eq!(scalar_out.assignment, sliced_out.assignment);
        assert_eq!(scalar_out.trace, sliced_out.trace);
        assert_eq!(scalar_out.stats.accepted, sliced_out.stats.accepted);
        assert_eq!(
            scalar_out.stats.comparisons, sliced_out.stats.comparisons,
            "logical comparison counts must not depend on the engine"
        );
        assert!(
            sliced_out.stats.secure.messages * 8 < scalar_out.stats.secure.messages,
            "bit-slicing must collapse the secure traffic: {} vs {}",
            sliced_out.stats.secure.messages,
            scalar_out.stats.secure.messages
        );
    }

    #[test]
    fn trace_is_recorded_and_stats_counted() {
        let g = powerlaw_graph(120, 11);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let cfg = McmcConfig {
            iterations: 25,
            seed: 1,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        assert_eq!(out.stats.iterations, 25);
        assert!(out.stats.comparisons > 0);
        assert!(out.stats.secure.messages > 0);
        assert!(out.stats.server.messages > 0);
        // Two Alg-3 sweeps per iteration, each comparing every edge.
        assert!(out.stats.comparisons >= 2 * 25 * g.num_edges() as u64);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = powerlaw_graph(60, 2);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        let snapshot = init.clone();
        let cfg = McmcConfig {
            iterations: 0,
            seed: 0,
        };
        let out = mcmc_balance(&g, init, &cfg, &mut oracle);
        assert_eq!(out.assignment, snapshot);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = powerlaw_graph(200, 3);
        let run = || {
            let mut oracle = MeteredPlainOracle::new();
            let init = greedy_init(&g, &mut oracle);
            let cfg = McmcConfig {
                iterations: 50,
                seed: 99,
            };
            mcmc_balance(&g, init, &cfg, &mut oracle)
        };
        let a = run();
        let b = run();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.trace, b.trace);
    }
}
