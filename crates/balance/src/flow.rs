//! Dinic's maximum-flow algorithm.
//!
//! Used by the exact workload solver ([`crate::exact`]): deciding whether
//! every edge can be assigned to an endpoint with all workloads ≤ k is a
//! bipartite b-matching, i.e. a max-flow instance.

/// A directed flow network with integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // Arcs stored as parallel arrays; `to[i]` is the head of arc i, and
    // arc i^1 is its residual twin.
    to: Vec<u32>,
    cap: Vec<i64>,
    head: Vec<Vec<u32>>, // per-node arc ids
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `u → v` with the given capacity (plus its
    /// zero-capacity residual). Returns the arc id.
    pub fn add_arc(&mut self, u: usize, v: usize, capacity: i64) -> usize {
        assert!(capacity >= 0, "capacity must be non-negative");
        let id = self.to.len();
        self.to.push(v as u32);
        self.cap.push(capacity);
        self.head[u].push(id as u32);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[v].push(id as u32 + 1);
        id
    }

    /// Remaining capacity of an arc (inspect after running flow).
    pub fn residual(&self, arc: usize) -> i64 {
        self.cap[arc]
    }

    /// Flow pushed through an arc equals the twin's gained capacity.
    pub fn flow(&self, arc: usize) -> i64 {
        self.cap[arc ^ 1]
    }

    /// Computes the maximum flow from `s` to `t` (Dinic).
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.num_nodes();
        let mut total = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![u32::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &aid in &self.head[u] {
                    let v = self.to[aid as usize] as usize;
                    if self.cap[aid as usize] > 0 && level[v] == u32::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == u32::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[u32], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.head[u].len() {
            let aid = self.head[u][iter[u]] as usize;
            let v = self.to[aid] as usize;
            if self.cap[aid] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[aid]), level, iter);
                if pushed > 0 {
                    self.cap[aid] -= pushed;
                    self.cap[aid ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths with a cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 10);
        net.add_arc(0, 2, 10);
        net.add_arc(1, 2, 1);
        net.add_arc(1, 3, 8);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 18);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 7);
        net.add_arc(2, 3, 7);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn flow_and_residual_accessors() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 4);
        assert_eq!(net.max_flow(0, 1), 4);
        assert_eq!(net.flow(a), 4);
        assert_eq!(net.residual(a), 0);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3 left nodes, 3 right nodes, perfect matching exists.
        // Nodes: 0=s, 1..=3 left, 4..=6 right, 7=t.
        let mut net = FlowNetwork::new(8);
        for l in 1..=3 {
            net.add_arc(0, l, 1);
            net.add_arc(l + 3, 7, 1);
        }
        net.add_arc(1, 4, 1);
        net.add_arc(1, 5, 1);
        net.add_arc(2, 5, 1);
        net.add_arc(3, 6, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }
}
