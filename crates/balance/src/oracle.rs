//! Comparison oracles: how the balancer invokes secure two-party protocols.
//!
//! Every degree/workload comparison in Algorithms 1–3 must run under the
//! secure comparison of `lumos-crypto` (Definition 2). [`SecureOracle`]
//! actually executes the OT-based circuits. [`MeteredPlainOracle`] computes
//! the same results in the clear while charging the *identical* cost model,
//! so paper-scale experiments remain fast; a test in this module pins the
//! two meters against each other, bit for bit.

use std::cmp::Ordering;

use lumos_crypto::{
    secure_compare, secure_compare_batch, secure_difference, CommMeter, TwoParty, LANES,
};

/// Which secure-comparison engine backs the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompareBackend {
    /// One scalar circuit evaluation per comparison — the historical
    /// engine, and the default that keeps seed → bit-identical meters.
    #[default]
    Scalar,
    /// The bit-sliced 64-lane engine: independent comparisons in a sweep
    /// share each AND gate's two OTs, cutting OT messages ~64×. Outcomes
    /// and logical comparison counts are identical to `Scalar`
    /// (property-tested); only the communication meters shrink.
    Bitsliced,
}

impl CompareBackend {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompareBackend::Scalar => "scalar",
            CompareBackend::Bitsliced => "bitsliced",
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(CompareBackend::Scalar),
            "bitsliced" | "sliced" => Some(CompareBackend::Bitsliced),
            _ => None,
        }
    }
}

/// Abstraction over the pairwise secure-comparison service.
pub trait CompareOracle {
    /// Compares two private `bits`-bit values, revealing only the ordering.
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering;

    /// Compares many *independent* `bits`-bit pairs in one sweep (an
    /// Algorithm-1 or Algorithm-3 edge pass), revealing only the orderings,
    /// in input order.
    ///
    /// The default implementation loops the scalar path, so every oracle
    /// keeps its historical per-call results, meters, and session streams
    /// bit for bit; batched engines override it to share circuit
    /// evaluations across lanes.
    fn compare_batch(&mut self, pairs: &[(u64, u64)], bits: u32) -> Vec<Ordering> {
        pairs
            .iter()
            .map(|&(a, b)| self.compare(a, b, bits))
            .collect()
    }

    /// Reveals the difference `a - b` (Algorithm 2, line 7).
    fn difference(&mut self, a: i64, b: i64) -> i64;

    /// Accumulated communication across all invocations.
    fn meter(&self) -> CommMeter;

    /// Number of *logical* comparisons performed (a batch of `n` pairs
    /// counts `n`, whatever the engine packs them into).
    fn comparisons(&self) -> u64;
}

/// Executes the real simulated protocols of `lumos-crypto`.
#[derive(Debug)]
pub struct SecureOracle {
    seed: u64,
    counter: u64,
    meter: CommMeter,
    comparisons: u64,
}

impl SecureOracle {
    /// Creates the oracle; each protocol session gets a distinct seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            counter: 0,
            meter: CommMeter::new(),
            comparisons: 0,
        }
    }

    fn session(&mut self) -> TwoParty {
        self.counter += 1;
        TwoParty::new(self.seed ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl CompareOracle for SecureOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        let mut ctx = self.session();
        let out = secure_compare(&mut ctx, a, b, bits);
        self.meter.merge(&ctx.meter);
        self.comparisons += 1;
        out.ordering()
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        let mut ctx = self.session();
        let d = secure_difference(&mut ctx, a, b);
        self.meter.merge(&ctx.meter);
        d
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Computes results in the clear but charges the exact communication the
/// secure protocols would have used.
#[derive(Debug, Default)]
pub struct MeteredPlainOracle {
    meter: CommMeter,
    comparisons: u64,
}

impl MeteredPlainOracle {
    /// Creates a zero-cost oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The communication the bit-tree comparison protocol uses for `bits`-bit
    /// inputs (see `lumos-crypto::compare`): per-bit input sharing, one AND
    /// per leaf, two ANDs per balanced-tree merge (each AND = 2 OTs = 4
    /// messages / 34 bytes), layered rounds, two 1-bit reveals.
    pub fn compare_cost(bits: u32) -> CommMeter {
        let leaf_ands = bits as u64;
        let merge_ands = 2 * (bits as u64 - 1);
        let ands = leaf_ands + merge_ands;
        let share_msgs = 2 * bits as u64;
        let and_msgs = 4 * ands;
        let reveal_msgs = 4;
        // Layers: the leaf layer plus ceil(log2 bits) merge layers, 2 rounds
        // each; plus one round per reveal.
        let mut layers = 1u64;
        let mut width = bits as u64;
        while width > 1 {
            width = width.div_ceil(2);
            layers += 1;
        }
        CommMeter {
            messages: share_msgs + and_msgs + reveal_msgs,
            // share: 1 byte each; AND: 2 OTs × (1 + 16) bytes; reveal: 1 byte
            // each.
            bytes: share_msgs + ands * 2 * 17 + reveal_msgs,
            rounds: 2 * layers + 2,
        }
    }

    /// The communication of the masked-difference protocol: three 8-byte
    /// messages in three rounds.
    pub fn difference_cost() -> CommMeter {
        CommMeter {
            messages: 3,
            bytes: 24,
            rounds: 3,
        }
    }
}

impl CompareOracle for MeteredPlainOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        self.meter.merge(&Self::compare_cost(bits));
        self.comparisons += 1;
        a.cmp(&b)
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        self.meter.merge(&Self::difference_cost());
        a.wrapping_sub(b)
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Executes the bit-sliced 64-lane batch circuits of `lumos-crypto`:
/// one word session per 64 lanes, each AND gate's two wide OTs shared by
/// every lane in the word.
#[derive(Debug)]
pub struct BitslicedSecureOracle {
    seed: u64,
    counter: u64,
    meter: CommMeter,
    comparisons: u64,
}

impl BitslicedSecureOracle {
    /// Creates the oracle; each protocol session gets a distinct seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            counter: 0,
            meter: CommMeter::new(),
            comparisons: 0,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        self.seed ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl CompareOracle for BitslicedSecureOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        self.compare_batch(&[(a, b)], bits)[0]
    }

    fn compare_batch(&mut self, pairs: &[(u64, u64)], bits: u32) -> Vec<Ordering> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let batch = secure_compare_batch(self.next_seed(), pairs, bits);
        self.meter.merge(&batch.meter);
        self.comparisons += pairs.len() as u64;
        batch.outcomes.into_iter().map(|o| o.ordering()).collect()
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        // The masked-difference protocol is already word-width; the scalar
        // session is the right tool either way.
        let mut ctx = TwoParty::new(self.next_seed());
        let d = secure_difference(&mut ctx, a, b);
        self.meter.merge(&ctx.meter);
        d
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Computes results in the clear but charges exactly what the bit-sliced
/// engine would: one word's traffic per 64 lanes (partial words price like
/// full ones — the wire must not reveal the lane count).
#[derive(Debug, Default)]
pub struct BitslicedPlainOracle {
    meter: CommMeter,
    comparisons: u64,
}

impl BitslicedPlainOracle {
    /// Creates a zero-cost oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The communication one 64-lane word costs at `bits` bits: per-bit
    /// input sharing (8-byte words), the same `3·bits − 2` AND gates as the
    /// scalar circuit — each now two *wide* OTs (8 + 16 bytes) — the same
    /// layered rounds, and two 8-byte word reveals.
    pub fn word_cost(bits: u32) -> CommMeter {
        let ands = 3 * bits as u64 - 2;
        let share_msgs = 2 * bits as u64;
        let reveal_msgs = 4;
        let mut layers = 1u64;
        let mut width = bits as u64;
        while width > 1 {
            width = width.div_ceil(2);
            layers += 1;
        }
        CommMeter {
            messages: share_msgs + 4 * ands + reveal_msgs,
            bytes: 8 * share_msgs + ands * 2 * (8 + 16) + 8 * reveal_msgs,
            rounds: 2 * layers + 2,
        }
    }

    /// The communication a `lanes`-pair batch costs: one word per 64 lanes.
    pub fn batch_cost(lanes: usize, bits: u32) -> CommMeter {
        Self::word_cost(bits).times(lanes.div_ceil(LANES) as u64)
    }
}

impl CompareOracle for BitslicedPlainOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        self.compare_batch(&[(a, b)], bits)[0]
    }

    fn compare_batch(&mut self, pairs: &[(u64, u64)], bits: u32) -> Vec<Ordering> {
        if pairs.is_empty() {
            return Vec::new();
        }
        self.meter.merge(&Self::batch_cost(pairs.len(), bits));
        self.comparisons += pairs.len() as u64;
        pairs.iter().map(|&(a, b)| a.cmp(&b)).collect()
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        self.meter.merge(&MeteredPlainOracle::difference_cost());
        a.wrapping_sub(b)
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Which oracle the high-level constructors should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityMode {
    /// Run the full OT-based circuits (slow, exercised in tests and small
    /// benches).
    Simulated,
    /// Clear-text results with the identical cost model (paper-scale runs).
    CostModel,
}

/// Builds an oracle for the requested mode on the default
/// [`CompareBackend::Scalar`] engine.
pub fn make_oracle(mode: SecurityMode, seed: u64) -> Box<dyn CompareOracle> {
    make_oracle_backend(mode, CompareBackend::Scalar, seed)
}

/// Builds an oracle for the requested mode and comparison backend.
pub fn make_oracle_backend(
    mode: SecurityMode,
    backend: CompareBackend,
    seed: u64,
) -> Box<dyn CompareOracle> {
    match (backend, mode) {
        (CompareBackend::Scalar, SecurityMode::Simulated) => Box::new(SecureOracle::new(seed)),
        (CompareBackend::Scalar, SecurityMode::CostModel) => Box::new(MeteredPlainOracle::new()),
        (CompareBackend::Bitsliced, SecurityMode::Simulated) => {
            Box::new(BitslicedSecureOracle::new(seed))
        }
        (CompareBackend::Bitsliced, SecurityMode::CostModel) => {
            Box::new(BitslicedPlainOracle::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracles_agree_on_results() {
        let mut secure = SecureOracle::new(5);
        let mut plain = MeteredPlainOracle::new();
        for (a, b) in [(3u64, 9u64), (9, 3), (7, 7), (0, 255), (255, 0)] {
            assert_eq!(secure.compare(a, b, 8), plain.compare(a, b, 8));
        }
        assert_eq!(secure.difference(42, -17), plain.difference(42, -17));
        assert_eq!(secure.comparisons(), 5);
        assert_eq!(plain.comparisons(), 5);
    }

    #[test]
    fn cost_model_matches_real_protocol_exactly() {
        // The analytic cost model must equal the measured cost of the real
        // protocol for several bit widths.
        for bits in [1u32, 2, 3, 5, 8, 16, 20, 32, 64] {
            let mut secure = SecureOracle::new(11);
            secure.compare(1, 0, bits);
            let model = MeteredPlainOracle::compare_cost(bits);
            assert_eq!(secure.meter(), model, "bits = {bits}");
        }
        let mut secure = SecureOracle::new(12);
        secure.difference(5, 9);
        assert_eq!(secure.meter(), MeteredPlainOracle::difference_cost());
    }

    #[test]
    fn make_oracle_dispatches() {
        let mut a = make_oracle(SecurityMode::Simulated, 1);
        let mut b = make_oracle(SecurityMode::CostModel, 1);
        assert_eq!(a.compare(4, 2, 4), Ordering::Greater);
        assert_eq!(b.compare(4, 2, 4), Ordering::Greater);
        assert_eq!(a.meter(), b.meter());
    }

    #[test]
    fn default_compare_batch_loops_the_scalar_path() {
        // A batch through the default trait method must be observationally
        // identical to the historical per-call loop: same results, same
        // meter, same session streams — the seed → bit-identical contract.
        let pairs = [(3u64, 9u64), (9, 3), (7, 7), (0, 255)];
        let mut batched = SecureOracle::new(5);
        let outs = batched.compare_batch(&pairs, 8);
        let mut looped = SecureOracle::new(5);
        let loop_outs: Vec<Ordering> = pairs
            .iter()
            .map(|&(a, b)| looped.compare(a, b, 8))
            .collect();
        assert_eq!(outs, loop_outs);
        assert_eq!(batched.meter(), looped.meter());
        assert_eq!(batched.comparisons(), looped.comparisons());
    }

    #[test]
    fn bitsliced_oracles_agree_with_scalar_on_results() {
        let pairs: Vec<(u64, u64)> = (0..130).map(|i| (i % 17, i % 13)).collect();
        let mut scalar = MeteredPlainOracle::new();
        let mut secure = BitslicedSecureOracle::new(7);
        let mut plain = BitslicedPlainOracle::new();
        let want = scalar.compare_batch(&pairs, 16);
        assert_eq!(secure.compare_batch(&pairs, 16), want);
        assert_eq!(plain.compare_batch(&pairs, 16), want);
        // Logical comparison counts are identical across backends.
        assert_eq!(secure.comparisons(), scalar.comparisons());
        assert_eq!(plain.comparisons(), scalar.comparisons());
        assert_eq!(secure.difference(42, -17), plain.difference(42, -17));
    }

    #[test]
    fn bitsliced_cost_model_matches_real_protocol_exactly() {
        for (lanes, bits) in [
            (1usize, 8u32),
            (3, 16),
            (64, 48),
            (65, 48),
            (200, 64),
            (64, 1),
        ] {
            let pairs: Vec<(u64, u64)> = (0..lanes as u64).map(|i| (i % 2, 1 - i % 2)).collect();
            let mut secure = BitslicedSecureOracle::new(11);
            secure.compare_batch(&pairs, bits);
            let model = BitslicedPlainOracle::batch_cost(lanes, bits);
            assert_eq!(secure.meter(), model, "lanes={lanes} bits={bits}");
        }
        let mut secure = BitslicedSecureOracle::new(12);
        secure.difference(5, 9);
        assert_eq!(secure.meter(), MeteredPlainOracle::difference_cost());
    }

    #[test]
    fn bitsliced_batch_cuts_ot_messages_64x() {
        // A full word's sweep vs the scalar loop on the same pairs: the
        // lane packing must save ~64× on messages while both report the
        // same 64 logical comparisons.
        let pairs: Vec<(u64, u64)> = (0..64).map(|i| (i, 63 - i)).collect();
        let mut scalar = MeteredPlainOracle::new();
        let mut sliced = BitslicedPlainOracle::new();
        scalar.compare_batch(&pairs, 48);
        sliced.compare_batch(&pairs, 48);
        assert_eq!(scalar.comparisons(), sliced.comparisons());
        assert_eq!(scalar.meter().messages, 64 * sliced.meter().messages);
        assert!(scalar.meter().bytes > 40 * sliced.meter().bytes);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [CompareBackend::Scalar, CompareBackend::Bitsliced] {
            assert_eq!(CompareBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            CompareBackend::parse("SLICED"),
            Some(CompareBackend::Bitsliced)
        );
        assert_eq!(CompareBackend::parse("nope"), None);
        assert_eq!(CompareBackend::default(), CompareBackend::Scalar);
    }

    #[test]
    fn make_oracle_backend_dispatches() {
        for backend in [CompareBackend::Scalar, CompareBackend::Bitsliced] {
            let mut a = make_oracle_backend(SecurityMode::Simulated, backend, 1);
            let mut b = make_oracle_backend(SecurityMode::CostModel, backend, 1);
            assert_eq!(a.compare(4, 2, 4), Ordering::Greater);
            assert_eq!(b.compare(4, 2, 4), Ordering::Greater);
            assert_eq!(a.meter(), b.meter(), "{}", backend.name());
        }
    }
}
