//! Comparison oracles: how the balancer invokes secure two-party protocols.
//!
//! Every degree/workload comparison in Algorithms 1–3 must run under the
//! secure comparison of `lumos-crypto` (Definition 2). [`SecureOracle`]
//! actually executes the OT-based circuits. [`MeteredPlainOracle`] computes
//! the same results in the clear while charging the *identical* cost model,
//! so paper-scale experiments remain fast; a test in this module pins the
//! two meters against each other, bit for bit.

use std::cmp::Ordering;

use lumos_crypto::{secure_compare, secure_difference, CommMeter, TwoParty};

/// Abstraction over the pairwise secure-comparison service.
pub trait CompareOracle {
    /// Compares two private `bits`-bit values, revealing only the ordering.
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering;

    /// Reveals the difference `a - b` (Algorithm 2, line 7).
    fn difference(&mut self, a: i64, b: i64) -> i64;

    /// Accumulated communication across all invocations.
    fn meter(&self) -> CommMeter;

    /// Number of comparisons performed.
    fn comparisons(&self) -> u64;
}

/// Executes the real simulated protocols of `lumos-crypto`.
#[derive(Debug)]
pub struct SecureOracle {
    seed: u64,
    counter: u64,
    meter: CommMeter,
    comparisons: u64,
}

impl SecureOracle {
    /// Creates the oracle; each protocol session gets a distinct seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            counter: 0,
            meter: CommMeter::new(),
            comparisons: 0,
        }
    }

    fn session(&mut self) -> TwoParty {
        self.counter += 1;
        TwoParty::new(self.seed ^ self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl CompareOracle for SecureOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        let mut ctx = self.session();
        let out = secure_compare(&mut ctx, a, b, bits);
        self.meter.merge(&ctx.meter);
        self.comparisons += 1;
        out.ordering()
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        let mut ctx = self.session();
        let d = secure_difference(&mut ctx, a, b);
        self.meter.merge(&ctx.meter);
        d
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Computes results in the clear but charges the exact communication the
/// secure protocols would have used.
#[derive(Debug, Default)]
pub struct MeteredPlainOracle {
    meter: CommMeter,
    comparisons: u64,
}

impl MeteredPlainOracle {
    /// Creates a zero-cost oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The communication the bit-tree comparison protocol uses for `bits`-bit
    /// inputs (see `lumos-crypto::compare`): per-bit input sharing, one AND
    /// per leaf, two ANDs per balanced-tree merge (each AND = 2 OTs = 4
    /// messages / 34 bytes), layered rounds, two 1-bit reveals.
    pub fn compare_cost(bits: u32) -> CommMeter {
        let leaf_ands = bits as u64;
        let merge_ands = 2 * (bits as u64 - 1);
        let ands = leaf_ands + merge_ands;
        let share_msgs = 2 * bits as u64;
        let and_msgs = 4 * ands;
        let reveal_msgs = 4;
        // Layers: the leaf layer plus ceil(log2 bits) merge layers, 2 rounds
        // each; plus one round per reveal.
        let mut layers = 1u64;
        let mut width = bits as u64;
        while width > 1 {
            width = width.div_ceil(2);
            layers += 1;
        }
        CommMeter {
            messages: share_msgs + and_msgs + reveal_msgs,
            // share: 1 byte each; AND: 2 OTs × (1 + 16) bytes; reveal: 1 byte
            // each.
            bytes: share_msgs + ands * 2 * 17 + reveal_msgs,
            rounds: 2 * layers + 2,
        }
    }

    /// The communication of the masked-difference protocol: three 8-byte
    /// messages in three rounds.
    pub fn difference_cost() -> CommMeter {
        CommMeter {
            messages: 3,
            bytes: 24,
            rounds: 3,
        }
    }
}

impl CompareOracle for MeteredPlainOracle {
    fn compare(&mut self, a: u64, b: u64, bits: u32) -> Ordering {
        self.meter.merge(&Self::compare_cost(bits));
        self.comparisons += 1;
        a.cmp(&b)
    }

    fn difference(&mut self, a: i64, b: i64) -> i64 {
        self.meter.merge(&Self::difference_cost());
        a.wrapping_sub(b)
    }

    fn meter(&self) -> CommMeter {
        self.meter
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// Which oracle the high-level constructors should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityMode {
    /// Run the full OT-based circuits (slow, exercised in tests and small
    /// benches).
    Simulated,
    /// Clear-text results with the identical cost model (paper-scale runs).
    CostModel,
}

/// Builds an oracle for the requested mode.
pub fn make_oracle(mode: SecurityMode, seed: u64) -> Box<dyn CompareOracle> {
    match mode {
        SecurityMode::Simulated => Box::new(SecureOracle::new(seed)),
        SecurityMode::CostModel => Box::new(MeteredPlainOracle::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracles_agree_on_results() {
        let mut secure = SecureOracle::new(5);
        let mut plain = MeteredPlainOracle::new();
        for (a, b) in [(3u64, 9u64), (9, 3), (7, 7), (0, 255), (255, 0)] {
            assert_eq!(secure.compare(a, b, 8), plain.compare(a, b, 8));
        }
        assert_eq!(secure.difference(42, -17), plain.difference(42, -17));
        assert_eq!(secure.comparisons(), 5);
        assert_eq!(plain.comparisons(), 5);
    }

    #[test]
    fn cost_model_matches_real_protocol_exactly() {
        // The analytic cost model must equal the measured cost of the real
        // protocol for several bit widths.
        for bits in [1u32, 2, 3, 5, 8, 16, 20, 32, 64] {
            let mut secure = SecureOracle::new(11);
            secure.compare(1, 0, bits);
            let model = MeteredPlainOracle::compare_cost(bits);
            assert_eq!(secure.meter(), model, "bits = {bits}");
        }
        let mut secure = SecureOracle::new(12);
        secure.difference(5, 9);
        assert_eq!(secure.meter(), MeteredPlainOracle::difference_cost());
    }

    #[test]
    fn make_oracle_dispatches() {
        let mut a = make_oracle(SecurityMode::Simulated, 1);
        let mut b = make_oracle(SecurityMode::CostModel, 1);
        assert_eq!(a.compare(4, 2, 4), Ordering::Greater);
        assert_eq!(b.compare(4, 2, 4), Ordering::Greater);
        assert_eq!(a.meter(), b.meter());
    }
}
