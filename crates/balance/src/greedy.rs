//! Greedy initialization (Algorithm 1, Eq. 15).
//!
//! For every edge `{u, v}`, each endpoint keeps the neighbor whose rounded
//! log-degree is at least its own: `N_u ∋ v ⇔ round(ln deg v) ≥
//! round(ln deg u)`. The effect is that the higher-degree endpoint of a
//! lopsided edge drops it, filling the workload gap between devices with a
//! significant degree difference. Taking logarithms both shrinks the
//! bit-width of the secure comparison (§V-C: `O(max_v deg(v) · L log L)`
//! per device) and avoids churn between near-equal degrees.

use lumos_graph::Graph;

use crate::oracle::CompareOracle;
use crate::problem::Assignment;

/// Bit width used for secure comparisons of rounded log-degrees. Degrees
/// below 2^32 have `round(ln d) ≤ 23`, so 6 bits suffice; we use 8 to match
/// a byte on the wire.
pub const LOG_DEGREE_BITS: u32 = 8;

/// `round(ln deg)` with the convention that isolated vertices map to 0.
pub fn rounded_log_degree(deg: usize) -> u64 {
    rounded_log_weighted(deg, 1)
}

/// `round(ln (deg · cost))`: the log of the device's *weighted* full-ego
/// workload in fixed-point µs. With `cost = 1` this is exactly
/// [`rounded_log_degree`] — the paper's unweighted comparison key. The log
/// of any `u64` product fits comfortably in [`LOG_DEGREE_BITS`].
pub fn rounded_log_weighted(deg: usize, cost: u64) -> u64 {
    if deg == 0 {
        0
    } else {
        ((deg as u64 * cost) as f64).ln().round() as u64
    }
}

/// Runs Algorithm 1: one secure comparison per edge (the outcome is shared
/// by both endpoints), producing the initial retained-neighbor sets under
/// the unweighted (node-count) objective.
pub fn greedy_init(g: &Graph, oracle: &mut dyn CompareOracle) -> Assignment {
    greedy_init_weighted(g, None, oracle)
}

/// Cost-weighted Algorithm 1: each endpoint keeps the neighbor whose
/// rounded log *weighted* degree is at least its own, so an edge between a
/// throttled device and a fast one lands on the fast side even when their
/// degrees match. `costs = None` (or all ones) reproduces the paper's
/// comparison keys — and hence the assignment — bit for bit; the result
/// carries the cost vector so downstream balancers stay weighted.
pub fn greedy_init_weighted(
    g: &Graph,
    costs: Option<&[u64]>,
    oracle: &mut dyn CompareOracle,
) -> Assignment {
    if let Some(c) = costs {
        assert_eq!(c.len(), g.num_nodes(), "one cost per device");
    }
    let cost = |v: u32| costs.map_or(1, |c| c[v as usize]);
    let logs: Vec<u64> = (0..g.num_nodes() as u32)
        .map(|v| rounded_log_weighted(g.degree(v), cost(v)))
        .collect();
    let mut keep: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
    // One protocol run per edge; both endpoints learn the ordering. Every
    // edge's `round(ln deg)` comparison is independent, so the sweep is
    // submitted as one batch: the bit-sliced backend evaluates 64 edges per
    // circuit, the scalar default reproduces the per-edge loop exactly.
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let pairs: Vec<(u64, u64)> = edges
        .iter()
        .map(|&(u, v)| (logs[u as usize], logs[v as usize]))
        .collect();
    for (&(u, v), ord) in edges
        .iter()
        .zip(oracle.compare_batch(&pairs, LOG_DEGREE_BITS))
    {
        // Line 4 of Alg. 1 for endpoint u: keep v iff log(v) >= log(u),
        // i.e. iff NOT (log(u) > log(v)).
        if ord != std::cmp::Ordering::Greater {
            keep[u as usize].push(v);
        }
        // Symmetric decision for endpoint v.
        if ord != std::cmp::Ordering::Less {
            keep[v as usize].push(u);
        }
    }
    let assignment = Assignment::from_sets(keep);
    match costs {
        Some(c) => assignment.with_costs(c.to_vec()),
        None => assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{MeteredPlainOracle, SecureOracle};
    use lumos_common::rng::Xoshiro256pp;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    #[test]
    fn rounded_log_degree_values() {
        assert_eq!(rounded_log_degree(0), 0);
        assert_eq!(rounded_log_degree(1), 0);
        assert_eq!(rounded_log_degree(3), 1);
        assert_eq!(rounded_log_degree(20), 3);
        assert_eq!(rounded_log_degree(150), 5);
    }

    #[test]
    fn star_graph_center_sheds_leaves() {
        // Star: center 0 with 8 leaves. round(ln 8)=2 > round(ln 1)=0, so
        // the center keeps nothing and each leaf keeps the center.
        let edges: Vec<(u32, u32)> = (1..=8).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(9, &edges);
        let mut oracle = MeteredPlainOracle::new();
        let a = greedy_init(&g, &mut oracle);
        assert_eq!(a.workload(0), 0, "hub drops all branches");
        for v in 1..=8u32 {
            assert_eq!(a.kept(v), &[0]);
        }
        a.check_feasible(&g).unwrap();
        assert_eq!(oracle.comparisons(), 8, "one comparison per edge");
    }

    #[test]
    fn equal_degrees_keep_both_directions() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut oracle = MeteredPlainOracle::new();
        let a = greedy_init(&g, &mut oracle);
        assert!(a.keeps(0, 1) && a.keeps(1, 0));
    }

    #[test]
    fn greedy_is_feasible_and_reduces_max_on_powerlaw_graphs() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let labels: Vec<u32> = (0..800).map(|_| rng.next_below(4) as u32).collect();
        let g = homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng);
        let mut oracle = MeteredPlainOracle::new();
        let a = greedy_init(&g, &mut oracle);
        a.check_feasible(&g).unwrap();
        assert!(
            a.objective() < g.max_degree(),
            "greedy must cut the maximum: {} vs {}",
            a.objective(),
            g.max_degree()
        );
    }

    #[test]
    fn weighted_greedy_with_unit_costs_matches_unweighted() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let labels: Vec<u32> = (0..300).map(|_| rng.next_below(4) as u32).collect();
        let g = homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng);
        let ones = vec![1u64; g.num_nodes()];
        let mut oa = MeteredPlainOracle::new();
        let mut ob = MeteredPlainOracle::new();
        let plain = greedy_init(&g, &mut oa);
        let weighted = greedy_init_weighted(&g, Some(&ones), &mut ob);
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(plain.kept(v), weighted.kept(v));
        }
        assert_eq!(oa.comparisons(), ob.comparisons());
        assert_eq!(weighted.costs(), Some(&ones[..]));
    }

    #[test]
    fn expensive_endpoint_sheds_equal_degree_edges() {
        // Two degree-1 devices: unweighted greedy keeps both directions,
        // but a 100× cost gap moves the edge onto the cheap device alone.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut oracle = MeteredPlainOracle::new();
        let a = greedy_init_weighted(&g, Some(&[100, 1]), &mut oracle);
        assert!(!a.keeps(0, 1), "expensive device must shed the edge");
        assert!(a.keeps(1, 0), "cheap device must cover it");
        a.check_feasible(&g).unwrap();
    }

    #[test]
    fn bitsliced_backend_builds_the_identical_assignment() {
        use crate::oracle::{BitslicedSecureOracle, CompareOracle};
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let labels: Vec<u32> = (0..200).map(|_| rng.next_below(4) as u32).collect();
        let g = homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng);
        let mut scalar = MeteredPlainOracle::new();
        let mut sliced = BitslicedSecureOracle::new(3);
        let a = greedy_init(&g, &mut scalar);
        let b = greedy_init(&g, &mut sliced);
        assert_eq!(a, b, "lane packing must not change any keep decision");
        assert_eq!(scalar.comparisons(), sliced.comparisons());
        assert!(sliced.meter().messages < scalar.meter().messages / 8);
    }

    #[test]
    fn secure_and_plain_oracles_build_identical_assignments() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let labels: Vec<u32> = (0..120).map(|_| rng.next_below(3) as u32).collect();
        let cfg = PowerLawConfig {
            max_degree: 40,
            ..Default::default()
        };
        let g = homophilous_powerlaw(&labels, &cfg, &mut rng);
        let mut secure = SecureOracle::new(9);
        let mut plain = MeteredPlainOracle::new();
        let a = greedy_init(&g, &mut secure);
        let b = greedy_init(&g, &mut plain);
        assert_eq!(a, b);
        assert_eq!(secure.meter(), plain.meter(), "cost models must agree");
    }
}
