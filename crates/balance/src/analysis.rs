//! Workload analyses behind Figure 7 and Theorem 2's empirical checks.

use lumos_common::stats::Ecdf;

use crate::problem::Assignment;

/// Workload distribution (the series of Figure 7): the empirical CDF of
/// per-device workloads under an assignment.
pub fn workload_ecdf(assignment: &Assignment) -> Ecdf {
    Ecdf::new(
        assignment
            .workloads()
            .into_iter()
            .map(|w| w as f64)
            .collect(),
    )
}

/// Workload CDF of the untrimmed system (workload = raw degree).
pub fn degree_ecdf(g: &lumos_graph::Graph) -> Ecdf {
    Ecdf::new(g.degrees().into_iter().map(|d| d as f64).collect())
}

/// Summary of the balance quality of an assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceSummary {
    /// Largest workload (the objective).
    pub max: usize,
    /// Mean workload.
    pub mean: f64,
    /// 95th-percentile workload.
    pub p95: f64,
    /// Ratio max/mean — 1.0 is perfectly balanced; heavy tails push it up.
    pub imbalance: f64,
}

/// Computes the balance summary.
pub fn summarize(assignment: &Assignment) -> BalanceSummary {
    let wl = assignment.workloads();
    let max = wl.iter().copied().max().unwrap_or(0);
    let mean = if wl.is_empty() {
        0.0
    } else {
        wl.iter().sum::<usize>() as f64 / wl.len() as f64
    };
    let ecdf = workload_ecdf(assignment);
    BalanceSummary {
        max,
        mean,
        p95: ecdf.quantile(0.95),
        imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_graph::Graph;

    #[test]
    fn ecdf_of_star_assignment() {
        let edges: Vec<(u32, u32)> = (1..=9).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(10, &edges);
        let full = Assignment::full(&g);
        let e = workload_ecdf(&full);
        assert_eq!(e.max(), 9.0);
        // Nine leaves with workload 1 → CDF at 1 is 0.9.
        assert!((e.eval(1.0) - 0.9).abs() < 1e-9);
        let d = degree_ecdf(&g);
        assert_eq!(d.max(), 9.0);
    }

    #[test]
    fn summary_reflects_imbalance() {
        let edges: Vec<(u32, u32)> = (1..=9).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(10, &edges);
        let s = summarize(&Assignment::full(&g));
        assert_eq!(s.max, 9);
        assert!((s.mean - 1.8).abs() < 1e-9);
        assert!(s.imbalance > 4.0);
        // A balanced assignment (each leaf keeps the hub) has imbalance ~1.
        let balanced = Assignment::from_sets(
            std::iter::once(vec![])
                .chain((1..=9).map(|_| vec![0u32]))
                .collect(),
        );
        let s2 = summarize(&balanced);
        assert_eq!(s2.max, 1);
        assert!(s2.imbalance < 1.2);
    }
}
