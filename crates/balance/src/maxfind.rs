//! Finding the device with the maximum workload (Algorithm 3).
//!
//! Devices may not share workloads in the clear, so the protocol runs in
//! two phases of secure comparisons:
//!
//! 1. every device compares its workload with each ego-network neighbor;
//!    local maxima report themselves to the server as the *candidate vertex
//!    set* (CVS);
//! 2. the CVS members compare pairwise; the overall winner is reported, and
//!    ties are broken by the server uniformly at random.

use lumos_common::rng::Xoshiro256pp;
use lumos_graph::Graph;

use crate::oracle::CompareOracle;
use crate::problem::Assignment;

/// Bit width for unweighted workload comparisons (workloads are bounded by
/// the maximum degree; 16 bits covers graphs up to degree 65,535).
pub const WORKLOAD_BITS: u32 = 16;

/// Bit width for *weighted* workload comparisons: per-node costs are
/// fixed-point virtual microseconds (up to ~2·10⁷ µs/node for the slowest
/// clamped profile) times a degree, so 48 bits (≈ 2.8·10¹⁴) leaves ample
/// headroom.
pub const WEIGHTED_WORKLOAD_BITS: u32 = 48;

/// The comparison width Algorithm 3 uses for `assignment`: the paper's
/// 16-bit node counts, or the wide fixed-point lane once costs are
/// attached. Keeping the unweighted width untouched is what preserves the
/// seed → bit-identical communication meters of the default objective.
pub fn workload_bits(assignment: &Assignment) -> u32 {
    if assignment.costs().is_some() {
        WEIGHTED_WORKLOAD_BITS
    } else {
        WORKLOAD_BITS
    }
}

/// Communication with the coordinating server during Algorithm 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerTraffic {
    /// Candidate/no-candidate notifications (phase 1) and winner reports
    /// (phase 2).
    pub messages: u64,
}

/// Result of one Algorithm 3 execution.
#[derive(Debug, Clone)]
pub struct MaxFindOutcome {
    /// The selected device (maximum workload; ties broken randomly).
    pub device: u32,
    /// Size of the candidate vertex set after phase 1.
    pub cvs_size: usize,
    /// Server-bound messages consumed.
    pub server: ServerTraffic,
}

/// Runs Algorithm 3 on the current assignment.
///
/// # Panics
/// Panics if the graph has no vertices.
pub fn find_max_workload_device(
    g: &Graph,
    assignment: &Assignment,
    oracle: &mut dyn CompareOracle,
    rng: &mut Xoshiro256pp,
) -> MaxFindOutcome {
    let n = g.num_nodes();
    assert!(n > 0, "empty system");
    let bits = workload_bits(assignment);
    // One workload derivation per device per sweep: the assignment is
    // immutable for the duration of the protocol, so re-deriving
    // `weighted_workload` per edge endpoint (twice per edge, again per
    // phase-2 candidate) was pure waste.
    let wl: Vec<u64> = (0..crate::problem::device_id_count(n))
        .map(|v| {
            let w = assignment.weighted_workload(v);
            debug_assert!(w < 1u64 << bits, "workload {w} overflows {bits} bits");
            w
        })
        .collect();

    // Phase 1 (device operation 1): each device checks whether it is a
    // local maximum among its ego-network neighbors. Each edge is compared
    // once; both endpoints learn the ordering, mirroring the pairwise
    // protocol runs of Alg. 1. The edges are independent, so the whole
    // sweep goes to the oracle as one batch — the bit-sliced backend packs
    // 64 of them per circuit evaluation; the scalar backend's default loop
    // reproduces the historical per-edge calls bit for bit.
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let pairs: Vec<(u64, u64)> = edges
        .iter()
        .map(|&(u, v)| (wl[u as usize], wl[v as usize]))
        .collect();
    let mut is_candidate = vec![true; n];
    for (&(u, v), ord) in edges.iter().zip(oracle.compare_batch(&pairs, bits)) {
        match ord {
            std::cmp::Ordering::Greater => is_candidate[v as usize] = false,
            std::cmp::Ordering::Less => is_candidate[u as usize] = false,
            std::cmp::Ordering::Equal => {}
        }
    }
    let mut server = ServerTraffic::default();
    // Every device sends its candidate flag to the server (Alg. 3 line 16).
    server.messages += n as u64;
    let cvs: Vec<u32> = (0..crate::problem::device_id_count(n))
        .filter(|&v| is_candidate[v as usize])
        .collect();

    // Phase 2 (device operation 2): candidates compare pairwise. The scan
    // is sequential by construction (each comparison's operand is the
    // running winner), so it stays on the scalar entry point.
    let mut best: Vec<u32> = Vec::new();
    let mut best_wl: Option<u64> = None;
    for &c in &cvs {
        match best_wl {
            None => {
                best.push(c);
                best_wl = Some(wl[c as usize]);
            }
            Some(current) => match oracle.compare(wl[c as usize], current, bits) {
                std::cmp::Ordering::Greater => {
                    best.clear();
                    best.push(c);
                    best_wl = Some(wl[c as usize]);
                }
                std::cmp::Ordering::Equal => best.push(c),
                std::cmp::Ordering::Less => {}
            },
        }
    }
    // Each candidate reports its "am I the largest" verdict (line 18).
    server.messages += cvs.len() as u64;

    // Ties: the server picks uniformly at random (footnote 5).
    let device = *rng.choose(&best);
    MaxFindOutcome {
        device,
        cvs_size: cvs.len(),
        server,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::MeteredPlainOracle;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(500)
    }

    #[test]
    fn finds_the_unique_maximum() {
        // Star with center 0: workloads 4,1,1,1,1 under the full assignment.
        let edges: Vec<(u32, u32)> = (1..=4).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(5, &edges);
        let a = Assignment::full(&g);
        let mut oracle = MeteredPlainOracle::new();
        let out = find_max_workload_device(&g, &a, &mut oracle, &mut rng());
        assert_eq!(out.device, 0);
        assert_eq!(out.cvs_size, 1, "only the hub survives phase 1");
        assert_eq!(out.server.messages, 5 + 1);
    }

    #[test]
    fn result_matches_plain_argmax_on_random_graphs() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        for trial in 0..20 {
            let g = lumos_graph::generate::erdos_renyi(40, 0.15, &mut r);
            let a = Assignment::full(&g);
            let mut oracle = MeteredPlainOracle::new();
            let out = find_max_workload_device(&g, &a, &mut oracle, &mut r);
            let max_wl = a.workloads().into_iter().max().unwrap();
            assert_eq!(
                a.workload(out.device),
                max_wl,
                "trial {trial}: protocol must select a max-workload device"
            );
        }
    }

    #[test]
    fn ties_are_broken_among_true_maxima() {
        // Two disjoint edges: all four devices have workload 1 and all are
        // candidates; any of them is a legal answer.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let a = Assignment::full(&g);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40u64 {
            let mut oracle = MeteredPlainOracle::new();
            let mut r = Xoshiro256pp::seed_from_u64(seed);
            let out = find_max_workload_device(&g, &a, &mut oracle, &mut r);
            assert_eq!(a.workload(out.device), 1);
            seen.insert(out.device);
        }
        assert!(
            seen.len() > 1,
            "tie-break should vary with server randomness"
        );
    }

    #[test]
    fn weighted_costs_move_the_maximum() {
        // Star with center 0: the hub holds 4 nodes, each leaf 1. A leaf
        // whose per-node cost dwarfs the hub's total becomes the weighted
        // maximum even though its tree is the smallest.
        let edges: Vec<(u32, u32)> = (1..=4).map(|v| (0u32, v)).collect();
        let g = Graph::from_edges(5, &edges);
        let unweighted = Assignment::full(&g);
        assert_eq!(workload_bits(&unweighted), WORKLOAD_BITS);
        let a = unweighted.with_costs(vec![1, 1_000_000, 1, 1, 1]);
        assert_eq!(workload_bits(&a), WEIGHTED_WORKLOAD_BITS);
        let mut oracle = MeteredPlainOracle::new();
        let out = find_max_workload_device(&g, &a, &mut oracle, &mut rng());
        assert_eq!(out.device, 1, "the throttled leaf dominates in µs");
        assert_eq!(a.weighted_workload(out.device), 1_000_000);
    }

    #[test]
    fn bitsliced_sweep_matches_scalar_with_fewer_messages() {
        use crate::oracle::BitslicedPlainOracle;
        let mut r = Xoshiro256pp::seed_from_u64(17);
        let g = lumos_graph::generate::erdos_renyi(120, 0.08, &mut r);
        let a = Assignment::full(&g);
        let mut scalar = MeteredPlainOracle::new();
        let mut sliced = BitslicedPlainOracle::new();
        let out_scalar =
            find_max_workload_device(&g, &a, &mut scalar, &mut Xoshiro256pp::seed_from_u64(9));
        let out_sliced =
            find_max_workload_device(&g, &a, &mut sliced, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(out_scalar.device, out_sliced.device);
        assert_eq!(out_scalar.cvs_size, out_sliced.cvs_size);
        assert_eq!(out_scalar.server, out_sliced.server);
        // Same logical comparisons; far fewer wire messages (phase 1 packs
        // the whole edge sweep 64 lanes per word).
        assert_eq!(scalar.comparisons(), sliced.comparisons());
        assert!(
            sliced.meter().messages * 8 < scalar.meter().messages,
            "batched sweep must collapse messages: {} vs {}",
            sliced.meter().messages,
            scalar.meter().messages
        );
    }

    #[test]
    fn comparison_count_is_edges_plus_cvs_pairs() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let a = Assignment::full(&g);
        let mut oracle = MeteredPlainOracle::new();
        let out = find_max_workload_device(&g, &a, &mut oracle, &mut rng());
        // Phase 1: 3 edges. Phase 2: sequential scan of the CVS performs
        // |CVS| - 1 comparisons (first candidate enters for free).
        let expected = 3 + (out.cvs_size as u64 - 1);
        assert_eq!(oracle.comparisons(), expected);
    }
}
