//! Two-party boolean circuit evaluation over XOR secret shares.
//!
//! XOR/NOT gates are local; AND gates use two oblivious transfers (Gilboa's
//! construction, the GMW online phase). The simulation executes both
//! parties in one process, but the information flow is enforced by the API:
//! a [`SharedBit`]'s shares are private, and only [`TwoParty::reveal`]
//! combines them — exactly the discipline a real deployment would have.

use lumos_common::rng::Xoshiro256pp;

use crate::meter::CommMeter;
use crate::ot::{ot_transfer, OtDealer};

/// An XOR-shared secret bit: the actual value is `share_a ^ share_b`, with
/// party A holding `share_a` and party B holding `share_b`.
// No `Debug`: a formatted share is a cleartext leak (lumos-lint
// `secret-leak`); only `TwoParty::reveal` may combine the halves.
#[derive(Clone, Copy)]
pub struct SharedBit {
    share_a: bool,
    share_b: bool,
}

impl SharedBit {
    /// A public constant (held as `(value, false)` by convention).
    pub fn constant(value: bool) -> Self {
        Self {
            share_a: value,
            share_b: false,
        }
    }

    /// Assembles a shared bit from two party-local shares (used by protocol
    /// building blocks that produce shares out-of-band, e.g. OT leaves).
    pub(crate) fn from_shares(share_a: bool, share_b: bool) -> Self {
        Self { share_a, share_b }
    }
}

/// Execution context for a two-party computation session.
#[derive(Debug)]
pub struct TwoParty {
    dealer: OtDealer,
    rng_a: Xoshiro256pp,
    rng_b: Xoshiro256pp,
    /// Communication tallies for the whole session.
    pub meter: CommMeter,
    /// Values observed on the wire (masked share messages), recorded only
    /// when the session was created with [`TwoParty::with_transcript`].
    /// `None` by default: a long-lived session (e.g. a paper-scale MCMC
    /// run) would otherwise grow its transcript without bound.
    transcript: Option<Vec<bool>>,
    /// Number of AND gates evaluated.
    pub and_gates: u64,
}

impl TwoParty {
    /// Creates a session; `seed` drives the dealer and both parties' local
    /// randomness (forked into independent streams). Wire values are *not*
    /// recorded — use [`TwoParty::with_transcript`] for leakage analyses.
    pub fn new(seed: u64) -> Self {
        Self::build(seed, false)
    }

    /// Creates a session that records every wire value for leakage tests.
    /// Identical protocol behavior (same RNG streams, meter, outputs); only
    /// the bookkeeping differs.
    pub fn with_transcript(seed: u64) -> Self {
        Self::build(seed, true)
    }

    fn build(seed: u64, record: bool) -> Self {
        let mut root = Xoshiro256pp::seed_from_u64(seed);
        let rng_a = root.fork();
        let rng_b = root.fork();
        Self {
            dealer: OtDealer::new(root.next_u64()),
            rng_a,
            rng_b,
            meter: CommMeter::new(),
            transcript: record.then(Vec::new),
            and_gates: 0,
        }
    }

    /// The recorded wire values (empty unless the session was created with
    /// [`TwoParty::with_transcript`]).
    pub fn transcript(&self) -> &[bool] {
        self.transcript.as_deref().unwrap_or(&[])
    }

    /// Whether this session records wire values.
    pub fn records_transcript(&self) -> bool {
        self.transcript.is_some()
    }

    fn record(&mut self, bit: bool) {
        if let Some(t) = &mut self.transcript {
            t.push(bit);
        }
    }

    /// Party A secret-shares an input bit (one masked bit goes to B).
    pub fn share_from_a(&mut self, bit: bool) -> SharedBit {
        let mask = self.rng_a.bernoulli(0.5);
        // A keeps bit ^ mask, sends mask to B.
        self.meter.message(1);
        self.record(mask);
        SharedBit {
            share_a: bit ^ mask,
            share_b: mask,
        }
    }

    /// Party B secret-shares an input bit (one masked bit goes to A).
    pub fn share_from_b(&mut self, bit: bool) -> SharedBit {
        let mask = self.rng_b.bernoulli(0.5);
        self.meter.message(1);
        self.record(mask);
        SharedBit {
            share_a: mask,
            share_b: bit ^ mask,
        }
    }

    /// XOR gate (free: local on both parties).
    pub fn xor(&self, x: SharedBit, y: SharedBit) -> SharedBit {
        SharedBit {
            share_a: x.share_a ^ y.share_a,
            share_b: x.share_b ^ y.share_b,
        }
    }

    /// NOT gate (free: party A flips its share).
    pub fn not(&self, x: SharedBit) -> SharedBit {
        SharedBit {
            share_a: !x.share_a,
            share_b: x.share_b,
        }
    }

    /// AND gate via two oblivious transfers (Gilboa).
    ///
    /// `z = x & y` where `x = x_a ^ x_b`, `y = y_a ^ y_b`:
    /// the cross terms `x_a·y_b` and `x_b·y_a` are computed by one OT each,
    /// with the quadratic local terms folded in.
    pub fn and(&mut self, x: SharedBit, y: SharedBit) -> SharedBit {
        self.and_gates += 1;
        // OT 1: B is sender offering (s_b, s_b ^ y_b); A chooses with x_a.
        let s_b = self.rng_b.bernoulli(0.5);
        let (q_a, tr1) = ot_transfer(
            s_b as u64,
            (s_b ^ y.share_b) as u64,
            x.share_a,
            &mut self.dealer,
            &mut self.meter,
        );
        // OT 2: A is sender offering (s_a, s_a ^ y_a); B chooses with x_b.
        let s_a = self.rng_a.bernoulli(0.5);
        let (q_b, tr2) = ot_transfer(
            s_a as u64,
            (s_a ^ y.share_a) as u64,
            x.share_b,
            &mut self.dealer,
            &mut self.meter,
        );
        self.record(tr1.masked_choice);
        self.record(tr2.masked_choice);
        SharedBit {
            share_a: (x.share_a & y.share_a) ^ (q_a != 0) ^ s_a,
            share_b: (x.share_b & y.share_b) ^ (q_b != 0) ^ s_b,
        }
    }

    /// Marks the end of a parallel layer of gates: one synchronization round
    /// for the OT choice messages and one for the OT responses.
    pub fn end_layer(&mut self) {
        self.meter.round();
        self.meter.round();
    }

    /// Opens a shared bit to both parties (two share messages, one round).
    pub fn reveal(&mut self, x: SharedBit) -> bool {
        self.meter.message(1);
        self.meter.message(1);
        self.meter.round();
        self.record(x.share_a);
        self.record(x.share_b);
        x.share_a ^ x.share_b
    }

    /// Draws masking material from party B's local randomness stream.
    pub(crate) fn b_rng_next(&mut self) -> u64 {
        self.rng_b.next_u64()
    }

    /// A fair coin from party B's local stream (mask bits for OT leaves).
    pub(crate) fn b_coin(&mut self) -> bool {
        self.rng_b.bernoulli(0.5)
    }

    /// Grants a protocol building block access to the dealer and the meter
    /// (e.g. for 1-of-N OT leaves).
    pub(crate) fn with_ot<T>(&mut self, f: impl FnOnce(&mut OtDealer, &mut CommMeter) -> T) -> T {
        f(&mut self.dealer, &mut self.meter)
    }

    /// Test-only accessor used by leakage analyses in this crate's tests:
    /// what party A's view of the shares is.
    #[cfg(test)]
    pub(crate) fn share_a_view(x: SharedBit) -> bool {
        x.share_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_and(seed: u64, x: bool, y: bool) -> bool {
        let mut ctx = TwoParty::new(seed);
        let xs = ctx.share_from_a(x);
        let ys = ctx.share_from_b(y);
        let z = ctx.and(xs, ys);
        ctx.end_layer();
        ctx.reveal(z)
    }

    #[test]
    fn and_gate_truth_table() {
        for seed in 0..50u64 {
            assert!(!eval_and(seed, false, false));
            assert!(!eval_and(seed, false, true));
            assert!(!eval_and(seed, true, false));
            assert!(eval_and(seed, true, true));
        }
    }

    #[test]
    fn and_gate_on_same_party_inputs() {
        // Both inputs shared from A: (a AND a') correctness.
        for seed in 0..20u64 {
            let mut ctx = TwoParty::new(seed);
            let x = ctx.share_from_a(true);
            let y = ctx.share_from_a(true);
            let z = ctx.and(x, y);
            assert!(ctx.reveal(z));
            let w = ctx.share_from_a(false);
            let z2 = ctx.and(x, w);
            assert!(!ctx.reveal(z2));
        }
    }

    #[test]
    fn xor_not_gates_are_free_and_correct() {
        let mut ctx = TwoParty::new(3);
        let x = ctx.share_from_a(true);
        let y = ctx.share_from_b(true);
        let baseline = ctx.meter;
        let z = ctx.xor(x, y);
        let nz = ctx.not(z);
        assert_eq!(ctx.meter, baseline, "xor/not must not communicate");
        assert!(!ctx.reveal(z));
        assert!(ctx.reveal(nz));
    }

    #[test]
    fn constants_behave() {
        let mut ctx = TwoParty::new(4);
        let one = SharedBit::constant(true);
        let x = ctx.share_from_b(true);
        let z = ctx.and(one, x);
        assert!(ctx.reveal(z));
    }

    #[test]
    fn share_messages_are_unbiased_masks() {
        // The masked share a party sends must look like a fair coin
        // regardless of the secret bit — otherwise inputs leak.
        for &secret in &[false, true] {
            let mut ones = 0usize;
            let n = 20_000;
            let mut ctx = TwoParty::new(99);
            for _ in 0..n {
                let s = ctx.share_from_a(secret);
                // B's view is its share (the mask sent over the wire).
                if s.share_b {
                    ones += 1;
                }
            }
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "secret={secret}: {frac}");
        }
    }

    #[test]
    fn party_a_view_of_and_output_is_unbiased() {
        // After an AND, each party's output share alone must be uniform.
        let mut ones = 0usize;
        let n = 10_000;
        let mut ctx = TwoParty::new(123);
        for _ in 0..n {
            let x = ctx.share_from_a(true);
            let y = ctx.share_from_b(true);
            let z = ctx.and(x, y);
            if TwoParty::share_a_view(z) {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "share bias {frac}");
    }

    #[test]
    fn default_session_records_no_transcript() {
        // Regression: the transcript used to grow unconditionally for the
        // life of the session — unbounded memory in long balancing runs.
        let mut ctx = TwoParty::new(6);
        assert!(!ctx.records_transcript());
        let x = ctx.share_from_a(true);
        let y = ctx.share_from_b(false);
        let z = ctx.and(x, y);
        let _ = ctx.reveal(z);
        assert!(
            ctx.transcript().is_empty(),
            "default sessions must not record"
        );
        assert!(ctx.meter.messages > 0, "the meter still counts");
    }

    #[test]
    fn recording_session_behaves_identically() {
        // Same seed, with and without recording: identical protocol outputs
        // and meters — recording is pure bookkeeping.
        let run = |record: bool| {
            let mut ctx = if record {
                TwoParty::with_transcript(9)
            } else {
                TwoParty::new(9)
            };
            let x = ctx.share_from_a(true);
            let y = ctx.share_from_b(true);
            let z = ctx.and(x, y);
            (ctx.reveal(z), ctx.meter, ctx.transcript().len())
        };
        let (out_off, meter_off, len_off) = run(false);
        let (out_on, meter_on, len_on) = run(true);
        assert_eq!(out_off, out_on);
        assert_eq!(meter_off, meter_on);
        assert_eq!(len_off, 0);
        // Shares ×2 + OT choices ×2 + reveal shares ×2.
        assert_eq!(len_on, 6);
    }

    #[test]
    fn communication_costs_match_protocol() {
        let mut ctx = TwoParty::new(5);
        let x = ctx.share_from_a(true); // 1 msg
        let y = ctx.share_from_b(false); // 1 msg
        let z = ctx.and(x, y); // 2 OTs = 4 msgs
        ctx.end_layer(); // 2 rounds
        let _ = ctx.reveal(z); // 2 msgs, 1 round
        assert_eq!(ctx.meter.messages, 8);
        assert_eq!(ctx.meter.rounds, 3);
        assert_eq!(ctx.and_gates, 1);
    }
}
