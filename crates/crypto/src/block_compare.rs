//! Radix-block secure comparison — CrypTFlow2's actual leaf construction.
//!
//! [`crate::compare::secure_compare`] evaluates one AND gate per *bit*.
//! CrypTFlow2 instead splits the inputs into q-bit blocks and resolves each
//! block's greater-than/equality pair with a single 1-out-of-2^q oblivious
//! transfer, then merges blocks with the same `gt/eq` tree. This module
//! implements that variant so the block radix can be ablated (DESIGN.md §5):
//! larger q trades OT payload (2^q entries) against tree depth and AND
//! count.

use crate::circuit::{SharedBit, TwoParty};
use crate::compare::CompareOutcome;
use crate::meter::CommMeter;
use crate::ot::OtDealer;

/// 1-out-of-N oblivious transfer from a dealt random 1-of-N OT.
///
/// The sender holds `messages`; the receiver learns `messages[choice]` and
/// nothing else; the sender learns nothing about `choice`.
pub fn ot_transfer_1_of_n(
    messages: &[u64],
    choice: usize,
    dealer: &mut OtDealer,
    meter: &mut CommMeter,
) -> u64 {
    let n = messages.len();
    assert!(n >= 2, "1-of-N OT needs at least two messages");
    assert!(choice < n, "choice out of range");
    // Offline: dealer hands the sender N pads and the receiver (c, pad_c).
    let (pads, c, pad_c) = dealer.deal_1_of_n(n);

    // Receiver → sender: rotation offset (log2 N bits, ≤ 1 byte here).
    let d = (choice + n - c) % n;
    meter.message(1);
    // Sender → receiver: ciphertexts aligned so slot `choice` uses pad_c.
    let ciphertexts: Vec<u64> = (0..n)
        .map(|j| messages[j] ^ pads[(j + n - d) % n])
        .collect();
    meter.message(8 * n as u64);
    ciphertexts[choice] ^ pad_c
}

/// Secure comparison over radix-2^q blocks.
///
/// Functionally identical to [`crate::compare::secure_compare`]; the leaf
/// layer uses one 1-of-2^q OT per block instead of per-bit AND gates.
///
/// # Panics
/// Panics unless `1 <= radix_bits <= 8` and `bits` is in `1..=64`.
pub fn secure_compare_blocks(
    ctx: &mut TwoParty,
    a_value: u64,
    b_value: u64,
    bits: u32,
    radix_bits: u32,
) -> CompareOutcome {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    assert!(
        (1..=8).contains(&radix_bits),
        "radix must be between 1 and 8 bits"
    );
    if bits < 64 {
        assert!(a_value < (1u64 << bits), "a_value does not fit");
        assert!(b_value < (1u64 << bits), "b_value does not fit");
    }
    let num_blocks = bits.div_ceil(radix_bits);
    let table = 1usize << radix_bits;

    // Leaf layer, MSB-first: one 1-of-2^q OT per block. Party B (sender)
    // tabulates masked (gt, eq) bits for every candidate value of A's block;
    // party A (receiver) selects with its block value.
    let mut level: Vec<(SharedBit, SharedBit)> = Vec::with_capacity(num_blocks as usize);
    for blk in (0..num_blocks).rev() {
        let shift = blk * radix_bits;
        let mask = if radix_bits == 64 {
            u64::MAX
        } else {
            (1u64 << radix_bits) - 1
        };
        let a_blk = (a_value >> shift) & mask;
        let b_blk = (b_value >> shift) & mask;
        // B's masks (its output shares).
        let r_gt = ctx.b_coin();
        let r_eq = ctx.b_coin();
        // Message j encodes (gt, eq) for "A's block == j", XOR-masked.
        let messages: Vec<u64> = (0..table as u64)
            .map(|j| {
                let gt = (j > b_blk) ^ r_gt;
                let eq = (j == b_blk) ^ r_eq;
                (gt as u64) | ((eq as u64) << 1)
            })
            .collect();
        let received = ctx
            .with_ot(|dealer, meter| ot_transfer_1_of_n(&messages, a_blk as usize, dealer, meter));
        let a_gt = received & 1 == 1;
        let a_eq = (received >> 1) & 1 == 1;
        level.push((
            SharedBit::from_shares(a_gt, r_gt),
            SharedBit::from_shares(a_eq, r_eq),
        ));
    }
    ctx.end_layer();

    // Identical merge tree to the bitwise protocol.
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for chunk in level.chunks(2) {
            if chunk.len() == 2 {
                let (gt_hi, eq_hi) = chunk[0];
                let (gt_lo, eq_lo) = chunk[1];
                let carry = ctx.and(eq_hi, gt_lo);
                let gt = ctx.xor(gt_hi, carry);
                let eq = ctx.and(eq_hi, eq_lo);
                next.push((gt, eq));
            } else {
                next.push(chunk[0]);
            }
        }
        ctx.end_layer();
        level = next;
    }
    let (gt, eq) = level[0];
    CompareOutcome {
        a_greater: ctx.reveal(gt),
        equal: ctx.reveal(eq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::secure_compare;
    use lumos_common::rng::Xoshiro256pp;

    #[test]
    fn one_of_n_ot_delivers_choice() {
        let mut dealer = OtDealer::new(3);
        let mut meter = CommMeter::new();
        let msgs: Vec<u64> = (0..16).map(|i| i * 1000 + 7).collect();
        for choice in 0..16 {
            let out = ot_transfer_1_of_n(&msgs, choice, &mut dealer, &mut meter);
            assert_eq!(out, msgs[choice]);
        }
        assert_eq!(meter.messages, 32);
    }

    #[test]
    fn block_compare_matches_plain_for_all_radixes() {
        for radix in [1u32, 2, 4, 8] {
            for (a, b) in [
                (0u64, 0u64),
                (5, 9),
                (9, 5),
                (255, 255),
                (200, 199),
                (1, 256),
            ] {
                let mut ctx = TwoParty::new(a * 131 + b + radix as u64);
                let out = secure_compare_blocks(&mut ctx, a, b, 12, radix);
                assert_eq!(out.ordering(), a.cmp(&b), "radix={radix} a={a} b={b}");
            }
        }
    }

    #[test]
    fn block_compare_random_agreement_with_bitwise() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for _ in 0..100 {
            let a = rng.next_below(1 << 16);
            let b = rng.next_below(1 << 16);
            let mut ctx1 = TwoParty::new(rng.next_u64());
            let mut ctx2 = TwoParty::new(rng.next_u64());
            let bitwise = secure_compare(&mut ctx1, a, b, 16);
            let block = secure_compare_blocks(&mut ctx2, a, b, 16, 4);
            assert_eq!(bitwise.ordering(), block.ordering());
        }
    }

    #[test]
    fn larger_radix_trades_rounds_for_bytes() {
        // q=4 on 32 bits: 8 leaf OTs, ceil(log2 8)=3 merge layers.
        // q=1 on 32 bits: 32 leaf ANDs, 5 merge layers.
        let run = |radix: u32| {
            let mut ctx = TwoParty::new(5);
            let _ = secure_compare_blocks(&mut ctx, 123_456, 654_321, 32, radix);
            (ctx.meter.rounds, ctx.meter.bytes, ctx.and_gates)
        };
        let (rounds_q1, _bytes_q1, ands_q1) = run(1);
        let (rounds_q4, bytes_q4, ands_q4) = run(4);
        assert!(rounds_q4 < rounds_q1, "{rounds_q4} vs {rounds_q1}");
        assert!(ands_q4 < ands_q1, "merge-only ANDs: {ands_q4} vs {ands_q1}");
        // The payload price of the 2^q tables.
        assert!(bytes_q4 > 8 * 16, "tables must dominate: {bytes_q4}");
    }

    #[test]
    fn transcript_shape_is_input_independent() {
        let run = |a: u64, b: u64| {
            let mut ctx = TwoParty::new(42);
            let _ = secure_compare_blocks(&mut ctx, a, b, 16, 4);
            ctx.meter
        };
        assert_eq!(run(0, 0), run(65_535, 0));
        assert_eq!(run(0, 0), run(31_337, 4_242));
    }

    #[test]
    #[should_panic]
    fn radix_zero_rejected() {
        let mut ctx = TwoParty::new(1);
        let _ = secure_compare_blocks(&mut ctx, 1, 2, 8, 0);
    }
}
