//! Simulated 1-out-of-2 oblivious transfer.
//!
//! CrypTFlow2's comparison protocol is built on oblivious transfer (the
//! paper's Theorem 5 cites the OT → zero-knowledge argument). We reproduce
//! the *protocol structure* of OT in the standard OT-hybrid model: a dealer
//! hands out correlated random pads (a "random OT"), and the online phase is
//! Beaver's derandomization — one choice-bit message from the receiver, one
//! two-ciphertext message from the sender. The transcripts a party observes
//! are uniformly random given its own state, which is what the leakage tests
//! check. Public-key realizations of the dealer are out of scope (DESIGN.md
//! substitution #2).

use lumos_common::rng::Xoshiro256pp;

use crate::meter::CommMeter;

/// Pads held by the OT sender after precomputation: two random messages.
// The pads below carry the OT secrets; none derive `Debug` (lumos-lint
// `secret-leak`) so a pad can never be formatted into a log in the clear.
#[derive(Clone, Copy)]
pub struct SenderPad {
    r0: u64,
    r1: u64,
}

/// Pads held by the OT receiver after precomputation: a random choice bit
/// and the pad at that position.
#[derive(Clone, Copy)]
pub struct ReceiverPad {
    c: bool,
    rc: u64,
}

/// Pads held by a *wide* OT receiver: 64 independent choice bits packed in
/// one word, and the per-bit selected pad bits. Lane `j` of a wide OT is a
/// complete 1-out-of-2 bit-OT; the bit-sliced comparison engine uses one
/// wide OT where the scalar circuit would use 64 scalar OTs.
#[derive(Clone, Copy)]
pub struct ReceiverWidePad {
    c: u64,
    rc: u64,
}

/// Dealer for correlated OT randomness (the simulated offline phase).
#[derive(Debug, Clone)]
pub struct OtDealer {
    rng: Xoshiro256pp,
    /// Number of random OTs dealt (offline-phase cost accounting).
    pub dealt: u64,
}

impl OtDealer {
    /// Creates a dealer from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::seed_from_u64(seed),
            dealt: 0,
        }
    }

    /// Deals one random OT: sender gets `(r0, r1)`, receiver gets `(c, r_c)`.
    pub fn deal(&mut self) -> (SenderPad, ReceiverPad) {
        let r0 = self.rng.next_u64();
        let r1 = self.rng.next_u64();
        let c = self.rng.bernoulli(0.5);
        let rc = if c { r1 } else { r0 };
        self.dealt += 1;
        (SenderPad { r0, r1 }, ReceiverPad { c, rc })
    }

    /// Deals one random *wide* OT: 64 bit-OT instances packed into words.
    /// The sender gets two pad words `(r0, r1)`; the receiver gets a choice
    /// word `c` and the per-lane selected pad bits
    /// `rc = (r0 & !c) | (r1 & c)`.
    pub fn deal_wide(&mut self) -> (SenderPad, ReceiverWidePad) {
        let r0 = self.rng.next_u64();
        let r1 = self.rng.next_u64();
        let c = self.rng.next_u64();
        let rc = (r0 & !c) | (r1 & c);
        self.dealt += 1;
        (SenderPad { r0, r1 }, ReceiverWidePad { c, rc })
    }

    /// Deals one random 1-of-N OT: the sender gets `n` pads, the receiver a
    /// random index `c` and the pad at that index.
    pub fn deal_1_of_n(&mut self, n: usize) -> (Vec<u64>, usize, u64) {
        assert!(n >= 2, "1-of-N OT needs N >= 2");
        let pads: Vec<u64> = (0..n).map(|_| self.rng.next_u64()).collect();
        let c = self.rng.index(n);
        let pad_c = pads[c];
        self.dealt += 1;
        (pads, c, pad_c)
    }
}

/// One observed OT transcript (for leakage analysis in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtTranscript {
    /// The receiver's masked choice bit (seen by the sender).
    pub masked_choice: bool,
    /// The sender's two ciphertexts (seen by the receiver).
    pub ciphertexts: [u64; 2],
}

/// Executes one chosen-input 1-out-of-2 OT using a dealt random OT.
///
/// The sender inputs `(m0, m1)`; the receiver inputs `choice` and obtains
/// `m_choice`. Returns the receiver output and the transcript.
pub fn ot_transfer(
    m0: u64,
    m1: u64,
    choice: bool,
    dealer: &mut OtDealer,
    meter: &mut CommMeter,
) -> (u64, OtTranscript) {
    let (s, r) = dealer.deal();
    // Receiver → sender: d = choice XOR c. One bit.
    let d = choice ^ r.c;
    meter.message(1);
    // Sender → receiver: ciphertexts aligned so position `choice` decrypts
    // under the receiver's pad r_c.
    //   e0 = m0 ^ (d ? r1 : r0),  e1 = m1 ^ (d ? r0 : r1)
    let (k0, k1) = if d { (s.r1, s.r0) } else { (s.r0, s.r1) };
    let e0 = m0 ^ k0;
    let e1 = m1 ^ k1;
    meter.message(16);
    // Round accounting is left to the caller: protocols run many OTs in
    // parallel within one synchronization round.
    // Receiver decrypts its choice.
    let out = if choice { e1 ^ r.rc } else { e0 ^ r.rc };
    (
        out,
        OtTranscript {
            masked_choice: d,
            ciphertexts: [e0, e1],
        },
    )
}

/// One observed *wide* OT transcript (for leakage analysis in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideOtTranscript {
    /// The receiver's masked choice word (seen by the sender).
    pub masked_choice: u64,
    /// The sender's two ciphertext words (seen by the receiver).
    pub ciphertexts: [u64; 2],
}

/// Executes 64 chosen-input 1-out-of-2 bit-OTs packed into one word
/// exchange, using a dealt random wide OT.
///
/// Lane `j` (bit `j` of every word) is an independent OT: the sender inputs
/// message bits `(m0_j, m1_j)`, the receiver inputs choice bit `choice_j`
/// and obtains `m_{choice_j}` in bit `j` of the output. The online traffic
/// is one 8-byte masked choice word and one 16-byte ciphertext pair —
/// exactly the message *count* of a single scalar OT, amortized over 64
/// protocol instances.
pub fn ot_transfer_wide(
    m0: u64,
    m1: u64,
    choice: u64,
    dealer: &mut OtDealer,
    meter: &mut CommMeter,
) -> (u64, WideOtTranscript) {
    let (s, r) = dealer.deal_wide();
    // Receiver → sender: d = choice XOR c, lane-wise. One word.
    let d = choice ^ r.c;
    meter.message(8);
    // Sender → receiver: per-lane ciphertexts aligned so the lane's chosen
    // position decrypts under the receiver's pad bit (the bitwise mux of the
    // scalar protocol's `if d { swap }`).
    let k0 = (s.r0 & !d) | (s.r1 & d);
    let k1 = (s.r1 & !d) | (s.r0 & d);
    let e0 = m0 ^ k0;
    let e1 = m1 ^ k1;
    meter.message(16);
    // Round accounting is left to the caller, as for the scalar OT.
    let out = ((e0 & !choice) | (e1 & choice)) ^ r.rc;
    (
        out,
        WideOtTranscript {
            masked_choice: d,
            ciphertexts: [e0, e1],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_gets_chosen_message() {
        let mut dealer = OtDealer::new(42);
        let mut meter = CommMeter::new();
        for i in 0..200u64 {
            let m0 = i.wrapping_mul(0x9E37_79B9);
            let m1 = !m0 ^ i;
            let (out0, _) = ot_transfer(m0, m1, false, &mut dealer, &mut meter);
            let (out1, _) = ot_transfer(m0, m1, true, &mut dealer, &mut meter);
            assert_eq!(out0, m0);
            assert_eq!(out1, m1);
        }
        assert_eq!(dealer.dealt, 400);
        assert_eq!(meter.messages, 800);
        assert_eq!(meter.rounds, 0, "rounds are counted by the caller");
    }

    #[test]
    fn masked_choice_is_unbiased_regardless_of_choice() {
        // The sender's view (masked_choice) must be ~Bernoulli(1/2) whether
        // the receiver picks 0 or 1 — otherwise the choice bit leaks.
        for &choice in &[false, true] {
            let mut dealer = OtDealer::new(7);
            let mut meter = CommMeter::new();
            let n = 20_000;
            let ones = (0..n)
                .filter(|_| {
                    ot_transfer(1, 2, choice, &mut dealer, &mut meter)
                        .1
                        .masked_choice
                })
                .count();
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "choice={choice}: {frac}");
        }
    }

    #[test]
    fn wide_ot_selects_per_lane() {
        // Every lane is an independent OT: bit j of the output must be
        // m0's bit where choice_j = 0 and m1's bit where choice_j = 1.
        let mut dealer = OtDealer::new(13);
        let mut meter = CommMeter::new();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..200 {
            let m0 = rng.next_u64();
            let m1 = rng.next_u64();
            let choice = rng.next_u64();
            let (out, _) = ot_transfer_wide(m0, m1, choice, &mut dealer, &mut meter);
            assert_eq!(out, (m0 & !choice) | (m1 & choice));
        }
        // Two messages per wide OT — the same count a single scalar OT pays.
        assert_eq!(meter.messages, 400);
        assert_eq!(meter.bytes, 200 * 24);
    }

    #[test]
    fn wide_ot_degenerates_to_scalar_semantics_on_lane_zero() {
        let mut dealer = OtDealer::new(21);
        let mut meter = CommMeter::new();
        let (out0, _) = ot_transfer_wide(0, 1, 0, &mut dealer, &mut meter);
        let (out1, _) = ot_transfer_wide(0, 1, 1, &mut dealer, &mut meter);
        assert_eq!(out0 & 1, 0);
        assert_eq!(out1 & 1, 1);
    }

    #[test]
    fn wide_masked_choice_is_unbiased_per_lane() {
        // The sender's view (the masked choice word) must look uniform for
        // any fixed choice word — otherwise lane choices leak.
        for &choice in &[0u64, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA] {
            let mut dealer = OtDealer::new(31);
            let mut meter = CommMeter::new();
            let n = 4_000u32;
            let mut ones = 0u64;
            for _ in 0..n {
                let (_, tr) = ot_transfer_wide(1, 2, choice, &mut dealer, &mut meter);
                ones += tr.masked_choice.count_ones() as u64;
            }
            let frac = ones as f64 / (n as f64 * 64.0);
            assert!((frac - 0.5).abs() < 0.02, "choice={choice:#x}: {frac}");
        }
    }

    #[test]
    fn ciphertexts_do_not_reveal_unchosen_message() {
        // The unchosen ciphertext is masked by a pad the receiver does not
        // hold; across runs with fixed messages its value must be ~uniform.
        let mut dealer = OtDealer::new(11);
        let mut meter = CommMeter::new();
        let mut acc = 0u32;
        let n = 10_000;
        for _ in 0..n {
            let (_, tr) = ot_transfer(0, 0, false, &mut dealer, &mut meter);
            // ciphertext[1] masks the message 0 with an unknown pad: count
            // its low bit; should be fair.
            acc += (tr.ciphertexts[1] & 1) as u32;
        }
        let frac = acc as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "low-bit frequency {frac}");
    }
}
