//! Bit-sliced 64-lane secure comparison engine.
//!
//! [`crate::compare::secure_compare`] evaluates one comparator circuit per
//! call: every AND gate spends two oblivious transfers whose `u64` payloads
//! carry a single bit. But the tree constructor's comparisons come in large
//! *independent* sweeps — Algorithm 3 compares every edge of the graph per
//! phase, Algorithm 1 every edge once — and the CrypTFlow2-style circuit is
//! data-parallel across those sweeps by construction.
//!
//! This module packs up to [`LANES`] = 64 independent comparisons into the
//! bit positions of a `u64` word: a [`SharedWord`] is 64 XOR-shared bits,
//! one per lane, and one Gilboa AND — two OTs, exactly as many *messages*
//! as the scalar circuit's AND — evaluates the gate for all 64 comparators
//! at once ([`crate::ot::ot_transfer_wide`]). The leaf + balanced-merge
//! tree is identical to the scalar circuit, so a word evaluates the same
//! logical circuit 64 times for the wire traffic of once.
//!
//! Batches larger than one word are split word-by-word; each word runs in
//! its own [`SlicedTwoParty`] session with a seed derived from the word
//! index, and [`secure_compare_batch`] spreads the words across OS threads
//! (`std::thread::scope`, the workspace's established parallelism idiom).
//! Results, meters, and gate counts are folded back in word order, so the
//! outcome is bit-identical however many threads the host machine offers.

use lumos_common::rng::{SplitMix64, Xoshiro256pp};

use crate::compare::CompareOutcome;
use crate::meter::CommMeter;
use crate::ot::{ot_transfer_wide, OtDealer};

/// Comparison lanes per word: the bit width of the share words.
pub const LANES: usize = 64;

/// 64 XOR-shared secret bits, one comparison lane per bit position: lane
/// `j`'s value is bit `j` of `share_a ^ share_b`.
// No `Debug`: a formatted share word leaks 64 lanes at once (lumos-lint
// `secret-leak`); reveal goes through the session, as in the scalar circuit.
#[derive(Clone, Copy)]
pub struct SharedWord {
    share_a: u64,
    share_b: u64,
}

/// Execution context for a bit-sliced two-party session: the 64-lane
/// counterpart of [`crate::circuit::TwoParty`], with the same seed
/// discipline (forked party streams, dealer from the root stream) and the
/// same opt-in transcript recording.
#[derive(Debug)]
pub struct SlicedTwoParty {
    dealer: OtDealer,
    rng_a: Xoshiro256pp,
    rng_b: Xoshiro256pp,
    /// Communication tallies for the whole session.
    pub meter: CommMeter,
    /// Wire words, recorded only on the [`SlicedTwoParty::with_transcript`]
    /// path (leakage tests).
    transcript: Option<Vec<u64>>,
    /// Number of *word* AND gates evaluated (each covers up to 64 lanes).
    pub and_gates: u64,
}

impl SlicedTwoParty {
    /// Creates a session; wire words are not recorded.
    pub fn new(seed: u64) -> Self {
        Self::build(seed, false)
    }

    /// Creates a session that records every wire word for leakage tests.
    pub fn with_transcript(seed: u64) -> Self {
        Self::build(seed, true)
    }

    fn build(seed: u64, record: bool) -> Self {
        let mut root = Xoshiro256pp::seed_from_u64(seed);
        let rng_a = root.fork();
        let rng_b = root.fork();
        Self {
            dealer: OtDealer::new(root.next_u64()),
            rng_a,
            rng_b,
            meter: CommMeter::new(),
            transcript: record.then(Vec::new),
            and_gates: 0,
        }
    }

    /// The recorded wire words (empty unless created with
    /// [`SlicedTwoParty::with_transcript`]).
    pub fn transcript(&self) -> &[u64] {
        self.transcript.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, word: u64) {
        if let Some(t) = &mut self.transcript {
            t.push(word);
        }
    }

    /// Party A secret-shares an input word (one 8-byte masked word to B).
    pub fn share_from_a(&mut self, word: u64) -> SharedWord {
        let mask = self.rng_a.next_u64();
        self.meter.message(8);
        self.record(mask);
        SharedWord {
            share_a: word ^ mask,
            share_b: mask,
        }
    }

    /// Party B secret-shares an input word (one 8-byte masked word to A).
    pub fn share_from_b(&mut self, word: u64) -> SharedWord {
        let mask = self.rng_b.next_u64();
        self.meter.message(8);
        self.record(mask);
        SharedWord {
            share_a: mask,
            share_b: word ^ mask,
        }
    }

    /// Lane-wise XOR gate (free: local on both parties).
    pub fn xor(&self, x: SharedWord, y: SharedWord) -> SharedWord {
        SharedWord {
            share_a: x.share_a ^ y.share_a,
            share_b: x.share_b ^ y.share_b,
        }
    }

    /// Lane-wise NOT gate (free: party A flips its share word).
    pub fn not(&self, x: SharedWord) -> SharedWord {
        SharedWord {
            share_a: !x.share_a,
            share_b: x.share_b,
        }
    }

    /// Lane-wise AND gate via two wide oblivious transfers (Gilboa): the
    /// cross terms `x_a & y_b` and `x_b & y_a` are computed by one wide OT
    /// each — 64 comparator circuits advance one gate for two OTs' worth of
    /// traffic, where the scalar engine would pay 128 OTs.
    pub fn and(&mut self, x: SharedWord, y: SharedWord) -> SharedWord {
        self.and_gates += 1;
        // Wide OT 1: B offers (s_b, s_b ^ y_b) lane-wise; A chooses with x_a.
        let s_b = self.rng_b.next_u64();
        let (q_a, tr1) = ot_transfer_wide(
            s_b,
            s_b ^ y.share_b,
            x.share_a,
            &mut self.dealer,
            &mut self.meter,
        );
        // Wide OT 2: A offers (s_a, s_a ^ y_a) lane-wise; B chooses with x_b.
        let s_a = self.rng_a.next_u64();
        let (q_b, tr2) = ot_transfer_wide(
            s_a,
            s_a ^ y.share_a,
            x.share_b,
            &mut self.dealer,
            &mut self.meter,
        );
        self.record(tr1.masked_choice);
        self.record(tr2.masked_choice);
        SharedWord {
            share_a: (x.share_a & y.share_a) ^ q_a ^ s_a,
            share_b: (x.share_b & y.share_b) ^ q_b ^ s_b,
        }
    }

    /// Marks the end of a parallel layer of word gates (two rounds, as in
    /// the scalar session).
    pub fn end_layer(&mut self) {
        self.meter.round();
        self.meter.round();
    }

    /// Opens a shared word to both parties (two 8-byte share messages, one
    /// round).
    pub fn reveal(&mut self, x: SharedWord) -> u64 {
        self.meter.message(8);
        self.meter.message(8);
        self.meter.round();
        self.record(x.share_a);
        self.record(x.share_b);
        x.share_a ^ x.share_b
    }
}

/// Securely compares up to [`LANES`] independent `(a, b)` pairs in one
/// bit-sliced circuit evaluation over `bits`-bit unsigned representations.
///
/// Runs the same MSB-first leaf + balanced-merge tree as
/// [`crate::compare::secure_compare`], with every [`SharedBit`] replaced by
/// a [`SharedWord`] whose lane `j` carries pair `j`. Unused lanes of a
/// partial word evaluate the constant pair `(0, 0)`; their wire words are
/// masked exactly like active lanes, so the transcript shape depends only
/// on `bits` — never on the lane count or the values.
///
/// [`SharedBit`]: crate::circuit::SharedBit
///
/// # Panics
/// Panics if `bits` is not in `1..=64`, `pairs` is empty or longer than
/// [`LANES`], or any value does not fit in `bits` bits.
pub fn sliced_compare_word(
    ctx: &mut SlicedTwoParty,
    pairs: &[(u64, u64)],
    bits: u32,
) -> Vec<CompareOutcome> {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    assert!(
        !pairs.is_empty() && pairs.len() <= LANES,
        "a word holds 1..={LANES} lanes, got {}",
        pairs.len()
    );
    if bits < 64 {
        for &(a, b) in pairs {
            assert!(a < (1 << bits), "a_value {a} does not fit in {bits} bits");
            assert!(b < (1 << bits), "b_value {b} does not fit in {bits} bits");
        }
    }

    // Input sharing: MSB-first bit decomposition, lane-packed per position.
    let mut leaves: Vec<(SharedWord, SharedWord)> = Vec::with_capacity(bits as usize);
    for i in (0..bits).rev() {
        let mut a_word = 0u64;
        let mut b_word = 0u64;
        for (j, &(a, b)) in pairs.iter().enumerate() {
            a_word |= ((a >> i) & 1) << j;
            b_word |= ((b >> i) & 1) << j;
        }
        let a_s = ctx.share_from_a(a_word);
        let b_s = ctx.share_from_b(b_word);
        // Lane-wise gt_i = a_i AND (NOT b_i); eq_i = NOT (a_i XOR b_i).
        let not_b = ctx.not(b_s);
        let gt = ctx.and(a_s, not_b);
        let xor = ctx.xor(a_s, b_s);
        let eq = ctx.not(xor);
        leaves.push((gt, eq));
    }
    ctx.end_layer(); // all leaf ANDs run in parallel

    // Balanced-tree merge, MSB-first — the scalar circuit verbatim, one
    // word per node instead of one bit.
    let mut level = leaves;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for chunk in level.chunks(2) {
            if chunk.len() == 2 {
                let (gt_hi, eq_hi) = chunk[0];
                let (gt_lo, eq_lo) = chunk[1];
                let carry = ctx.and(eq_hi, gt_lo);
                let gt = ctx.xor(gt_hi, carry);
                let eq = ctx.and(eq_hi, eq_lo);
                next.push((gt, eq));
            } else {
                next.push(chunk[0]);
            }
        }
        ctx.end_layer(); // merges within a level are parallel
        level = next;
    }

    let (gt, eq) = level[0];
    let gt_word = ctx.reveal(gt);
    let eq_word = ctx.reveal(eq);
    (0..pairs.len())
        .map(|j| CompareOutcome {
            a_greater: (gt_word >> j) & 1 == 1,
            equal: (eq_word >> j) & 1 == 1,
        })
        .collect()
}

/// Result of a batched comparison sweep.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// Per-pair outcomes, in input order.
    pub outcomes: Vec<CompareOutcome>,
    /// Communication across all word sessions.
    pub meter: CommMeter,
    /// Word AND gates evaluated (each covering up to 64 lanes).
    pub and_gates: u64,
    /// Number of 64-lane words the batch was packed into.
    pub words: usize,
}

/// Session seed for word `w` of a batch, keyed by word index so the word
/// order — not the thread schedule — decides every session's stream.
///
/// The word index goes through a full SplitMix64 mix rather than the
/// oracle layer's `seed ^ counter·K` discipline: composing two XOR layers
/// with the same odd constant is not injective across (batch, word) pairs
/// (`c=1, w=2` cancels against `c=3, w=0`), and colliding session seeds
/// would reuse dealer pads across sweeps — letting an observer XOR two
/// transcripts and cancel the masks off secret-dependent share words.
fn word_seed(seed: u64, w: usize) -> u64 {
    SplitMix64::new(seed.wrapping_add(w as u64)).next_u64()
}

fn run_word(seed: u64, w: usize, lanes: &[(u64, u64)], bits: u32) -> WordResult {
    let mut ctx = SlicedTwoParty::new(word_seed(seed, w));
    let outcomes = sliced_compare_word(&mut ctx, lanes, bits);
    (outcomes, ctx.meter, ctx.and_gates)
}

type WordResult = (Vec<CompareOutcome>, CommMeter, u64);

/// Below this many words a batch runs on the calling thread: spawning
/// costs more than the few words' circuit work it would spread (the
/// sequential and threaded paths are bit-identical by construction).
const MIN_WORDS_TO_SPAWN: usize = 8;

/// Securely compares any number of independent `(a, b)` pairs over
/// `bits`-bit representations, 64 lanes per word, words spread across OS
/// threads. Deterministic in `seed` regardless of thread count; an empty
/// batch returns an empty result.
///
/// # Panics
/// Panics if `bits` is not in `1..=64` or any value does not fit.
pub fn secure_compare_batch(seed: u64, pairs: &[(u64, u64)], bits: u32) -> BatchComparison {
    let words: Vec<&[(u64, u64)]> = pairs.chunks(LANES).collect();
    let mut slots: Vec<Option<WordResult>> = vec![None; words.len()];
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(words.len())
        .max(1);
    if threads <= 1 || words.len() < MIN_WORDS_TO_SPAWN {
        for (w, (slot, lanes)) in slots.iter_mut().zip(&words).enumerate() {
            *slot = Some(run_word(seed, w, lanes, bits));
        }
    } else {
        let per = words.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, (slot_chunk, lane_chunk)) in
                slots.chunks_mut(per).zip(words.chunks(per)).enumerate()
            {
                scope.spawn(move || {
                    for (i, (slot, lanes)) in slot_chunk.iter_mut().zip(lane_chunk).enumerate() {
                        *slot = Some(run_word(seed, t * per + i, lanes, bits));
                    }
                });
            }
        });
    }

    let mut out = BatchComparison {
        outcomes: Vec::with_capacity(pairs.len()),
        meter: CommMeter::new(),
        and_gates: 0,
        words: words.len(),
    };
    for slot in slots {
        let (outcomes, meter, ands) = slot.expect("every word evaluated");
        out.outcomes.extend(outcomes);
        out.meter.merge(&meter);
        out.and_gates += ands;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::TwoParty;
    use crate::compare::secure_compare;

    #[test]
    fn single_lane_truth_tables() {
        for seed in 0..30u64 {
            for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (5, 9), (9, 5), (7, 7)] {
                let mut ctx = SlicedTwoParty::new(seed);
                let out = sliced_compare_word(&mut ctx, &[(a, b)], 4);
                assert_eq!(out[0].ordering(), a.cmp(&b), "seed={seed} a={a} b={b}");
            }
        }
    }

    #[test]
    fn full_word_matches_plain_ordering() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let pairs: Vec<(u64, u64)> = (0..64)
            .map(|_| (rng.next_below(1 << 20), rng.next_below(1 << 20)))
            .collect();
        let mut ctx = SlicedTwoParty::new(3);
        let out = sliced_compare_word(&mut ctx, &pairs, 20);
        for (j, (&(a, b), o)) in pairs.iter().zip(&out).enumerate() {
            assert_eq!(o.ordering(), a.cmp(&b), "lane {j}");
        }
    }

    #[test]
    fn word_gate_count_matches_the_scalar_circuit() {
        // Same logical circuit: bits leaf ANDs + 2·(bits − 1) merge ANDs —
        // but counted in words, covering up to 64 lanes each.
        for bits in [1u32, 2, 5, 16, 48, 64] {
            let mut ctx = SlicedTwoParty::new(7);
            let _ = sliced_compare_word(&mut ctx, &[(0, 0)], bits);
            assert_eq!(ctx.and_gates, (3 * bits - 2) as u64, "bits={bits}");
        }
    }

    #[test]
    fn full_word_pays_64x_fewer_messages_than_scalar() {
        let pairs: Vec<(u64, u64)> = (0..64).map(|j| (j, 63 - j)).collect();
        let batch = secure_compare_batch(5, &pairs, 16);
        let mut scalar = CommMeter::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let mut ctx = TwoParty::new(i as u64);
            let _ = secure_compare(&mut ctx, a, b, 16);
            scalar.merge(&ctx.meter);
        }
        assert_eq!(batch.words, 1);
        assert_eq!(
            scalar.messages,
            64 * batch.meter.messages,
            "64 lanes must share one word's messages"
        );
        assert!(scalar.bytes > 40 * batch.meter.bytes);
        assert_eq!(scalar.rounds, 64 * batch.meter.rounds);
    }

    #[test]
    fn batch_splits_into_words_and_keeps_order() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let pairs: Vec<(u64, u64)> = (0..150)
            .map(|_| (rng.next_below(1 << 12), rng.next_below(1 << 12)))
            .collect();
        let batch = secure_compare_batch(9, &pairs, 12);
        assert_eq!(batch.words, 3);
        assert_eq!(batch.outcomes.len(), 150);
        for (j, (&(a, b), o)) in pairs.iter().zip(&batch.outcomes).enumerate() {
            assert_eq!(o.ordering(), a.cmp(&b), "pair {j}");
        }
        // Three words, identical per-word cost: partial words price like
        // full ones (the transcript must not reveal the lane count).
        let one = secure_compare_batch(9, &pairs[..1], 12);
        assert_eq!(batch.meter, one.meter.times(3));
        assert_eq!(batch.and_gates, 3 * one.and_gates);
    }

    #[test]
    fn word_seeds_do_not_collide_across_oracle_sessions() {
        // Regression: `seed ^ (w+1)·K` composed with the oracle layer's
        // per-batch `seed ^ c·K` (same odd K) cancelled by XOR — batch
        // c=1/word w=2 and batch c=3/word w=0 shared a session seed, hence
        // dealer pads. The SplitMix64 mix must keep every (batch, word)
        // session distinct.
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        let oracle_seed = 42u64;
        let mut seen = std::collections::BTreeSet::new();
        for c in 1..=64u64 {
            let batch_seed = oracle_seed ^ c.wrapping_mul(K);
            for w in 0..64usize {
                assert!(
                    seen.insert(word_seed(batch_seed, w)),
                    "session-seed collision at batch {c}, word {w}"
                );
            }
        }
    }

    #[test]
    fn large_batches_match_the_sequential_path() {
        // The threaded path (≥ MIN_WORDS_TO_SPAWN words on multicore hosts)
        // must agree with the word-order semantics whatever the host: pin
        // it against a lane-by-lane scalar recomputation.
        let pairs: Vec<(u64, u64)> = (0..(MIN_WORDS_TO_SPAWN as u64 + 2) * 64)
            .map(|j| (j % 251, j % 127))
            .collect();
        let batch = secure_compare_batch(13, &pairs, 8);
        assert!(batch.words >= MIN_WORDS_TO_SPAWN);
        for (j, (&(a, b), o)) in pairs.iter().zip(&batch.outcomes).enumerate() {
            assert_eq!(o.ordering(), a.cmp(&b), "lane {j}");
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let batch = secure_compare_batch(1, &[], 16);
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.words, 0);
        assert_eq!(batch.meter, CommMeter::new());
    }

    #[test]
    fn batch_is_deterministic_in_seed() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|j| (j % 37, j % 11)).collect();
        let a = secure_compare_batch(42, &pairs, 8);
        let b = secure_compare_batch(42, &pairs, 8);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.meter, b.meter);
    }

    #[test]
    fn default_session_records_no_transcript() {
        let mut ctx = SlicedTwoParty::new(2);
        let _ = sliced_compare_word(&mut ctx, &[(3, 4), (9, 9)], 8);
        assert!(ctx.transcript().is_empty());
        assert!(ctx.meter.messages > 0);
    }

    #[test]
    fn transcript_words_are_unbiased_across_sessions() {
        // With fresh session randomness every wire word must look uniform,
        // whatever the lane values — the bit-sliced leakage contract.
        for &(a, b) in &[(0u64, 1023u64), (1023, 0), (512, 512)] {
            let mut ones = 0u64;
            let mut total = 0u64;
            for seed in 0..150u64 {
                let mut ctx = SlicedTwoParty::with_transcript(seed);
                let _ = sliced_compare_word(&mut ctx, &[(a, b); 64], 10);
                ones += ctx
                    .transcript()
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum::<u64>();
                total += ctx.transcript().len() as u64 * 64;
            }
            let frac = ones as f64 / total as f64;
            assert!(
                (frac - 0.5).abs() < 0.05,
                "wire bias {frac} for inputs ({a},{b})"
            );
        }
    }

    impl CompareOutcome {
        fn key(self) -> (bool, bool) {
            (self.a_greater, self.equal)
        }
    }

    #[test]
    fn outcome_flags_match_scalar_not_just_ordering() {
        // gt/eq flags — not only the derived Ordering — must agree with the
        // scalar circuit (eq drives candidate ties in Algorithm 3).
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let pairs: Vec<(u64, u64)> = (0..100)
            .map(|i| {
                if i % 5 == 0 {
                    let v = rng.next_below(1 << 16);
                    (v, v)
                } else {
                    (rng.next_below(1 << 16), rng.next_below(1 << 16))
                }
            })
            .collect();
        let batch = secure_compare_batch(77, &pairs, 16);
        for (i, (&(a, b), o)) in pairs.iter().zip(&batch.outcomes).enumerate() {
            let mut ctx = TwoParty::new(1000 + i as u64);
            let scalar = secure_compare(&mut ctx, a, b, 16);
            assert_eq!(o.key(), scalar.key(), "pair {i}");
        }
    }
}
