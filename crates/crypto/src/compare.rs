//! Secure two-party integer comparison (the millionaires' problem).
//!
//! This is the workhorse of the tree constructor: Algorithm 1 compares
//! `round(ln deg)` values across an edge, and Algorithm 3 compares workloads
//! to locate the most-loaded device — all without revealing the operands
//! (Definition 2's zero-knowledge requirement; Theorem 5).
//!
//! The circuit follows CrypTFlow2's recursive structure: per-bit
//! greater-than/equality signals are combined by a balanced tree of
//! `gt = gt_hi ⊕ (eq_hi ∧ gt_lo)`, `eq = eq_hi ∧ eq_lo` merges, giving
//! `O(L)` AND gates in `O(log L)` rounds (the `O(L log L)` communication
//! bound quoted in §V-C). We evaluate at radix 1 (one bit per leaf);
//! CrypTFlow2's larger-radix leaves are a constant-factor optimization.

use std::cmp::Ordering;

use crate::circuit::{SharedBit, TwoParty};

/// Outcome of a secure comparison, revealed to both parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareOutcome {
    /// Whether party A's value is strictly greater.
    pub a_greater: bool,
    /// Whether the two values are equal.
    pub equal: bool,
}

impl CompareOutcome {
    /// Converts to an [`Ordering`] from party A's perspective.
    pub fn ordering(self) -> Ordering {
        if self.equal {
            Ordering::Equal
        } else if self.a_greater {
            Ordering::Greater
        } else {
            Ordering::Less
        }
    }
}

/// Securely compares `a_value` (party A's secret) with `b_value` (party
/// B's secret) over `bits`-bit unsigned representations.
///
/// Both parties learn only the comparison outcome.
///
/// # Panics
/// Panics if `bits` is 0 or exceeds 64, or if either value does not fit.
pub fn secure_compare(ctx: &mut TwoParty, a_value: u64, b_value: u64, bits: u32) -> CompareOutcome {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    if bits < 64 {
        assert!(a_value < (1 << bits), "a_value does not fit in {bits} bits");
        assert!(b_value < (1 << bits), "b_value does not fit in {bits} bits");
    }

    // Input sharing: MSB-first bit decomposition.
    let mut leaves: Vec<(SharedBit, SharedBit)> = Vec::with_capacity(bits as usize);
    for i in (0..bits).rev() {
        let a_bit = (a_value >> i) & 1 == 1;
        let b_bit = (b_value >> i) & 1 == 1;
        let a_s = ctx.share_from_a(a_bit);
        let b_s = ctx.share_from_b(b_bit);
        // gt_i = a_i AND (NOT b_i); eq_i = NOT (a_i XOR b_i)
        let not_b = ctx.not(b_s);
        let gt = ctx.and(a_s, not_b);
        let xor = ctx.xor(a_s, b_s);
        let eq = ctx.not(xor);
        leaves.push((gt, eq));
    }
    ctx.end_layer(); // all leaf ANDs run in parallel

    // Balanced-tree merge, MSB-first: for adjacent blocks (hi, lo):
    //   gt = gt_hi ⊕ (eq_hi ∧ gt_lo)
    //   eq = eq_hi ∧ eq_lo
    let mut level = leaves;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for chunk in &mut it {
            if chunk.len() == 2 {
                let (gt_hi, eq_hi) = chunk[0];
                let (gt_lo, eq_lo) = chunk[1];
                let carry = ctx.and(eq_hi, gt_lo);
                let gt = ctx.xor(gt_hi, carry);
                let eq = ctx.and(eq_hi, eq_lo);
                next.push((gt, eq));
            } else {
                next.push(chunk[0]);
            }
        }
        ctx.end_layer(); // merges within a level are parallel
        level = next;
    }

    let (gt, eq) = level[0];
    let a_greater = ctx.reveal(gt);
    let equal = ctx.reveal(eq);
    CompareOutcome { a_greater, equal }
}

/// Securely reveals the signed difference `a_value - b_value` to both
/// parties (used in Algorithm 2, line 7, to evaluate the Metropolis
/// acceptance probability `e^{f(X_t) - f(X'_t)}`).
///
/// Protocol: B masks its value with a fresh random `r` and sends `b + r`;
/// A replies with `a - (b + r)`; B unmasks by adding `r` and sends the
/// difference back. Each party's incoming messages are uniformly masked;
/// the only new information either side learns is the difference itself
/// (from which the other's value follows — that is the agreed output of the
/// functionality, exactly as in the paper's protocol).
pub fn secure_difference(ctx: &mut TwoParty, a_value: i64, b_value: i64) -> i64 {
    // B → A: masked value.
    let r = fresh_mask(ctx);
    let masked_b = b_value.wrapping_add(r);
    ctx.meter.message(8);
    ctx.meter.round();
    // A → B: a - (b + r).
    let masked_diff = a_value.wrapping_sub(masked_b);
    ctx.meter.message(8);
    ctx.meter.round();
    // B unmasks and broadcasts the difference.
    let diff = masked_diff.wrapping_add(r);
    ctx.meter.message(8);
    ctx.meter.round();
    diff
}

fn fresh_mask(ctx: &mut TwoParty) -> i64 {
    // Use the shared-session transcript RNG discipline: B's local stream.
    // (Exposed via a tiny helper to keep rng fields private.)
    ctx.b_random_i64()
}

impl TwoParty {
    /// Draws a random `i64` from party B's local stream (masking material).
    pub(crate) fn b_random_i64(&mut self) -> i64 {
        self.b_rng_next() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_common::rng::Xoshiro256pp;

    #[test]
    fn compare_matches_plain_ordering_exhaustive_small() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut ctx = TwoParty::new(a * 31 + b);
                let out = secure_compare(&mut ctx, a, b, 4);
                assert_eq!(out.ordering(), a.cmp(&b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn compare_random_wide_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..200 {
            let a = rng.next_below(1 << 20);
            let b = rng.next_below(1 << 20);
            let mut ctx = TwoParty::new(rng.next_u64());
            let out = secure_compare(&mut ctx, a, b, 20);
            assert_eq!(out.ordering(), a.cmp(&b));
        }
    }

    #[test]
    fn compare_full_64_bits() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..50 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let mut ctx = TwoParty::new(rng.next_u64());
            let out = secure_compare(&mut ctx, a, b, 64);
            assert_eq!(out.ordering(), a.cmp(&b));
        }
    }

    #[test]
    fn and_gate_count_is_linear_with_log_depth_rounds() {
        let bits = 32u32;
        let mut ctx = TwoParty::new(9);
        let _ = secure_compare(&mut ctx, 123456, 654321, bits);
        // Leaves: `bits` ANDs. Merges: 2 ANDs per internal node of a
        // balanced binary tree with `bits` leaves = 2*(bits-1).
        assert_eq!(ctx.and_gates, (bits + 2 * (bits - 1)) as u64);
        // Rounds: 2 per layer (leaf layer + ceil(log2 bits) merge layers)
        // + 2 reveals.
        let layers = 1 + (bits as f64).log2().ceil() as u64;
        assert_eq!(ctx.meter.rounds, 2 * layers + 2);
    }

    #[test]
    fn difference_is_exact_for_random_pairs() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..300 {
            let a = (rng.next_u64() % 100_000) as i64 - 50_000;
            let b = (rng.next_u64() % 100_000) as i64 - 50_000;
            let mut ctx = TwoParty::new(rng.next_u64());
            assert_eq!(secure_difference(&mut ctx, a, b), a - b);
        }
    }

    #[test]
    fn difference_counts_three_messages() {
        let mut ctx = TwoParty::new(4);
        let _ = secure_difference(&mut ctx, 10, 3);
        assert_eq!(ctx.meter.messages, 3);
        assert_eq!(ctx.meter.rounds, 3);
        assert_eq!(ctx.meter.bytes, 24);
    }

    #[test]
    fn transcript_length_is_input_independent() {
        // Zero-knowledge sanity: the protocol's communication pattern must
        // not depend on the secret values (only on the bit width).
        let run = |a: u64, b: u64| {
            let mut ctx = TwoParty::with_transcript(42);
            let _ = secure_compare(&mut ctx, a, b, 16);
            (ctx.meter, ctx.transcript().len())
        };
        let (m1, t1) = run(0, 0);
        let (m2, t2) = run(65_535, 0);
        let (m3, t3) = run(12_345, 54_321);
        assert_eq!(m1, m2);
        assert_eq!(m2, m3);
        assert_eq!(t1, t2);
        assert_eq!(t2, t3);
    }

    #[test]
    fn transcript_bits_are_unbiased_across_sessions() {
        // With fresh session randomness, every wire bit should be close to
        // a fair coin regardless of the inputs being compared.
        for &(a, b) in &[(0u64, 1023u64), (1023, 0), (512, 512)] {
            let mut ones = 0usize;
            let mut total = 0usize;
            for seed in 0..300u64 {
                let mut ctx = TwoParty::with_transcript(seed);
                let _ = secure_compare(&mut ctx, a, b, 10);
                ones += ctx.transcript().iter().filter(|&&x| x).count();
                total += ctx.transcript().len();
            }
            let frac = ones as f64 / total as f64;
            assert!(
                (frac - 0.5).abs() < 0.05,
                "wire bias {frac} for inputs ({a},{b})"
            );
        }
    }
}
