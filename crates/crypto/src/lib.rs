//! `lumos-crypto` — simulated two-party cryptography for degree protection.
//!
//! The paper protects node degrees behind a zero-knowledge-style secure
//! integer comparison (CrypTFlow2, its refs [34]/[40]/[41]): during tree
//! trimming only comparison *outcomes* are ever revealed (Definition 2,
//! Theorem 5). This crate reproduces the protocol structure — oblivious
//! transfer, XOR-shared boolean circuits with OT-based AND gates, and the
//! bit-tree comparison — with exact message/round accounting, while
//! simulating the offline correlated randomness with a dealer (DESIGN.md
//! substitution #2).

#![forbid(unsafe_code)]
pub mod block_compare;
pub mod circuit;
pub mod compare;
pub mod meter;
pub mod ot;
pub mod slice;

pub use block_compare::{ot_transfer_1_of_n, secure_compare_blocks};
pub use circuit::{SharedBit, TwoParty};
pub use compare::{secure_compare, secure_difference, CompareOutcome};
pub use meter::CommMeter;
pub use ot::{ot_transfer, ot_transfer_wide, OtDealer, OtTranscript, WideOtTranscript};
pub use slice::{
    secure_compare_batch, sliced_compare_word, BatchComparison, SharedWord, SlicedTwoParty, LANES,
};
