//! Communication accounting for two-party protocols.
//!
//! The paper quantifies its tree constructor by the secure-comparison
//! traffic it induces (§V-C time complexity, Figure 8a communication
//! rounds). Every protocol in this crate records its messages, bytes and
//! synchronization rounds on a [`CommMeter`].

/// Tallies of protocol communication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommMeter {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Total payload bytes across all messages.
    pub bytes: u64,
    /// Synchronization rounds (message exchanges that must complete before
    /// the next step; parallel messages in one step count as one round).
    pub rounds: u64,
}

impl CommMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `bytes` payload bytes.
    pub fn message(&mut self, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Records a synchronization round.
    pub fn round(&mut self) {
        self.rounds += 1;
    }

    /// Adds another meter's tallies into this one.
    pub fn merge(&mut self, other: &CommMeter) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.rounds += other.rounds;
    }

    /// This meter scaled `n`-fold — the cost of `n` identical protocol
    /// instances run side by side (e.g. the per-word cost model of a
    /// batched comparison sweep).
    pub fn times(&self, n: u64) -> CommMeter {
        CommMeter {
            messages: self.messages * n,
            bytes: self.bytes * n,
            rounds: self.rounds * n,
        }
    }

    /// Difference against an earlier snapshot (for per-phase accounting).
    pub fn since(&self, snapshot: &CommMeter) -> CommMeter {
        CommMeter {
            messages: self.messages - snapshot.messages,
            bytes: self.bytes - snapshot.bytes,
            rounds: self.rounds - snapshot.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_and_round_accounting() {
        let mut m = CommMeter::new();
        m.message(16);
        m.message(4);
        m.round();
        assert_eq!(m.messages, 2);
        assert_eq!(m.bytes, 20);
        assert_eq!(m.rounds, 1);
    }

    #[test]
    fn times_scales_all_tallies() {
        let mut m = CommMeter::new();
        m.message(10);
        m.round();
        let tripled = m.times(3);
        assert_eq!(tripled.messages, 3);
        assert_eq!(tripled.bytes, 30);
        assert_eq!(tripled.rounds, 3);
        assert_eq!(m.times(0), CommMeter::new());
    }

    #[test]
    fn merge_and_since() {
        let mut a = CommMeter::new();
        a.message(10);
        let snapshot = a;
        a.message(5);
        a.round();
        let delta = a.since(&snapshot);
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.bytes, 5);
        assert_eq!(delta.rounds, 1);
        let mut b = CommMeter::new();
        b.merge(&a);
        assert_eq!(b, a);
    }
}
