//! Property suite for the bit-sliced 64-lane comparison engine.
//!
//! Three contracts keep the batched backend interchangeable with the
//! scalar circuit:
//!
//! 1. **Lane-for-lane agreement** — for random lane counts (1..=200) and
//!    bit widths (1..=64), every lane's `(a_greater, equal)` outcome equals
//!    the scalar circuit's on the same pair.
//! 2. **Input-independent transcript shape** — the wire pattern (meter and
//!    recorded word count) of a word depends only on the bit width, never
//!    on the values or on how many lanes are active.
//! 3. **Partial-word handling** — a trailing word with fewer than 64 lanes
//!    evaluates, prices, and reveals exactly like a full word.

use proptest::prelude::*;

use lumos_common::rng::Xoshiro256pp;
use lumos_crypto::{
    secure_compare, secure_compare_batch, sliced_compare_word, SlicedTwoParty, TwoParty, LANES,
};

/// Seeded random pairs fitting in `bits` bits.
fn random_pairs(seed: u64, lanes: usize, bits: u32) -> Vec<(u64, u64)> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (0..lanes)
        .map(|i| {
            // Mix in forced ties and asymmetric pairs so eq lanes are hit.
            if i % 7 == 0 {
                let v = rng.next_u64() & mask;
                (v, v)
            } else {
                (rng.next_u64() & mask, rng.next_u64() & mask)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Bit-sliced outcomes equal scalar outcomes lane for lane, for random
    /// lane counts × widths, including multi-word batches with partial
    /// final words.
    #[test]
    fn bitsliced_agrees_with_scalar_lane_for_lane(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let lanes = 1 + rng.index(200);
        let bits = 1 + rng.index(64) as u32;
        let pairs = random_pairs(seed ^ 0xA5A5, lanes, bits);
        let batch = secure_compare_batch(seed ^ 0x5A5A, &pairs, bits);
        prop_assert_eq!(batch.outcomes.len(), lanes);
        prop_assert_eq!(batch.words, lanes.div_ceil(LANES));
        for (j, (&(a, b), out)) in pairs.iter().zip(&batch.outcomes).enumerate() {
            let mut ctx = TwoParty::new(seed.wrapping_add(j as u64));
            let scalar = secure_compare(&mut ctx, a, b, bits);
            prop_assert_eq!(
                out.a_greater, scalar.a_greater,
                "gt lane {} of {} ({}-bit): a={} b={}", j, lanes, bits, a, b
            );
            prop_assert_eq!(
                out.equal, scalar.equal,
                "eq lane {} of {} ({}-bit): a={} b={}", j, lanes, bits, a, b
            );
        }
    }

    /// The transcript shape (meter, recorded words, gate count) of a word
    /// is a function of the bit width alone: different values and different
    /// active-lane counts are indistinguishable on the wire.
    #[test]
    fn transcript_shape_is_input_independent(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let bits = 1 + rng.index(64) as u32;
        let lanes_full = 1 + rng.index(LANES);
        let lanes_sparse = 1 + rng.index(LANES);
        let run = |pairs: &[(u64, u64)]| {
            let mut ctx = SlicedTwoParty::with_transcript(seed ^ 0xF00D);
            let _ = sliced_compare_word(&mut ctx, pairs, bits);
            (ctx.meter, ctx.transcript().len(), ctx.and_gates)
        };
        let zeros = vec![(0u64, 0u64); lanes_sparse];
        let (m1, t1, a1) = run(&random_pairs(seed ^ 1, lanes_full, bits));
        let (m2, t2, a2) = run(&random_pairs(seed ^ 2, lanes_full, bits));
        let (m3, t3, a3) = run(&zeros);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(m2, m3, "lane count must not show on the wire");
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(t2, t3);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(a2, a3);
    }

    /// Partial final words: padding a batch to the next word boundary with
    /// dummy pairs changes neither the surviving lanes' outcomes nor the
    /// batch's communication (dummy lanes ride along for free).
    #[test]
    fn partial_final_words_are_handled(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let bits = 1 + rng.index(64) as u32;
        // Deliberately straddle a word boundary: 65..=191 lanes.
        let lanes = LANES + 1 + rng.index(2 * LANES - 1);
        let pairs = random_pairs(seed ^ 3, lanes, bits);
        let mut padded = pairs.clone();
        padded.resize(pairs.len().div_ceil(LANES) * LANES, (0, 0));
        let part = secure_compare_batch(seed ^ 4, &pairs, bits);
        let full = secure_compare_batch(seed ^ 4, &padded, bits);
        prop_assert_eq!(part.words, full.words);
        prop_assert_eq!(part.meter, full.meter, "padding must be free");
        prop_assert_eq!(part.and_gates, full.and_gates);
        for (j, (a, b)) in part.outcomes.iter().zip(&full.outcomes).enumerate() {
            prop_assert_eq!(a.a_greater, b.a_greater, "lane {}", j);
            prop_assert_eq!(a.equal, b.equal, "lane {}", j);
        }
    }
}
