//! The one-bit mechanism (Ding et al., the paper's ref [38]).
//!
//! Encodes a bounded value `x ∈ [a, b]` as a single bit whose probability of
//! being 1 grows linearly with `x` (Eq. 26), and recovers an *unbiased*
//! estimate from the bit (Eq. 27, Theorem 3). The per-element privacy budget
//! is `ε' = ε·wl(u)/d` in Lumos's feature encoder.

use lumos_common::rng::Xoshiro256pp;

/// One symbol of an encoded feature: a privatized bit or "not sent".
///
/// The paper fills missing elements with the constant 0.5, "implying no
/// deviation towards the maximum or minimum value".
// lumos-lint: allow(secret-leak) — post-randomization ε-LDP symbol, safe to reveal by Theorem 1; Debug needed by reproducibility asserts
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedValue {
    /// The mechanism output bit 0.
    Zero,
    /// The mechanism output bit 1.
    One,
    /// Element not included in this message (transmitted as the constant ½).
    Missing,
}

impl EncodedValue {
    /// Wire representation in `{0, 0.5, 1}` as in the paper's `x' ∈
    /// {0, 0.5, 1}^d`.
    pub fn wire_value(self) -> f32 {
        match self {
            EncodedValue::Zero => 0.0,
            EncodedValue::One => 1.0,
            EncodedValue::Missing => 0.5,
        }
    }
}

/// One-bit mechanism with per-element budget `eps` on the range `[a, b]`.
#[derive(Debug, Clone, Copy)]
pub struct OneBitMechanism {
    eps: f64,
    a: f64,
    b: f64,
}

impl OneBitMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics if `eps <= 0` or `a >= b`.
    pub fn new(eps: f64, a: f64, b: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "epsilon must be positive");
        assert!(a < b, "range must satisfy a < b");
        Self { eps, a, b }
    }

    /// Per-element privacy budget ε'.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Probability that the mechanism outputs 1 for input `x` (Eq. 26).
    pub fn prob_one(&self, x: f64) -> f64 {
        let e = self.eps.exp();
        let x = x.clamp(self.a, self.b);
        1.0 / (e + 1.0) + (x - self.a) / (self.b - self.a) * (e - 1.0) / (e + 1.0)
    }

    /// Encodes one element (Eq. 26).
    pub fn encode(&self, x: f64, rng: &mut Xoshiro256pp) -> EncodedValue {
        if rng.bernoulli(self.prob_one(x)) {
            EncodedValue::One
        } else {
            EncodedValue::Zero
        }
    }

    /// Recovers an unbiased estimate from an encoded element (Eq. 27).
    ///
    /// For `Missing`, returns the midpoint `(a+b)/2`, which carries no
    /// directional information.
    pub fn decode(&self, v: EncodedValue) -> f64 {
        let e = self.eps.exp();
        let half_span = (self.b - self.a) / 2.0;
        let mid = (self.a + self.b) / 2.0;
        match v {
            EncodedValue::One => half_span * (e + 1.0) / (e - 1.0) + mid,
            EncodedValue::Zero => -half_span * (e + 1.0) / (e - 1.0) + mid,
            EncodedValue::Missing => mid,
        }
    }

    /// Variance of the recovered estimate for input `x` — used by the
    /// paper's argument that partial (binned) encoding has lower variance
    /// than full encoding under the same total budget.
    pub fn variance(&self, x: f64) -> f64 {
        let p = self.prob_one(x);
        let hi = self.decode(EncodedValue::One);
        let lo = self.decode(EncodedValue::Zero);
        let mean = p * hi + (1.0 - p) * lo;
        p * (hi - mean).powi(2) + (1.0 - p) * (lo - mean).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(31337)
    }

    #[test]
    fn prob_one_is_monotone_and_spans_the_ldp_ratio() {
        let m = OneBitMechanism::new(2.0, 0.0, 1.0);
        let p_lo = m.prob_one(0.0);
        let p_mid = m.prob_one(0.5);
        let p_hi = m.prob_one(1.0);
        assert!(p_lo < p_mid && p_mid < p_hi);
        // Definition 1: sup-ratio equals e^ε exactly at the extremes,
        // for both outputs.
        assert!((p_hi / p_lo - 2.0f64.exp()).abs() < 1e-9);
        let q_lo = 1.0 - p_hi;
        let q_hi = 1.0 - p_lo;
        assert!((q_hi / q_lo - 2.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn epsilon_ldp_bound_holds_on_a_grid() {
        let eps = 1.5;
        let m = OneBitMechanism::new(eps, -1.0, 3.0);
        let grid: Vec<f64> = (0..=20).map(|i| -1.0 + 4.0 * i as f64 / 20.0).collect();
        for &x in &grid {
            for &y in &grid {
                let r1 = m.prob_one(x) / m.prob_one(y);
                let r0 = (1.0 - m.prob_one(x)) / (1.0 - m.prob_one(y));
                assert!(r1 <= eps.exp() + 1e-9, "ratio {r1} at ({x},{y})");
                assert!(r0 <= eps.exp() + 1e-9, "ratio {r0} at ({x},{y})");
            }
        }
    }

    #[test]
    fn recovery_is_unbiased_theorem_3() {
        // E[x''] must equal x for several inputs (Theorem 3).
        let m = OneBitMechanism::new(1.0, 0.0, 1.0);
        let mut r = rng();
        for &x in &[0.0, 0.2, 0.5, 0.77, 1.0] {
            let n = 200_000;
            let mean: f64 = (0..n).map(|_| m.decode(m.encode(x, &mut r))).sum::<f64>() / n as f64;
            assert!((mean - x).abs() < 0.02, "x={x}: mean {mean}");
        }
    }

    #[test]
    fn unbiasedness_closed_form() {
        // p·decode(1) + (1-p)·decode(0) == x exactly.
        let m = OneBitMechanism::new(0.7, -2.0, 5.0);
        for &x in &[-2.0, -0.5, 1.3, 5.0] {
            let p = m.prob_one(x);
            let mean = p * m.decode(EncodedValue::One) + (1.0 - p) * m.decode(EncodedValue::Zero);
            assert!((mean - x).abs() < 1e-9, "x={x}: {mean}");
        }
    }

    #[test]
    fn missing_decodes_to_midpoint() {
        let m = OneBitMechanism::new(2.0, 0.0, 1.0);
        assert!((m.decode(EncodedValue::Missing) - 0.5).abs() < 1e-12);
        assert_eq!(EncodedValue::Missing.wire_value(), 0.5);
    }

    #[test]
    fn variance_decreases_with_budget() {
        let lo = OneBitMechanism::new(0.5, 0.0, 1.0);
        let hi = OneBitMechanism::new(4.0, 0.0, 1.0);
        assert!(hi.variance(0.5) < lo.variance(0.5));
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_rejected() {
        OneBitMechanism::new(0.0, 0.0, 1.0);
    }
}
