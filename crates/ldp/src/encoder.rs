//! Lumos's binned feature encoder (§VI-A).
//!
//! Device `u` with feature `x ∈ [a,b]^d` and trimmed workload `wl(u)`:
//!
//! 1. every element is one-bit encoded with per-element budget
//!    `ε' = ε·wl(u)/d` (Eq. 26);
//! 2. the `d` dimensions are distributed uniformly at random into `wl(u)`
//!    bins;
//! 3. neighbor `k` receives only the elements of bin `k`, with the other
//!    positions filled by the information-free constant ½;
//! 4. receivers apply the unbiased recovery map (Eq. 27).
//!
//! Each neighbor thus observes `d/wl(u)` privatized elements at budget
//! `ε·wl(u)/d` apiece — `ε`-LDP in total by composition (Theorem 4) — while
//! every dimension reaches exactly one neighbor, and the constant positions
//! keep the message variance low (the paper's argument for partial
//! encoding).

use lumos_common::rng::Xoshiro256pp;

use crate::onebit::{EncodedValue, OneBitMechanism};

/// A partial encoded feature as sent to one neighbor.
// lumos-lint: allow(secret-leak) — the binned message is already ε-LDP-privatized wire payload; only raw features are secret
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFeature {
    /// Per-dimension symbols; `Missing` outside this message's bin.
    pub values: Vec<EncodedValue>,
}

impl EncodedFeature {
    /// The `{0, 0.5, 1}` wire form (the paper's `x'_u`).
    pub fn wire(&self) -> Vec<f32> {
        self.values.iter().map(|v| v.wire_value()).collect()
    }

    /// Number of dimensions actually transmitted (non-missing).
    pub fn transmitted(&self) -> usize {
        self.values
            .iter()
            .filter(|v| !matches!(v, EncodedValue::Missing))
            .count()
    }
}

/// The Lumos feature encoder for one device.
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    mechanism: OneBitMechanism,
    dim: usize,
    workload: usize,
}

impl FeatureEncoder {
    /// Creates the encoder for a device with `workload = wl(u)` retained
    /// neighbors, feature dimension `dim`, total budget `epsilon`, and
    /// feature range `[a, b]`.
    ///
    /// # Panics
    /// Panics if `workload == 0` or `dim == 0`.
    pub fn new(epsilon: f64, workload: usize, dim: usize, a: f64, b: f64) -> Self {
        assert!(workload > 0, "encoder needs at least one neighbor");
        assert!(dim > 0, "feature dimension must be positive");
        let eps_elem = epsilon * workload as f64 / dim as f64;
        Self {
            mechanism: OneBitMechanism::new(eps_elem, a, b),
            dim,
            workload,
        }
    }

    /// The per-element budget `ε' = ε·wl/d`.
    pub fn per_element_epsilon(&self) -> f64 {
        self.mechanism.epsilon()
    }

    /// Encodes the feature once and splits it into one partial message per
    /// neighbor (`workload` messages). Message `k` is destined for the
    /// device's `k`-th retained neighbor.
    ///
    /// # Panics
    /// Panics if `feature.len() != dim`.
    pub fn encode_binned(&self, feature: &[f32], rng: &mut Xoshiro256pp) -> Vec<EncodedFeature> {
        assert_eq!(feature.len(), self.dim, "feature dimension mismatch");
        // Random bin per dimension.
        let bins: Vec<usize> = (0..self.dim).map(|_| rng.index(self.workload)).collect();
        let mut messages = vec![
            EncodedFeature {
                values: vec![EncodedValue::Missing; self.dim]
            };
            self.workload
        ];
        for (i, (&x, &bin)) in feature.iter().zip(&bins).enumerate() {
            messages[bin].values[i] = self.mechanism.encode(x as f64, rng);
        }
        messages
    }

    /// Ablation: encodes *all* dimensions for every neighbor, with the
    /// per-element budget lowered to `ε/d` so each recipient still observes
    /// an ε-LDP view. This is the "naively encoding all the feature
    /// elements" variant §VI-A argues against.
    pub fn encode_full(
        &self,
        feature: &[f32],
        total_epsilon: f64,
        rng: &mut Xoshiro256pp,
    ) -> Vec<EncodedFeature> {
        assert_eq!(feature.len(), self.dim, "feature dimension mismatch");
        let mech = OneBitMechanism::new(
            total_epsilon / self.dim as f64,
            self.range().0,
            self.range().1,
        );
        (0..self.workload)
            .map(|_| EncodedFeature {
                values: feature
                    .iter()
                    .map(|&x| mech.encode(x as f64, rng))
                    .collect(),
            })
            .collect()
    }

    /// Recovers the unbiased estimate from a received message (Eq. 27).
    pub fn recover(&self, msg: &EncodedFeature) -> Vec<f32> {
        msg.values
            .iter()
            .map(|&v| self.mechanism.decode(v) as f32)
            .collect()
    }

    /// Recovery for the full-encoding ablation (budget `ε/d` per element).
    pub fn recover_full(&self, msg: &EncodedFeature, total_epsilon: f64) -> Vec<f32> {
        let mech = OneBitMechanism::new(
            total_epsilon / self.dim as f64,
            self.range().0,
            self.range().1,
        );
        msg.values.iter().map(|&v| mech.decode(v) as f32).collect()
    }

    fn range(&self) -> (f64, f64) {
        // OneBitMechanism doesn't expose (a, b); reconstruct from decode.
        let mid = self.mechanism.decode(EncodedValue::Missing);
        let hi = self.mechanism.decode(EncodedValue::One);
        let e = self.mechanism.epsilon().exp();
        let half_span = (hi - mid) * (e - 1.0) / (e + 1.0);
        (mid - half_span, mid + half_span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(4242)
    }

    #[test]
    fn binned_messages_partition_dimensions() {
        let enc = FeatureEncoder::new(2.0, 4, 32, 0.0, 1.0);
        let feature = vec![0.5f32; 32];
        let msgs = enc.encode_binned(&feature, &mut rng());
        assert_eq!(msgs.len(), 4);
        // Every dimension transmitted in exactly one message.
        for i in 0..32 {
            let senders = msgs
                .iter()
                .filter(|m| !matches!(m.values[i], EncodedValue::Missing))
                .count();
            assert_eq!(senders, 1, "dimension {i} must appear exactly once");
        }
        let total: usize = msgs.iter().map(|m| m.transmitted()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn per_element_budget_matches_formula() {
        let enc = FeatureEncoder::new(2.0, 5, 100, 0.0, 1.0);
        assert!((enc.per_element_epsilon() - 2.0 * 5.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_of_binned_messages_is_unbiased() {
        // Averaging the recovered value of a dimension across many fresh
        // encodings must converge to the true value (Theorem 3 end-to-end).
        let enc = FeatureEncoder::new(4.0, 2, 8, 0.0, 1.0);
        let feature: Vec<f32> = vec![0.1, 0.9, 0.4, 0.6, 0.0, 1.0, 0.25, 0.75];
        let mut r = rng();
        let n = 60_000;
        let mut sums = [0.0f64; 8];
        let mut counts = [0usize; 8];
        for _ in 0..n {
            let msgs = enc.encode_binned(&feature, &mut r);
            for m in &msgs {
                let rec = enc.recover(m);
                for (i, v) in m.values.iter().enumerate() {
                    if !matches!(v, EncodedValue::Missing) {
                        sums[i] += rec[i] as f64;
                        counts[i] += 1;
                    }
                }
            }
        }
        for i in 0..8 {
            let mean = sums[i] / counts[i] as f64;
            assert!(
                (mean - feature[i] as f64).abs() < 0.05,
                "dim {i}: mean {mean} vs true {}",
                feature[i]
            );
        }
    }

    #[test]
    fn binned_encoding_has_lower_message_variance_than_full() {
        // §VI-A: with the same per-recipient budget, sending a constant for
        // most positions yields lower total variance per message.
        let dim = 64;
        let wl = 4;
        let eps = 2.0;
        let enc = FeatureEncoder::new(eps, wl, dim, 0.0, 1.0);
        let feature = vec![0.5f32; dim];
        let mut r = rng();
        let reps = 2_000;
        let mut var_binned = 0.0f64;
        let mut var_full = 0.0f64;
        for _ in 0..reps {
            let binned = enc.encode_binned(&feature, &mut r);
            let full = enc.encode_full(&feature, eps, &mut r);
            for m in &binned {
                for v in enc.recover(m) {
                    var_binned += (v as f64 - 0.5).powi(2);
                }
            }
            for m in &full {
                for v in enc.recover_full(m, eps) {
                    var_full += (v as f64 - 0.5).powi(2);
                }
            }
        }
        // Same number of message-elements on both sides (wl*dim), so the
        // raw sums are comparable.
        assert!(
            var_binned < var_full * 0.5,
            "binned {var_binned} vs full {var_full}"
        );
    }

    #[test]
    fn wire_form_is_ternary() {
        let enc = FeatureEncoder::new(1.0, 3, 16, 0.0, 1.0);
        let feature = vec![0.3f32; 16];
        for m in enc.encode_binned(&feature, &mut rng()) {
            for w in m.wire() {
                assert!(w == 0.0 || w == 0.5 || w == 1.0);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_workload_rejected() {
        FeatureEncoder::new(1.0, 0, 4, 0.0, 1.0);
    }
}
