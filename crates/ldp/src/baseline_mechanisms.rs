//! Mechanisms used by the comparison systems (§VIII-C).
//!
//! * [`MultiBitMechanism`] — LPGNN's feature encoder: sample `m` of `d`
//!   dimensions, one-bit encode each with budget `ε/m`, rescale for
//!   unbiasedness.
//! * [`GaussianMechanism`] — naive FedGNN's feature noise.
//! * [`RandomizedResponse`] — k-ary randomized response for labels and
//!   binary randomized response for adjacency bits.

use lumos_common::dist::Normal;
use lumos_common::rng::Xoshiro256pp;

use crate::onebit::OneBitMechanism;

/// LPGNN-style multi-bit mechanism over `[a, b]^d`.
#[derive(Debug, Clone)]
pub struct MultiBitMechanism {
    mech: OneBitMechanism,
    dim: usize,
    sampled: usize,
    a: f64,
    b: f64,
}

impl MultiBitMechanism {
    /// Creates the mechanism: `sampled` dimensions are released per user at
    /// per-element budget `epsilon / sampled`.
    ///
    /// # Panics
    /// Panics if `sampled` is 0 or exceeds `dim`.
    pub fn new(epsilon: f64, dim: usize, sampled: usize, a: f64, b: f64) -> Self {
        assert!(sampled >= 1 && sampled <= dim, "need 1 <= sampled <= dim");
        Self {
            mech: OneBitMechanism::new(epsilon / sampled as f64, a, b),
            dim,
            sampled,
            a,
            b,
        }
    }

    /// Encodes a feature vector: the unsampled positions carry no
    /// information; sampled positions are one-bit encoded. The decoded
    /// estimate is rescaled by `d/m` around the midpoint so the full-vector
    /// estimate stays unbiased.
    pub fn privatize(&self, feature: &[f32], rng: &mut Xoshiro256pp) -> Vec<f32> {
        assert_eq!(feature.len(), self.dim, "feature dimension mismatch");
        let chosen = rng.sample_indices(self.dim, self.sampled);
        let mut mask = vec![false; self.dim];
        for &i in &chosen {
            mask[i] = true;
        }
        let mid = (self.a + self.b) / 2.0;
        let scale = self.dim as f64 / self.sampled as f64;
        feature
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if mask[i] {
                    let v = self.mech.decode(self.mech.encode(x as f64, rng));
                    (mid + scale * (v - mid)) as f32
                } else {
                    mid as f32
                }
            })
            .collect()
    }
}

/// The Gaussian mechanism for bounded vectors.
#[derive(Debug, Clone, Copy)]
pub struct GaussianMechanism {
    sigma: f64,
}

impl GaussianMechanism {
    /// Creates the mechanism with explicit noise scale.
    pub fn with_sigma(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self { sigma }
    }

    /// Calibrates σ for (ε, δ)-DP with L2 sensitivity `delta_f`:
    /// `σ = sqrt(2 ln(1.25/δ)) · Δf / ε` (Dwork & Roth, the paper's [45]).
    pub fn calibrated(epsilon: f64, delta: f64, delta_f: f64) -> Self {
        assert!(
            epsilon > 0.0 && delta > 0.0 && delta < 1.0,
            "bad (eps, delta)"
        );
        Self::with_sigma((2.0 * (1.25 / delta).ln()).sqrt() * delta_f / epsilon)
    }

    /// Noise scale.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Adds i.i.d. Gaussian noise to each element.
    pub fn privatize(&self, feature: &[f32], rng: &mut Xoshiro256pp) -> Vec<f32> {
        let dist = Normal::new(0.0, self.sigma);
        feature
            .iter()
            .map(|&x| x + dist.sample(rng) as f32)
            .collect()
    }
}

/// k-ary randomized response (Warner, the paper's [46]).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedResponse {
    keep_prob: f64,
    k: usize,
}

impl RandomizedResponse {
    /// Creates k-ary RR with budget ε: the true value is kept with
    /// probability `e^ε / (e^ε + k − 1)`, otherwise a uniformly random
    /// *other* value is reported.
    ///
    /// # Panics
    /// Panics if `k < 2` or ε is not positive.
    pub fn new(epsilon: f64, k: usize) -> Self {
        assert!(k >= 2, "randomized response needs k >= 2");
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let e = epsilon.exp();
        Self {
            keep_prob: e / (e + (k as f64) - 1.0),
            k,
        }
    }

    /// Probability of reporting the true value.
    pub fn keep_prob(&self) -> f64 {
        self.keep_prob
    }

    /// Privatizes one categorical value in `0..k`.
    pub fn privatize(&self, value: u32, rng: &mut Xoshiro256pp) -> u32 {
        assert!((value as usize) < self.k, "value out of range");
        if rng.bernoulli(self.keep_prob) {
            value
        } else {
            // Uniform over the k-1 other values.
            let other = rng.next_below((self.k - 1) as u64) as u32;
            if other >= value {
                other + 1
            } else {
                other
            }
        }
    }

    /// Privatizes one bit (k = 2 convenience).
    pub fn privatize_bit(&self, bit: bool, rng: &mut Xoshiro256pp) -> bool {
        assert_eq!(self.k, 2, "privatize_bit requires binary RR");
        self.privatize(bit as u32, rng) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(606)
    }

    #[test]
    fn multibit_is_unbiased_over_repetitions() {
        let m = MultiBitMechanism::new(4.0, 16, 4, 0.0, 1.0);
        let feature: Vec<f32> = (0..16).map(|i| i as f32 / 15.0).collect();
        let mut r = rng();
        let n = 40_000;
        let mut sums = [0.0f64; 16];
        for _ in 0..n {
            for (s, v) in sums.iter_mut().zip(m.privatize(&feature, &mut r)) {
                *s += v as f64;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = s / n as f64;
            assert!(
                (mean - feature[i] as f64).abs() < 0.05,
                "dim {i}: {mean} vs {}",
                feature[i]
            );
        }
    }

    #[test]
    fn gaussian_noise_moments() {
        let g = GaussianMechanism::with_sigma(0.5);
        let mut r = rng();
        let x = vec![0.3f32; 50_000];
        let y = g.privatize(&x, &mut r);
        let mean: f64 = y.iter().map(|&v| v as f64).sum::<f64>() / y.len() as f64;
        let var: f64 = y.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / y.len() as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_calibration_formula() {
        let g = GaussianMechanism::calibrated(1.0, 1e-5, 1.0);
        let expected = (2.0f64 * (1.25f64 / 1e-5).ln()).sqrt();
        assert!((g.sigma() - expected).abs() < 1e-12);
    }

    #[test]
    fn rr_keep_probability_matches_theory() {
        let rr = RandomizedResponse::new(1.0, 4);
        let e = 1.0f64.exp();
        assert!((rr.keep_prob() - e / (e + 3.0)).abs() < 1e-12);
        let mut r = rng();
        let n = 100_000;
        let kept = (0..n).filter(|_| rr.privatize(2, &mut r) == 2).count();
        // Observed "2" includes both kept and randomly-flipped-to-2; the
        // flip contributes (1-p)/3.
        let p = rr.keep_prob();
        let expected = p;
        let frac = kept as f64 / n as f64;
        assert!((frac - expected).abs() < 0.02, "frac {frac} vs {expected}");
    }

    #[test]
    fn rr_outputs_in_range_and_bits_flip() {
        let rr = RandomizedResponse::new(0.5, 2);
        let mut r = rng();
        let flips = (0..50_000)
            .filter(|_| rr.privatize_bit(false, &mut r))
            .count();
        let frac = flips as f64 / 50_000.0;
        let expected = 1.0 - rr.keep_prob();
        assert!((frac - expected).abs() < 0.02, "flip rate {frac}");
        let rr9 = RandomizedResponse::new(2.0, 9);
        for v in 0..9u32 {
            for _ in 0..100 {
                assert!(rr9.privatize(v, &mut r) < 9);
            }
        }
    }

    #[test]
    fn rr_satisfies_ldp_ratio() {
        // P[out=y | in=x] / P[out=y | in=x'] <= e^eps for all x, x', y.
        let eps = 1.2f64;
        let rr = RandomizedResponse::new(eps, 5);
        let p_keep = rr.keep_prob();
        let p_other = (1.0 - p_keep) / 4.0;
        let ratio = p_keep / p_other;
        assert!(ratio <= eps.exp() + 1e-9, "ratio {ratio}");
    }
}
