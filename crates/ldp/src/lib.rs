//! `lumos-ldp` — local differential privacy mechanisms.
//!
//! Implements the paper's feature protection stack: the one-bit mechanism
//! with unbiased recovery (Eqs. 26–27, Theorems 3–4), Lumos's binned partial
//! feature encoder (§VI-A), and the mechanisms used by the baselines of
//! §VIII-C (multi-bit for LPGNN, Gaussian + randomized response for naive
//! FedGNN).

#![forbid(unsafe_code)]
pub mod baseline_mechanisms;
pub mod encoder;
pub mod onebit;

pub use baseline_mechanisms::{GaussianMechanism, MultiBitMechanism, RandomizedResponse};
pub use encoder::{EncodedFeature, FeatureEncoder};
pub use onebit::{EncodedValue, OneBitMechanism};
