//! Fixed-seed Monte Carlo checks of the one-bit mechanism (Theorems 3–4).
//!
//! The in-module unit tests pin the closed forms; these tests verify that
//! the *sampled* mechanism actually realizes them: the empirical mean of
//! decoded bits converges to the true input (unbiasedness, Theorem 3), the
//! empirical bit frequencies respect the e^ε randomization bound of
//! Definition 1, and the empirical variance matches the closed form. All
//! runs are seeded, so tolerances can be tight without flakiness.

use lumos_common::rng::Xoshiro256pp;
use lumos_ldp::{EncodedValue, OneBitMechanism};

/// Empirical P(bit = 1) over `n` fixed-seed draws.
fn empirical_p1(m: &OneBitMechanism, x: f64, n: usize, rng: &mut Xoshiro256pp) -> f64 {
    let ones = (0..n)
        .filter(|_| m.encode(x, rng) == EncodedValue::One)
        .count();
    ones as f64 / n as f64
}

#[test]
fn monte_carlo_mean_is_unbiased() {
    // Theorem 3: E[decode(encode(x))] = x. With n = 400k draws the standard
    // error of the mean is sigma/sqrt(n); for every (eps, x) below,
    // 5 standard errors stay under the asserted tolerance, so the fixed
    // seed makes this deterministic and still tight.
    let n = 400_000;
    let mut rng = Xoshiro256pp::seed_from_u64(0x0B17_0001);
    for &eps in &[0.5, 2.0, 6.0] {
        let m = OneBitMechanism::new(eps, 0.0, 1.0);
        for &x in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let mean: f64 = (0..n).map(|_| m.decode(m.encode(x, &mut rng))).sum::<f64>() / n as f64;
            let tol = 5.0 * (m.variance(x) / n as f64).sqrt();
            assert!(
                (mean - x).abs() < tol,
                "eps={eps} x={x}: empirical mean {mean} off by {} (tol {tol})",
                (mean - x).abs()
            );
        }
    }
}

#[test]
fn monte_carlo_mean_is_unbiased_on_shifted_range() {
    // Unbiasedness must hold for arbitrary [a, b], not just [0, 1].
    let n = 400_000;
    let (a, b) = (-3.0, 7.0);
    let m = OneBitMechanism::new(1.5, a, b);
    let mut rng = Xoshiro256pp::seed_from_u64(0x0B17_0002);
    for &x in &[-3.0, -1.2, 0.0, 2.5, 7.0] {
        let mean: f64 = (0..n).map(|_| m.decode(m.encode(x, &mut rng))).sum::<f64>() / n as f64;
        let tol = 5.0 * (m.variance(x) / n as f64).sqrt();
        assert!((mean - x).abs() < tol, "x={x}: mean {mean} (tol {tol})");
    }
}

#[test]
fn empirical_frequencies_match_eq_26() {
    // The sampler must realize exactly the probability prob_one claims —
    // this is what makes the analytic ε bound transfer to the sampled bits.
    let n = 500_000;
    let mut rng = Xoshiro256pp::seed_from_u64(0x0B17_0003);
    for &eps in &[0.25, 1.0, 4.0] {
        let m = OneBitMechanism::new(eps, 0.0, 1.0);
        for &x in &[0.0, 0.3, 0.7, 1.0] {
            let p_hat = empirical_p1(&m, x, n, &mut rng);
            let p = m.prob_one(x);
            let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt() + 1e-9;
            assert!(
                (p_hat - p).abs() < tol,
                "eps={eps} x={x}: empirical {p_hat} vs analytic {p}"
            );
        }
    }
}

#[test]
fn epsilon_randomization_bound_holds_empirically() {
    // Definition 1 on the realized bits: for any two inputs x, y and either
    // output bit, the frequency ratio may exceed e^ε only by Monte Carlo
    // error. The worst-case pair is the range's two extremes, where the
    // analytic ratio equals e^ε exactly.
    let n = 500_000;
    let mut rng = Xoshiro256pp::seed_from_u64(0x0B17_0004);
    for &eps in &[0.5, 2.0] {
        let m = OneBitMechanism::new(eps, 0.0, 1.0);
        let inputs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let p_hat: Vec<f64> = inputs
            .iter()
            .map(|&x| empirical_p1(&m, x, n, &mut rng))
            .collect();
        // 4-sigma slack on each frequency, propagated into the ratio bound.
        let slack = 4.0 * (0.25 / n as f64).sqrt();
        let bound = eps.exp();
        for (i, &pi) in p_hat.iter().enumerate() {
            for (j, &pj) in p_hat.iter().enumerate() {
                let r1 = pi / pj;
                let r0 = (1.0 - pi) / (1.0 - pj);
                let tol = bound * (1.0 + 8.0 * slack);
                assert!(
                    r1 <= tol && r0 <= tol,
                    "eps={eps}: pair ({}, {}) ratios ({r1:.4}, {r0:.4}) exceed e^eps = {bound:.4}",
                    inputs[i],
                    inputs[j]
                );
            }
        }
        // And the analytic extreme-pair ratio is exactly e^ε — the budget
        // is fully spent, not just bounded.
        let exact = m.prob_one(1.0) / m.prob_one(0.0);
        assert!((exact - bound).abs() < 1e-9, "sup ratio {exact} != e^eps");
    }
}

#[test]
fn monte_carlo_variance_matches_closed_form() {
    let n = 400_000;
    let m = OneBitMechanism::new(2.0, 0.0, 1.0);
    let mut rng = Xoshiro256pp::seed_from_u64(0x0B17_0005);
    for &x in &[0.1, 0.5, 0.9] {
        let draws: Vec<f64> = (0..n).map(|_| m.decode(m.encode(x, &mut rng))).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let want = m.variance(x);
        assert!(
            (var - want).abs() / want < 0.02,
            "x={x}: empirical variance {var} vs closed form {want}"
        );
    }
}

#[test]
fn fixed_seed_encoding_is_reproducible() {
    // The whole point of the fixed-seed harness: identical seeds must give
    // identical encoded streams.
    let m = OneBitMechanism::new(2.0, 0.0, 1.0);
    let run = |seed: u64| -> Vec<EncodedValue> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..10_000)
            .map(|i| m.encode((i % 100) as f64 / 99.0, &mut rng))
            .collect()
    };
    assert_eq!(run(123), run(123));
    assert_ne!(
        run(123),
        run(124),
        "different seeds should differ somewhere"
    );
}
