//! The `LumosConfig` opt-in switch for the aggregation topology.

/// How device updates reach the server each round.
///
/// `Flat` is the seed behaviour: every device uploads straight to the
/// server (O(devices) server messages per round). `Hierarchical` routes
/// uploads through K edge aggregators that each forward one pooled
/// partial, so the server sees O(K) messages instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyConfig {
    /// The paper's star topology: device → server. Default.
    #[default]
    Flat,
    /// Devices report to one of `aggregators` edge aggregators; the
    /// aggregators report to the server.
    Hierarchical {
        /// Number of edge aggregators (K ≥ 1).
        aggregators: usize,
    },
}

impl TopologyConfig {
    /// Short name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyConfig::Flat => "flat",
            TopologyConfig::Hierarchical { .. } => "hierarchical",
        }
    }

    /// Panics on configurations that cannot mean anything, at config
    /// time rather than epochs into a run (same contract as
    /// `AggregationPolicy::validate`).
    pub fn validate(&self) {
        if let TopologyConfig::Hierarchical { aggregators } = self {
            assert!(
                *aggregators >= 1,
                "hierarchical topology needs at least one aggregator"
            );
        }
    }

    /// Resolves the config against a concrete fleet size.
    ///
    /// `Hierarchical` with more aggregators than devices clamps to one
    /// aggregator per device, and a single-aggregator tree resolves to
    /// `Flat`: one aggregator that hears every device and forwards one
    /// partial *is* the server's front door, so the flat path is the
    /// same protocol with the relabelling removed. Resolving up front is
    /// how the 1-aggregator degenerate case stays bit-identical to the
    /// seed path by construction (the `Buffered { decay: 0 } → Deadline`
    /// pattern).
    pub fn effective(self, num_devices: usize) -> TopologyConfig {
        match self {
            TopologyConfig::Flat => TopologyConfig::Flat,
            TopologyConfig::Hierarchical { aggregators } => {
                let k = aggregators.min(num_devices.max(1));
                if k <= 1 {
                    TopologyConfig::Flat
                } else {
                    TopologyConfig::Hierarchical { aggregators: k }
                }
            }
        }
    }

    /// Number of aggregators, if hierarchical.
    pub fn aggregators(&self) -> Option<usize> {
        match self {
            TopologyConfig::Flat => None,
            TopologyConfig::Hierarchical { aggregators } => Some(*aggregators),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_flat() {
        assert_eq!(TopologyConfig::default(), TopologyConfig::Flat);
        assert_eq!(TopologyConfig::Flat.name(), "flat");
    }

    #[test]
    fn single_aggregator_resolves_to_flat() {
        assert_eq!(
            TopologyConfig::Hierarchical { aggregators: 1 }.effective(100),
            TopologyConfig::Flat
        );
        // More aggregators than devices clamps first, then resolves.
        assert_eq!(
            TopologyConfig::Hierarchical { aggregators: 8 }.effective(1),
            TopologyConfig::Flat
        );
        assert_eq!(
            TopologyConfig::Hierarchical { aggregators: 8 }.effective(5),
            TopologyConfig::Hierarchical { aggregators: 5 }
        );
        assert_eq!(
            TopologyConfig::Hierarchical { aggregators: 4 }.effective(100),
            TopologyConfig::Hierarchical { aggregators: 4 }
        );
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_is_rejected() {
        TopologyConfig::Hierarchical { aggregators: 0 }.validate();
    }
}
