//! Scalar reference model of the two-tier POOL.
//!
//! The trainer's real tiered pooling runs on the autodiff tape
//! (per-shard `gather_rows → scale_rows → scatter_add_rows` partials
//! folded with `add`). These functions model the same arithmetic over
//! plain `f64` arrays so property tests can check conservation — the
//! two-tier merge must pool exactly the same mass as the flat path —
//! without building a training run.

use crate::topology::Topology;

fn weight_sums(num_vertices: usize, vertices: &[u32], weights: &[f64]) -> Vec<f64> {
    let mut sums = vec![0.0f64; num_vertices];
    for (&v, &w) in vertices.iter().zip(weights) {
        sums[v as usize] += w;
    }
    sums
}

fn normalize(mut acc: Vec<f64>, sums: &[f64]) -> Vec<f64> {
    for (a, &s) in acc.iter_mut().zip(sums) {
        if s > 0.0 {
            *a /= s;
        } else {
            *a = 0.0;
        }
    }
    acc
}

/// Flat weighted POOL: one global weighted mean per vertex.
///
/// `owners[i]` is the device whose tree contributed leaf `i`,
/// `vertices[i]` the vertex the leaf pools into; leaves must be in
/// device order (the batched-forest layout).
pub fn pool_flat(
    num_vertices: usize,
    vertices: &[u32],
    values: &[f64],
    weights: &[f64],
) -> Vec<f64> {
    assert_eq!(vertices.len(), values.len());
    assert_eq!(vertices.len(), weights.len());
    let mut acc = vec![0.0f64; num_vertices];
    for ((&v, &x), &w) in vertices.iter().zip(values).zip(weights) {
        acc[v as usize] += x * w;
    }
    let sums = weight_sums(num_vertices, vertices, weights);
    normalize(acc, sums.as_slice())
}

/// Two-tier weighted POOL: each aggregator accumulates its own members'
/// weighted leaves into a partial, the server sums the K partials, and
/// only then normalizes. The division happens once, at the server, so
/// the tiers change the *order* of the additions but not the pooled
/// mass.
pub fn pool_tiered(
    num_vertices: usize,
    topo: &Topology,
    owners: &[u32],
    vertices: &[u32],
    values: &[f64],
    weights: &[f64],
) -> Vec<f64> {
    assert_eq!(owners.len(), vertices.len());
    assert_eq!(vertices.len(), values.len());
    assert_eq!(vertices.len(), weights.len());
    let mut server = vec![0.0f64; num_vertices];
    for (_, range) in topo.ranges() {
        let mut partial = vec![0.0f64; num_vertices];
        for (((&o, &v), &x), &w) in owners.iter().zip(vertices).zip(values).zip(weights) {
            if range.contains(&o) {
                partial[v as usize] += x * w;
            }
        }
        for (s, p) in server.iter_mut().zip(&partial) {
            *s += p;
        }
    }
    let sums = weight_sums(num_vertices, vertices, weights);
    normalize(server, sums.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_conserve_the_pool_on_a_small_case() {
        // 4 devices, 2 shards, 3 vertices; each device contributes two
        // leaves. All-ones weights: tiered must match flat.
        let owners = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let vertices = vec![0, 1, 1, 2, 0, 2, 1, 0];
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let weights = vec![1.0; 8];
        let topo = Topology::contiguous(4, 2);
        let flat = pool_flat(3, &vertices, &values, &weights);
        let tiered = pool_tiered(3, &topo, &owners, &vertices, &values, &weights);
        for (f, t) in flat.iter().zip(&tiered) {
            assert!((f - t).abs() < 1e-12, "flat {f} vs tiered {t}");
        }
    }

    #[test]
    fn single_shard_is_bitwise_flat() {
        let owners = vec![0, 1, 2];
        let vertices = vec![0, 0, 1];
        let values = vec![0.25, 0.5, -3.0];
        let weights = vec![1.0, 0.5, 2.0];
        let topo = Topology::contiguous(3, 1);
        let flat = pool_flat(2, &vertices, &values, &weights);
        let tiered = pool_tiered(2, &topo, &owners, &vertices, &values, &weights);
        assert_eq!(
            flat.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            tiered.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "one shard must be the identical accumulation order"
        );
    }

    #[test]
    fn zero_weight_vertices_pool_to_zero() {
        let owners = vec![0, 1];
        let vertices = vec![0, 1];
        let values = vec![9.0, 9.0];
        let weights = vec![0.0, 1.0];
        let topo = Topology::contiguous(2, 2);
        let tiered = pool_tiered(2, &topo, &owners, &vertices, &values, &weights);
        assert_eq!(tiered[0], 0.0);
        assert_eq!(tiered[1], 9.0);
    }
}
