//! Deterministic partition of a device fleet into contiguous shards.

use lumos_common::rng::Xoshiro256pp;

/// A partition of `n` devices into K non-empty **contiguous** shards,
/// one per edge aggregator.
///
/// Contiguity is a deliberate restriction, not a simplification: the
/// batched training forest (`core::build_batched`) lays device trees
/// out in device order, so a contiguous shard is a contiguous slice of
/// the pool arrays. Tiered pooling can then gather/scatter per-shard
/// slices in the same global order as the flat path, which is what
/// makes the single-shard degenerate case the *identical* op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Shard boundaries: `starts[k]..starts[k + 1]` is shard `k`'s
    /// device range. `starts[0] == 0`, `starts[K] == n`, strictly
    /// increasing (every shard is non-empty).
    starts: Vec<usize>,
}

impl Topology {
    fn from_starts(starts: Vec<usize>) -> Self {
        debug_assert!(starts.len() >= 2);
        debug_assert_eq!(starts[0], 0);
        debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        Topology { starts }
    }

    /// Even contiguous split: the first `n % k` shards get one extra
    /// device. Panics if `k == 0` or `k > n`.
    pub fn contiguous(num_devices: usize, aggregators: usize) -> Self {
        assert!(aggregators >= 1, "need at least one aggregator");
        assert!(
            aggregators <= num_devices,
            "more aggregators ({aggregators}) than devices ({num_devices})"
        );
        let base = num_devices / aggregators;
        let extra = num_devices % aggregators;
        let mut starts = Vec::with_capacity(aggregators + 1);
        let mut at = 0;
        starts.push(0);
        for k in 0..aggregators {
            at += base + usize::from(k < extra);
            starts.push(at);
        }
        Topology::from_starts(starts)
    }

    /// Seeded contiguous split: shard sizes are apportioned from seeded
    /// positive weights (largest-remainder style), so different seeds
    /// give different — but always deterministic — boundary placements.
    pub fn seeded(num_devices: usize, aggregators: usize, seed: u64) -> Self {
        assert!(aggregators >= 1, "need at least one aggregator");
        assert!(
            aggregators <= num_devices,
            "more aggregators ({aggregators}) than devices ({num_devices})"
        );
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x7090_7090_u64.rotate_left(11));
        let weights: Vec<f64> = (0..aggregators).map(|_| rng.range_f64(0.5, 1.5)).collect();
        let total: f64 = weights.iter().sum();
        // Floor-apportion with every shard guaranteed one device, then
        // hand remaining devices to shards in weight order.
        let spare = num_devices - aggregators;
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| 1 + ((w / total) * spare as f64).floor() as usize)
            .collect();
        let mut assigned: usize = sizes.iter().sum();
        let mut order: Vec<usize> = (0..aggregators).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        let mut i = 0;
        while assigned < num_devices {
            sizes[order[i % aggregators]] += 1;
            assigned += 1;
            i += 1;
        }
        let mut starts = Vec::with_capacity(aggregators + 1);
        let mut at = 0;
        starts.push(0);
        for s in sizes {
            at += s;
            starts.push(at);
        }
        Topology::from_starts(starts)
    }

    /// Cost-balanced contiguous split: boundaries are swept so each
    /// shard's total cost tracks `k/K` of the fleet total (devices with
    /// heavier per-node prices land in smaller shards). Greedy and
    /// deterministic; shards stay non-empty.
    pub fn cost_balanced(costs: &[u64], aggregators: usize) -> Self {
        let n = costs.len();
        assert!(aggregators >= 1, "need at least one aggregator");
        assert!(
            aggregators <= n,
            "more aggregators ({aggregators}) than devices ({n})"
        );
        let total: u128 = costs.iter().map(|&c| c as u128).sum();
        let mut starts = Vec::with_capacity(aggregators + 1);
        starts.push(0);
        let mut acc: u128 = 0;
        let mut d = 0;
        for k in 0..aggregators - 1 {
            let target = total * (k as u128 + 1) / aggregators as u128;
            // Every shard keeps ≥ 1 device, and enough devices must be
            // left for the remaining shards.
            let min_d = starts[k] + 1;
            let max_d = n - (aggregators - 1 - k);
            while d < min_d || (d < max_d && acc + costs[d] as u128 / 2 < target) {
                acc += costs[d] as u128;
                d += 1;
            }
            starts.push(d);
        }
        starts.push(n);
        Topology::from_starts(starts)
    }

    /// Total devices across all shards.
    pub fn num_devices(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Number of aggregators (shards).
    pub fn num_aggregators(&self) -> usize {
        self.starts.len() - 1
    }

    /// The shard (aggregator) a device reports to.
    pub fn shard_of(&self, device: u32) -> u32 {
        let d = device as usize;
        assert!(d < self.num_devices(), "device {device} out of range");
        // partition_point gives the first start > d; shard is one left.
        (self.starts.partition_point(|&s| s <= d) - 1) as u32
    }

    /// The contiguous device range of shard `k`.
    pub fn members(&self, shard: usize) -> std::ops::Range<u32> {
        assert!(shard < self.num_aggregators(), "shard {shard} out of range");
        self.starts[shard] as u32..self.starts[shard + 1] as u32
    }

    /// Materialized per-device shard vector (what `SimNetwork`'s compact
    /// sharded ledger keys on).
    pub fn shard_vector(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.num_devices());
        for k in 0..self.num_aggregators() {
            v.extend(self.members(k).map(|_| k as u32));
        }
        v
    }

    /// Iterator over `(shard, device range)` pairs.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, std::ops::Range<u32>)> + '_ {
        (0..self.num_aggregators()).map(|k| (k, self.members(k)))
    }

    /// The deterministic failover map for a set of outaged aggregators:
    /// `map[k]` is the aggregator actually serving shard `k` this round.
    /// A healthy shard serves itself; an outaged shard re-homes to the
    /// next healthy aggregator cyclically (`k+1, k+2, …` mod K) — the
    /// successor rule is a pure function of the topology, so every
    /// replica of the run re-homes identically without coordination.
    ///
    /// When *every* aggregator is down there is no healthy successor;
    /// the map degenerates to the identity (no failover — the round
    /// proceeds as if unaided, rather than inventing a survivor).
    pub fn failover_map(&self, outaged: &[u32]) -> Vec<u32> {
        let k = self.num_aggregators();
        let mut down = vec![false; k];
        for &a in outaged {
            if let Some(slot) = down.get_mut(a as usize) {
                *slot = true;
            }
        }
        if down.iter().all(|&d| d) {
            return (0..k as u32).collect();
        }
        (0..k)
            .map(|shard| {
                let mut target = shard;
                while down[target] {
                    target = (target + 1) % k;
                }
                target as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(t: &Topology, n: usize, k: usize) {
        assert_eq!(t.num_devices(), n);
        assert_eq!(t.num_aggregators(), k);
        let mut seen = 0usize;
        for (shard, range) in t.ranges() {
            assert!(!range.is_empty(), "shard {shard} is empty");
            assert_eq!(range.start as usize, seen, "shards must be contiguous");
            for d in range.clone() {
                assert_eq!(t.shard_of(d), shard as u32);
            }
            seen = range.end as usize;
        }
        assert_eq!(seen, n, "shards must cover every device exactly once");
    }

    #[test]
    fn contiguous_split_partitions_evenly() {
        let t = Topology::contiguous(10, 3);
        assert_partition(&t, 10, 3);
        let sizes: Vec<usize> = t.ranges().map(|(_, r)| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn seeded_split_is_deterministic_and_seed_sensitive() {
        let a = Topology::seeded(100, 7, 1);
        let b = Topology::seeded(100, 7, 1);
        assert_eq!(a, b);
        assert_partition(&a, 100, 7);
        let c = Topology::seeded(100, 7, 2);
        assert_partition(&c, 100, 7);
        assert_ne!(a, c, "different seeds should move boundaries");
    }

    #[test]
    fn cost_balanced_tracks_cost_not_count() {
        // First half of the fleet is 9× pricier: it should land in
        // far fewer devices per shard.
        let mut costs = vec![900u64; 50];
        costs.extend(vec![100u64; 50]);
        let t = Topology::cost_balanced(&costs, 2);
        assert_partition(&t, 100, 2);
        let cut = t.members(0).end as usize;
        assert!(
            cut < 40,
            "expensive prefix should close shard 0 early, cut at {cut}"
        );
        let shard0: u64 = costs[..cut].iter().sum();
        let shard1: u64 = costs[cut..].iter().sum();
        let imbalance = shard0.abs_diff(shard1) as f64 / (shard0 + shard1) as f64;
        assert!(imbalance < 0.1, "cost imbalance {imbalance} too high");
    }

    #[test]
    fn single_shard_covers_everything() {
        let t = Topology::contiguous(5, 1);
        assert_partition(&t, 5, 1);
        assert_eq!(t.members(0), 0..5);
        assert_eq!(t.shard_vector(), vec![0; 5]);
    }

    #[test]
    fn zero_cost_fleet_still_partitions() {
        let t = Topology::cost_balanced(&[0; 8], 4);
        assert_partition(&t, 8, 4);
    }

    #[test]
    #[should_panic(expected = "more aggregators")]
    fn more_shards_than_devices_panics() {
        Topology::contiguous(2, 3);
    }

    #[test]
    fn failover_maps_outaged_shards_to_the_cyclic_successor() {
        let t = Topology::contiguous(12, 4);
        assert_eq!(t.failover_map(&[]), vec![0, 1, 2, 3]);
        assert_eq!(t.failover_map(&[1]), vec![0, 2, 2, 3]);
        // Adjacent outages chain to the same survivor; the wrap-around
        // outage re-homes to the front.
        assert_eq!(t.failover_map(&[1, 2]), vec![0, 3, 3, 3]);
        assert_eq!(t.failover_map(&[3]), vec![0, 1, 2, 0]);
        // Out-of-range aggregators are ignored.
        assert_eq!(t.failover_map(&[9]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn total_outage_degenerates_to_identity() {
        let t = Topology::contiguous(6, 3);
        assert_eq!(t.failover_map(&[0, 1, 2]), vec![0, 1, 2]);
    }
}
