//! Hierarchical device→aggregator→server aggregation topology.
//!
//! Lumos' flat star topology prices per-round server traffic at
//! O(devices): every device ships its pooled update straight to the
//! server. That is fine at the paper's scale (thousands of devices) and
//! hopeless at the ROADMAP's (millions). This crate owns the middle
//! tier that fixes it:
//!
//! - [`TopologyConfig`] — the `LumosConfig` opt-in switch. `Flat` is the
//!   default and leaves every code path bit-identical to the seed;
//!   `Hierarchical { aggregators }` routes device updates through K edge
//!   aggregators so the server receives O(K) partials per round.
//! - [`Topology`] — a deterministic partition of `n` devices into K
//!   **contiguous** shards. Contiguity is load-bearing: the batched
//!   training forest lays trees out in device order, so a contiguous
//!   shard is a contiguous slice of the pool arrays and the degenerate
//!   single-shard pooling sequence is *literally* the flat one.
//! - [`shard_late_with_staleness`] — applies an
//!   [`AggregationPolicy`](lumos_sim::AggregationPolicy) per shard:
//!   each aggregator cuts its own members against its own local median
//!   deadline. With one shard the mask keeps every entry, so the result
//!   is bit-identical to the global policy call.
//! - [`pool_flat`] / [`pool_tiered`] — a scalar reference model of the
//!   two-tier POOL (aggregator partial sums, then a server merge) used
//!   by the conservation property tests.
//! - [`tier_timing`] — composes tier-2 delivery on top of a device-tier
//!   [`EpochStats`](lumos_sim::EpochStats): an aggregator's partial is
//!   ready when its slowest member's update lands, then pays the
//!   aggregator's own uplink + latency to reach the server.
//! - [`Topology::failover_map`] + [`tier_timing_failover`] — aggregator
//!   outage recovery: an outaged shard re-homes to its deterministic
//!   cyclic successor, which folds the orphaned members into its own
//!   readiness and ships one merged partial. The identity map reproduces
//!   [`tier_timing`] bit for bit.
//!
//! Everything here is pure data + arithmetic over `lumos-sim` types, so
//! `fed` and `core` can both depend on it without cycles.

#![forbid(unsafe_code)]
pub mod config;
pub mod policy;
pub mod pooling;
pub mod timing;
pub mod topology;

pub use config::TopologyConfig;
pub use policy::{shard_late_with_staleness, ShardRoundPolicies};
pub use pooling::{pool_flat, pool_tiered};
pub use timing::{tier_timing, tier_timing_failover, TierTiming};
pub use topology::Topology;
