//! Tier-2 delivery timing, composed on top of a device-tier epoch.
//!
//! The device tier is priced by `lumos_sim::simulate_epoch` exactly as
//! in the flat path. The second tier composes on its output: an
//! aggregator's pooled partial is ready when its slowest member's
//! update lands, then pays the aggregator's own uplink + propagation
//! latency to reach the server. The server's round closes when the last
//! aggregator partial arrives.

use lumos_sim::{DeviceProfile, EpochStats};

use crate::topology::Topology;

/// Tier-2 (aggregator → server) delivery schedule for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TierTiming {
    /// When each aggregator's partial reached the server. `None` when no
    /// member delivered an update this epoch (the aggregator sends
    /// nothing).
    pub aggregator_delivery_secs: Vec<Option<f64>>,
    /// Virtual seconds until the last aggregator partial landed
    /// (0.0 when nothing was delivered at all).
    pub server_makespan_secs: f64,
}

/// Prices the aggregator → server tier for one epoch.
///
/// `aggregator` is the profile every edge aggregator uploads with, and
/// `partial_bytes` the wire size of one pooled partial — the hierarchy's
/// whole point is that the server's inbound traffic is
/// `num_aggregators × partial_bytes` per round, independent of fleet
/// size.
pub fn tier_timing(
    stats: &EpochStats,
    topo: &Topology,
    aggregator: &DeviceProfile,
    partial_bytes: u64,
) -> TierTiming {
    assert_eq!(
        stats.update_delivery_secs.len(),
        topo.num_devices(),
        "topology and epoch stats disagree on fleet size"
    );
    let hop = aggregator.upload_secs(partial_bytes) + aggregator.latency_secs;
    let mut deliveries = Vec::with_capacity(topo.num_aggregators());
    let mut makespan = 0.0f64;
    for (_, range) in topo.ranges() {
        let lo = range.start as usize;
        let hi = range.end as usize;
        let ready = stats.update_delivery_secs[lo..hi]
            .iter()
            .flatten()
            .fold(None::<f64>, |acc, &t| Some(acc.map_or(t, |a| a.max(t))));
        let delivery = ready.map(|t| t + hop);
        if let Some(t) = delivery {
            makespan = makespan.max(t);
        }
        deliveries.push(delivery);
    }
    TierTiming {
        aggregator_delivery_secs: deliveries,
        server_makespan_secs: makespan,
    }
}

/// [`tier_timing`] under an aggregator failover: `rehome[k]` is the
/// aggregator actually serving shard `k` this round (the output of
/// [`Topology::failover_map`]). Members of a re-homed shard fold into
/// their *target* aggregator's readiness, the target pays one hop for its
/// merged partial, and the outaged aggregator itself delivers nothing.
/// With the identity map this is `tier_timing` exactly — same folds in
/// the same shard order, so the no-failover round stays bit-identical.
///
/// # Panics
/// Panics on a fleet-size mismatch, a `rehome` map of the wrong length,
/// or a map that routes a shard to an aggregator that is itself re-homed
/// elsewhere (the successor must be healthy).
pub fn tier_timing_failover(
    stats: &EpochStats,
    topo: &Topology,
    aggregator: &DeviceProfile,
    partial_bytes: u64,
    rehome: &[u32],
) -> TierTiming {
    assert_eq!(
        stats.update_delivery_secs.len(),
        topo.num_devices(),
        "topology and epoch stats disagree on fleet size"
    );
    assert_eq!(
        rehome.len(),
        topo.num_aggregators(),
        "failover map and topology disagree on aggregator count"
    );
    let hop = aggregator.upload_secs(partial_bytes) + aggregator.latency_secs;
    // Fold each shard's members into the aggregator that actually serves
    // it; shards are visited in order, so a target's readiness is the max
    // over its own members and every shard re-homed onto it.
    let mut ready: Vec<Option<f64>> = vec![None; topo.num_aggregators()];
    for (shard, range) in topo.ranges() {
        let target = rehome[shard] as usize;
        assert_eq!(
            rehome[target] as usize, target,
            "shard {shard} re-homed to aggregator {target}, which is itself down"
        );
        let lo = range.start as usize;
        let hi = range.end as usize;
        ready[target] = stats.update_delivery_secs[lo..hi]
            .iter()
            .flatten()
            .fold(ready[target], |acc, &t| Some(acc.map_or(t, |a| a.max(t))));
    }
    let mut deliveries = Vec::with_capacity(topo.num_aggregators());
    let mut makespan = 0.0f64;
    for (shard, r) in ready.into_iter().enumerate() {
        // An outaged aggregator (re-homed elsewhere) never uploads, even
        // if a stray fold landed on it.
        let delivery = if rehome[shard] as usize == shard {
            r.map(|t| t + hop)
        } else {
            None
        };
        if let Some(t) = delivery {
            makespan = makespan.max(t);
        }
        deliveries.push(delivery);
    }
    TierTiming {
        aggregator_delivery_secs: deliveries,
        server_makespan_secs: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(times: Vec<Option<f64>>) -> EpochStats {
        let n = times.len();
        EpochStats {
            makespan_secs: 0.0,
            busy_secs: vec![0.0; n],
            idle_secs: vec![0.0; n],
            update_delivery_secs: times,
            straggler: None,
            active_devices: n,
            events: 0,
        }
    }

    #[test]
    fn aggregator_waits_for_its_slowest_member() {
        let s = stats(vec![Some(1.0), Some(5.0), Some(2.0), Some(3.0)]);
        let topo = Topology::contiguous(4, 2);
        let agg = DeviceProfile::baseline();
        let hop = agg.upload_secs(64) + agg.latency_secs;
        let t = tier_timing(&s, &topo, &agg, 64);
        assert_eq!(t.aggregator_delivery_secs[0], Some(5.0 + hop));
        assert_eq!(t.aggregator_delivery_secs[1], Some(3.0 + hop));
        assert_eq!(t.server_makespan_secs, 5.0 + hop);
    }

    #[test]
    fn silent_shard_sends_no_partial() {
        let s = stats(vec![None, None, Some(2.0), Some(1.0)]);
        let topo = Topology::contiguous(4, 2);
        let agg = DeviceProfile::baseline();
        let t = tier_timing(&s, &topo, &agg, 64);
        assert_eq!(t.aggregator_delivery_secs[0], None);
        assert!(t.aggregator_delivery_secs[1].is_some());
        assert!(t.server_makespan_secs > 0.0);
    }

    #[test]
    fn fully_silent_epoch_has_zero_server_makespan() {
        let s = stats(vec![None, None]);
        let topo = Topology::contiguous(2, 2);
        let t = tier_timing(&s, &topo, &DeviceProfile::baseline(), 64);
        assert_eq!(t.server_makespan_secs, 0.0);
        assert!(t.aggregator_delivery_secs.iter().all(Option::is_none));
    }

    #[test]
    fn identity_failover_is_tier_timing_bitwise() {
        let s = stats(vec![
            Some(1.0),
            Some(5.0),
            Some(2.0),
            Some(3.0),
            None,
            Some(4.0),
        ]);
        let topo = Topology::contiguous(6, 3);
        let agg = DeviceProfile::baseline();
        let identity = topo.failover_map(&[]);
        assert_eq!(
            tier_timing_failover(&s, &topo, &agg, 64, &identity),
            tier_timing(&s, &topo, &agg, 64)
        );
    }

    #[test]
    fn failover_folds_the_outaged_shard_into_its_successor() {
        let s = stats(vec![Some(1.0), Some(5.0), Some(2.0), Some(3.0)]);
        let topo = Topology::contiguous(4, 2);
        let agg = DeviceProfile::baseline();
        let hop = agg.upload_secs(64) + agg.latency_secs;
        // Aggregator 0 is down: its members (deliveries 1.0, 5.0) re-home
        // to aggregator 1, which now waits for the merged slowest member.
        let t = tier_timing_failover(&s, &topo, &agg, 64, &topo.failover_map(&[0]));
        assert_eq!(
            t.aggregator_delivery_secs[0], None,
            "down aggregator is silent"
        );
        assert_eq!(t.aggregator_delivery_secs[1], Some(5.0 + hop));
        assert_eq!(t.server_makespan_secs, 5.0 + hop);
    }

    #[test]
    #[should_panic(expected = "itself down")]
    fn rehoming_onto_a_down_aggregator_panics() {
        let s = stats(vec![Some(1.0), Some(2.0)]);
        let topo = Topology::contiguous(2, 2);
        // 0 -> 1 but 1 -> 0: both routes point at a re-homed aggregator.
        tier_timing_failover(&s, &topo, &DeviceProfile::baseline(), 64, &[1, 0]);
    }
}
