//! Per-shard application of the aggregation deadline policy.

use lumos_sim::{
    AggregationPolicy, Control, EpochStats, EventDrivenRuntime, RoundPolicy, SimEvent, VirtualTime,
};

use crate::topology::Topology;

/// Applies `policy.late_with_staleness` independently per shard: each
/// aggregator measures its own members' delivery times against its own
/// local median deadline, exactly as the server does globally in the
/// flat path. Returns the union of every shard's `(device, staleness)`
/// verdicts, sorted by device id.
///
/// With a single shard the mask keeps every entry, so the result is
/// bit-identical to calling the policy on `stats` directly (pinned by
/// `single_shard_matches_global_policy` below).
/// [`AggregationPolicy::Async`] is also global regardless of sharding: the
/// quorum is the *server's* round-closure criterion — it counts landings
/// across the whole fleet, not per aggregator.
pub fn shard_late_with_staleness(
    policy: &AggregationPolicy,
    stats: &EpochStats,
    topo: &Topology,
) -> Vec<(u32, u32)> {
    assert_eq!(
        stats.update_delivery_secs.len(),
        topo.num_devices(),
        "topology and epoch stats disagree on fleet size"
    );
    if topo.num_aggregators() == 1 || matches!(policy, AggregationPolicy::Async { .. }) {
        return policy.late_with_staleness(stats);
    }
    // One reusable scratch copy; per shard only the members' delivery
    // entries survive, so the policy's median is the shard-local one.
    let mut scratch = stats.clone();
    let mut late = Vec::new();
    for (_, range) in topo.ranges() {
        scratch
            .update_delivery_secs
            .iter_mut()
            .for_each(|t| *t = None);
        let lo = range.start as usize;
        let hi = range.end as usize;
        scratch.update_delivery_secs[lo..hi].copy_from_slice(&stats.update_delivery_secs[lo..hi]);
        late.extend(policy.late_with_staleness(&scratch));
    }
    late.sort_unstable_by_key(|&(d, _)| d);
    late
}

/// The sharded counterpart of [`RoundPolicy`]: one arrival-time handler
/// per aggregator, each judging only its members against its shard-local
/// median, all subscribed to a single [`EventDrivenRuntime`] run. The
/// merged verdicts equal [`shard_late_with_staleness`] on the finished
/// round — the hierarchical half of the lockstep ⇄ event-driven
/// equivalence.
///
/// [`AggregationPolicy::Async`] is handled as one *global* policy (the
/// quorum belongs to the server, not to any aggregator), matching the
/// post-hoc path above.
pub struct ShardRoundPolicies {
    /// `Some(shard index)` per device under a sharded cut; `None` routes
    /// every event to the single global policy.
    shard_of: Option<Vec<u32>>,
    policies: Vec<RoundPolicy>,
}

impl ShardRoundPolicies {
    /// Builds the per-shard handlers for one scheduled epoch.
    ///
    /// # Panics
    /// Panics if the schedule and topology disagree on fleet size, or if
    /// the policy's parameters are invalid.
    pub fn new(policy: &AggregationPolicy, schedule: &EventDrivenRuntime, topo: &Topology) -> Self {
        assert_eq!(
            schedule.update_delivery_secs().len(),
            topo.num_devices(),
            "topology and schedule disagree on fleet size"
        );
        if topo.num_aggregators() == 1 || matches!(policy, AggregationPolicy::Async { .. }) {
            return Self {
                shard_of: None,
                policies: vec![RoundPolicy::new(policy, schedule)],
            };
        }
        let mut shard_of = vec![0u32; topo.num_devices()];
        let mut policies = Vec::with_capacity(topo.num_aggregators());
        for (shard, (_, range)) in topo.ranges().enumerate() {
            for d in range.clone() {
                shard_of[d as usize] = shard as u32;
            }
            policies.push(RoundPolicy::for_members(policy, schedule, Some(range)));
        }
        Self {
            shard_of: Some(shard_of),
            policies,
        }
    }

    /// Routes one event to the device's shard handler (or the global one).
    pub fn on_event(&mut self, t: VirtualTime, ev: &SimEvent) -> Control {
        let shard = match &self.shard_of {
            Some(map) => map[ev.device() as usize] as usize,
            None => 0,
        };
        self.policies[shard].on_event(t, ev)
    }

    /// The union of every shard's `(device, staleness)` verdicts, sorted
    /// by device id — the same pairs [`shard_late_with_staleness`]
    /// computes post hoc.
    pub fn verdicts(self) -> Vec<(u32, u32)> {
        let mut late: Vec<(u32, u32)> = self
            .policies
            .into_iter()
            .flat_map(RoundPolicy::verdicts)
            .collect();
        late.sort_unstable_by_key(|&(d, _)| d);
        late
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_deliveries(times: Vec<Option<f64>>) -> EpochStats {
        let n = times.len();
        EpochStats {
            makespan_secs: times.iter().flatten().fold(0.0f64, |a, &b| a.max(b)),
            busy_secs: vec![0.0; n],
            idle_secs: vec![0.0; n],
            update_delivery_secs: times,
            straggler: None,
            active_devices: n,
            events: 0,
        }
    }

    #[test]
    fn single_shard_matches_global_policy() {
        let stats = stats_with_deliveries(vec![
            Some(1.0),
            Some(2.0),
            Some(40.0),
            Some(1.5),
            None,
            Some(3.0),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let topo = Topology::contiguous(6, 1);
        assert_eq!(
            shard_late_with_staleness(&policy, &stats, &topo),
            policy.late_with_staleness(&stats)
        );
    }

    #[test]
    fn shards_use_local_medians() {
        // Shard 0 is uniformly slow, shard 1 uniformly fast. A global
        // 2× median deadline would drop all of shard 0; shard-local
        // deadlines drop nobody — each shard is internally homogeneous.
        let stats = stats_with_deliveries(vec![
            Some(100.0),
            Some(110.0),
            Some(105.0),
            Some(1.0),
            Some(1.1),
            Some(1.05),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let global = policy.late_with_staleness(&stats);
        assert!(
            !global.is_empty(),
            "global deadline should drop the slow half"
        );
        let topo = Topology::contiguous(6, 2);
        let sharded = shard_late_with_staleness(&policy, &stats, &topo);
        assert!(
            sharded.is_empty(),
            "local deadlines keep homogeneous shards"
        );
    }

    #[test]
    fn sharded_verdicts_are_sorted_and_deduplicated_by_construction() {
        let stats = stats_with_deliveries(vec![
            Some(1.0),
            Some(50.0),
            Some(1.0),
            Some(60.0),
            Some(1.0),
            Some(1.0),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let topo = Topology::contiguous(6, 3);
        let late = shard_late_with_staleness(&policy, &stats, &topo);
        assert!(late.windows(2).all(|w| w[0].0 < w[1].0));
        for &(d, s) in &late {
            assert!(d == 1 || d == 3, "only the per-shard stragglers drop");
            assert!(s >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on fleet size")]
    fn fleet_size_mismatch_panics() {
        let stats = stats_with_deliveries(vec![Some(1.0); 4]);
        let topo = Topology::contiguous(6, 2);
        shard_late_with_staleness(&AggregationPolicy::FullSync, &stats, &topo);
    }

    #[test]
    fn async_quorum_is_global_across_shards() {
        // Quorum 4 over 6 devices in 2 shards: the 4 earliest landings
        // pool wherever they live; the 2 slowest are carried — sharding
        // must not give each aggregator its own quorum.
        let stats = stats_with_deliveries(vec![
            Some(1.0),
            Some(2.0),
            Some(90.0),
            Some(3.0),
            Some(4.0),
            Some(80.0),
        ]);
        let policy = AggregationPolicy::Async { min_updates: 4 };
        let topo = Topology::contiguous(6, 2);
        let sharded = shard_late_with_staleness(&policy, &stats, &topo);
        assert_eq!(sharded, vec![(2, 1), (5, 1)]);
        assert_eq!(sharded, policy.late_with_staleness(&stats));
    }

    fn simulated_round() -> (lumos_sim::EventDrivenRuntime, EpochStats) {
        use lumos_sim::{DeviceProfile, DeviceWork};
        let mut profiles = vec![DeviceProfile::baseline(); 6];
        profiles[1].compute_rate /= 60.0;
        profiles[4].compute_rate /= 90.0;
        let work: Vec<DeviceWork> = (0..6)
            .map(|i| DeviceWork::aggregate(100.0 + 10.0 * i as f64, 1, 64, 0))
            .collect();
        let schedule = EventDrivenRuntime::new(&profiles, &work);
        let stats = lumos_sim::simulate_epoch(&profiles, &work);
        (schedule, stats)
    }

    #[test]
    fn shard_round_policies_match_the_post_hoc_path() {
        // Per-shard arrival-time handlers on a live event stream must
        // produce the exact union shard_late_with_staleness computes from
        // the finished round — for the sharded cut policies and the
        // global async quorum alike.
        for policy in [
            AggregationPolicy::Deadline { factor: 2.0 },
            AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 0.5,
            },
            AggregationPolicy::Async { min_updates: 4 },
            AggregationPolicy::FullSync,
        ] {
            let (schedule, stats) = simulated_round();
            let topo = Topology::contiguous(6, 2);
            let mut shards = ShardRoundPolicies::new(&policy, &schedule, &topo);
            let run_stats = schedule.run(|t, ev| shards.on_event(t, ev));
            assert_eq!(
                shards.verdicts(),
                shard_late_with_staleness(&policy, &stats, &topo),
                "{} sharded handler disagreed with the post-hoc path",
                policy.name()
            );
            if policy == AggregationPolicy::FullSync {
                assert_eq!(run_stats, stats, "barrier run must be untouched");
            }
        }
    }
}
