//! Per-shard application of the aggregation deadline policy.

use lumos_sim::{AggregationPolicy, EpochStats};

use crate::topology::Topology;

/// Applies `policy.late_with_staleness` independently per shard: each
/// aggregator measures its own members' delivery times against its own
/// local median deadline, exactly as the server does globally in the
/// flat path. Returns the union of every shard's `(device, staleness)`
/// verdicts, sorted by device id.
///
/// With a single shard the mask keeps every entry, so the result is
/// bit-identical to calling the policy on `stats` directly (pinned by
/// `single_shard_matches_global_policy` below).
pub fn shard_late_with_staleness(
    policy: &AggregationPolicy,
    stats: &EpochStats,
    topo: &Topology,
) -> Vec<(u32, u32)> {
    assert_eq!(
        stats.update_delivery_secs.len(),
        topo.num_devices(),
        "topology and epoch stats disagree on fleet size"
    );
    if topo.num_aggregators() == 1 {
        return policy.late_with_staleness(stats);
    }
    // One reusable scratch copy; per shard only the members' delivery
    // entries survive, so the policy's median is the shard-local one.
    let mut scratch = stats.clone();
    let mut late = Vec::new();
    for (_, range) in topo.ranges() {
        scratch
            .update_delivery_secs
            .iter_mut()
            .for_each(|t| *t = None);
        let lo = range.start as usize;
        let hi = range.end as usize;
        scratch.update_delivery_secs[lo..hi].copy_from_slice(&stats.update_delivery_secs[lo..hi]);
        late.extend(policy.late_with_staleness(&scratch));
    }
    late.sort_unstable_by_key(|&(d, _)| d);
    late
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_deliveries(times: Vec<Option<f64>>) -> EpochStats {
        let n = times.len();
        EpochStats {
            makespan_secs: times.iter().flatten().fold(0.0f64, |a, &b| a.max(b)),
            busy_secs: vec![0.0; n],
            idle_secs: vec![0.0; n],
            update_delivery_secs: times,
            straggler: None,
            active_devices: n,
            events: 0,
        }
    }

    #[test]
    fn single_shard_matches_global_policy() {
        let stats = stats_with_deliveries(vec![
            Some(1.0),
            Some(2.0),
            Some(40.0),
            Some(1.5),
            None,
            Some(3.0),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let topo = Topology::contiguous(6, 1);
        assert_eq!(
            shard_late_with_staleness(&policy, &stats, &topo),
            policy.late_with_staleness(&stats)
        );
    }

    #[test]
    fn shards_use_local_medians() {
        // Shard 0 is uniformly slow, shard 1 uniformly fast. A global
        // 2× median deadline would drop all of shard 0; shard-local
        // deadlines drop nobody — each shard is internally homogeneous.
        let stats = stats_with_deliveries(vec![
            Some(100.0),
            Some(110.0),
            Some(105.0),
            Some(1.0),
            Some(1.1),
            Some(1.05),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let global = policy.late_with_staleness(&stats);
        assert!(
            !global.is_empty(),
            "global deadline should drop the slow half"
        );
        let topo = Topology::contiguous(6, 2);
        let sharded = shard_late_with_staleness(&policy, &stats, &topo);
        assert!(
            sharded.is_empty(),
            "local deadlines keep homogeneous shards"
        );
    }

    #[test]
    fn sharded_verdicts_are_sorted_and_deduplicated_by_construction() {
        let stats = stats_with_deliveries(vec![
            Some(1.0),
            Some(50.0),
            Some(1.0),
            Some(60.0),
            Some(1.0),
            Some(1.0),
        ]);
        let policy = AggregationPolicy::Deadline { factor: 2.0 };
        let topo = Topology::contiguous(6, 3);
        let late = shard_late_with_staleness(&policy, &stats, &topo);
        assert!(late.windows(2).all(|w| w[0].0 < w[1].0));
        for &(d, s) in &late {
            assert!(d == 1 || d == 3, "only the per-shard stragglers drop");
            assert!(s >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "disagree on fleet size")]
    fn fleet_size_mismatch_panics() {
        let stats = stats_with_deliveries(vec![Some(1.0); 4]);
        let topo = Topology::contiguous(6, 2);
        shard_late_with_staleness(&AggregationPolicy::FullSync, &stats, &topo);
    }
}
