//! Property tests for the hierarchical aggregation topology: every
//! construction variant partitions the fleet into non-empty contiguous
//! shards covering each device exactly once, and the two-tier POOL
//! conserves the flat pool's mass.

use proptest::prelude::*;

use lumos_common::rng::Xoshiro256pp;
use lumos_sim::{AggregationPolicy, EpochStats};
use lumos_topo::{pool_flat, pool_tiered, shard_late_with_staleness, Topology};

fn assert_exact_cover(t: &Topology, n: usize, k: usize) {
    assert_eq!(t.num_devices(), n);
    assert_eq!(t.num_aggregators(), k);
    let mut covered = vec![0u32; n];
    for (shard, range) in t.ranges() {
        assert!(!range.is_empty(), "shard {shard} is empty");
        for d in range {
            covered[d as usize] += 1;
            assert_eq!(t.shard_of(d), shard as u32);
        }
    }
    assert!(
        covered.iter().all(|&c| c == 1),
        "every device must belong to exactly one shard"
    );
    let vec = t.shard_vector();
    assert!(
        vec.windows(2).all(|w| w[0] <= w[1]),
        "contiguous shards imply a sorted shard vector"
    );
}

proptest! {
    /// Satellite: shard assignments cover every device exactly once,
    /// for every construction variant and any fleet/shard shape.
    #[test]
    fn shards_cover_every_device_exactly_once(
        n in 1usize..400, k_frac in 0.0f64..1.0, seed in any::<u64>()
    ) {
        let k = 1 + ((n - 1) as f64 * k_frac) as usize;
        assert_exact_cover(&Topology::contiguous(n, k), n, k);
        assert_exact_cover(&Topology::seeded(n, k, seed), n, k);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let costs: Vec<u64> = (0..n).map(|_| rng.next_below(10_000)).collect();
        assert_exact_cover(&Topology::cost_balanced(&costs, k), n, k);
    }

    /// Satellite: hierarchical pooling with all-ones weights conserves
    /// the POOL sum — the tiered merge pools the same mass per vertex
    /// as the flat path (up to float re-association across shards).
    #[test]
    fn all_ones_tiered_pool_conserves_flat_pool(
        n in 1usize..64, k_frac in 0.0f64..1.0, seed in any::<u64>(),
        leaves_per_device in 1usize..6, num_vertices in 1usize..32
    ) {
        let k = 1 + ((n - 1) as f64 * k_frac) as usize;
        let topo = Topology::seeded(n, k, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x9001);
        let mut owners = Vec::new();
        let mut vertices = Vec::new();
        let mut values = Vec::new();
        for d in 0..n as u32 {
            for _ in 0..leaves_per_device {
                owners.push(d);
                vertices.push(rng.next_below(num_vertices as u64) as u32);
                values.push(rng.range_f64(-10.0, 10.0));
            }
        }
        let weights = vec![1.0f64; values.len()];
        let flat = pool_flat(num_vertices, &vertices, &values, &weights);
        let tiered = pool_tiered(num_vertices, &topo, &owners, &vertices, &values, &weights);
        for (v, (f, t)) in flat.iter().zip(&tiered).enumerate() {
            prop_assert!(
                (f - t).abs() <= 1e-9 * (1.0 + f.abs()),
                "vertex {v}: flat {f} vs tiered {t}"
            );
        }
        let flat_sum: f64 = flat.iter().sum();
        let tiered_sum: f64 = tiered.iter().sum();
        prop_assert!(
            (flat_sum - tiered_sum).abs() <= 1e-9 * (1.0 + flat_sum.abs()),
            "pool mass must be conserved: {flat_sum} vs {tiered_sum}"
        );
    }

    /// One shard ⇒ the per-shard policy cut IS the global one, bit for
    /// bit, for every policy family.
    #[test]
    fn single_shard_policy_cut_is_bitwise_global(
        n in 1usize..64, seed in any::<u64>(), factor in 1.0f64..4.0
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let times: Vec<Option<f64>> = (0..n)
            .map(|_| rng.bernoulli(0.85).then(|| rng.range_f64(0.01, 50.0)))
            .collect();
        let stats = EpochStats {
            makespan_secs: 0.0,
            busy_secs: vec![0.0; n],
            idle_secs: vec![0.0; n],
            update_delivery_secs: times,
            straggler: None,
            active_devices: n,
            events: 0,
        };
        let topo = Topology::contiguous(n, 1);
        for policy in [
            AggregationPolicy::FullSync,
            AggregationPolicy::Deadline { factor },
            AggregationPolicy::Buffered { factor, decay: 0.5 },
        ] {
            prop_assert_eq!(
                shard_late_with_staleness(&policy, &stats, &topo),
                policy.late_with_staleness(&stats)
            );
        }
    }
}
