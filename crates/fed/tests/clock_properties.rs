//! Property tests for the straggler cost model: the epoch makespan (a max)
//! dominates the mean device cost for *any* cost vector, and both reduce
//! sensibly on degenerate inputs.

use proptest::prelude::*;

use lumos_common::rng::Xoshiro256pp;
use lumos_fed::{epoch_makespan, epoch_mean_cost};

/// A random non-negative cost vector from one seed.
fn random_costs(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..len).map(|_| rng.range_f64(0.0, 1e6)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The synchronous barrier can never beat perfect balance:
    /// `makespan >= mean` for every cost vector.
    #[test]
    fn makespan_dominates_mean_cost(seed in any::<u64>(), len in 0usize..128) {
        let costs = random_costs(seed, len);
        let makespan = epoch_makespan(&costs);
        let mean = epoch_mean_cost(&costs);
        prop_assert!(
            makespan >= mean,
            "makespan {} < mean {} for {} devices",
            makespan, mean, len
        );
        // The makespan is attained by some device; the mean never exceeds it.
        if !costs.is_empty() {
            prop_assert!(costs.contains(&makespan));
        }
    }

    /// On a perfectly balanced fleet the barrier costs nothing extra.
    #[test]
    fn equal_costs_collapse_makespan_to_mean(cost in 0.0f64..1e6, len in 1usize..64) {
        let costs = vec![cost; len];
        prop_assert_eq!(epoch_makespan(&costs).to_bits(), cost.to_bits());
        prop_assert!((epoch_mean_cost(&costs) - cost).abs() < 1e-9 * cost.max(1.0));
    }
}
