//! The synchronous federated round engine.
//!
//! Lumos "is a synchronized federated framework that operates in rounds and
//! has to receive all the required updates to start the next round"
//! (§IV-B). The engine owns the network ledger and the per-epoch timing
//! records the system-cost experiments consume.

use lumos_common::timer::Stopwatch;

use crate::clock::{epoch_makespan, epoch_mean_cost, CostModel, EpochTiming};
use crate::network::{NetworkSnapshot, SimNetwork};

/// Record of one completed epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Timing (measured + modeled).
    pub timing: EpochTiming,
    /// Average device-to-device messages per device during this epoch.
    pub avg_messages_per_device: f64,
    /// Total messages during this epoch.
    pub total_messages: u64,
}

/// Synchronous round engine owning the network and epoch log.
#[derive(Debug)]
pub struct Runtime {
    /// The simulated network.
    pub network: SimNetwork,
    cost_model: CostModel,
    epochs: Vec<EpochRecord>,
    current: Option<(usize, Stopwatch, NetworkSnapshot)>,
}

impl Runtime {
    /// Creates a runtime for `n` devices.
    pub fn new(n: usize, cost_model: CostModel) -> Self {
        Self {
            network: SimNetwork::new(n),
            cost_model,
            epochs: Vec::new(),
            current: None,
        }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Begins an epoch: starts the wall timer and snapshots the ledger.
    ///
    /// # Panics
    /// Panics if an epoch is already open.
    pub fn begin_epoch(&mut self) {
        assert!(self.current.is_none(), "previous epoch still open");
        let idx = self.epochs.len();
        self.current = Some((idx, Stopwatch::started(), self.network.snapshot()));
    }

    /// Ends the open epoch. `device_tree_nodes` and `layers` feed the
    /// straggler cost model; message counts are read from the ledger delta.
    ///
    /// # Panics
    /// Panics if no epoch is open.
    pub fn end_epoch(&mut self, device_tree_nodes: &[usize], layers: usize) -> &EpochRecord {
        let (idx, mut sw, snap) = self.current.take().expect("no epoch open");
        sw.stop();
        self.network.round();
        let sent = self.network.sent_since(&snap);
        let costs: Vec<f64> = device_tree_nodes
            .iter()
            .zip(&sent)
            .map(|(&nodes, &msgs)| self.cost_model.device_cost(nodes, layers, msgs))
            .collect();
        let total_messages = self.network.total_messages() - snap.total_messages;
        let n = self.network.num_devices().max(1) as f64;
        self.epochs.push(EpochRecord {
            epoch: idx,
            timing: EpochTiming {
                wall_secs: sw.secs(),
                makespan: epoch_makespan(&costs),
                mean_cost: epoch_mean_cost(&costs),
            },
            avg_messages_per_device: total_messages as f64 / n,
            total_messages,
        });
        self.epochs.last().expect("just pushed")
    }

    /// All completed epochs.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Mean wall seconds per epoch (Fig. 8b).
    pub fn avg_epoch_wall_secs(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.wall_secs).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Mean messages per device per epoch (Fig. 8a).
    pub fn avg_messages_per_device_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs
                .iter()
                .map(|e| e.avg_messages_per_device)
                .sum::<f64>()
                / self.epochs.len() as f64
        }
    }

    /// Mean modeled makespan per epoch.
    pub fn avg_epoch_makespan(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.makespan).sum::<f64>() / self.epochs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_lifecycle_records_messages_and_times() {
        let mut rt = Runtime::new(3, CostModel::default());
        rt.begin_epoch();
        rt.network.send(0, 1, 10);
        rt.network.send(1, 2, 10);
        rt.network.send(2, 0, 10);
        let rec = rt.end_epoch(&[4, 7, 10], 2).clone();
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.total_messages, 3);
        assert!((rec.avg_messages_per_device - 1.0).abs() < 1e-12);
        assert!(rec.timing.wall_secs >= 0.0);
        // Straggler: device 2 with 10 tree nodes dominates.
        let m = CostModel::default();
        assert!((rec.timing.makespan - m.device_cost(10, 2, 1)).abs() < 1e-9);
        assert_eq!(rt.epochs().len(), 1);
        assert_eq!(rt.network.rounds(), 1);
    }

    #[test]
    fn averages_across_epochs() {
        let mut rt = Runtime::new(2, CostModel::default());
        for _ in 0..3 {
            rt.begin_epoch();
            rt.network.send(0, 1, 1);
            rt.end_epoch(&[3, 3], 2);
        }
        assert!((rt.avg_messages_per_device_per_epoch() - 0.5).abs() < 1e-12);
        assert!(rt.avg_epoch_makespan() > 0.0);
        assert!(rt.avg_epoch_wall_secs() >= 0.0);
    }

    #[test]
    #[should_panic]
    fn nested_epochs_panic() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.begin_epoch();
        rt.begin_epoch();
    }

    #[test]
    #[should_panic]
    fn end_without_begin_panics() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.end_epoch(&[1], 1);
    }
}
