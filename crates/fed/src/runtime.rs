//! The synchronous federated round engine.
//!
//! Lumos "is a synchronized federated framework that operates in rounds and
//! has to receive all the required updates to start the next round"
//! (§IV-B). The engine owns the network ledger and the per-epoch timing
//! records the system-cost experiments consume.

use lumos_common::timer::Stopwatch;
use lumos_sim::{simulate_epoch, DeviceProfile, DeviceWork, EpochStats};

use crate::clock::{epoch_makespan, epoch_mean_cost, CostModel, EpochTiming};
use crate::network::{NetworkSnapshot, SimNetwork};

/// Record of one completed epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Timing (measured + modeled).
    pub timing: EpochTiming,
    /// Average device-to-device messages per device during this epoch.
    pub avg_messages_per_device: f64,
    /// Total messages during this epoch.
    pub total_messages: u64,
    /// Event-driven simulation of this epoch (present when the runtime has
    /// device profiles; prices each device by its own capabilities instead
    /// of the global [`CostModel`]).
    pub sim: Option<EpochStats>,
}

/// Synchronous round engine owning the network and epoch log.
#[derive(Debug)]
pub struct Runtime {
    /// The simulated network.
    pub network: SimNetwork,
    cost_model: CostModel,
    profiles: Option<Vec<DeviceProfile>>,
    epochs: Vec<EpochRecord>,
    current: Option<(usize, Stopwatch, NetworkSnapshot)>,
}

impl Runtime {
    /// Creates a runtime for `n` devices priced by the global cost model.
    pub fn new(n: usize, cost_model: CostModel) -> Self {
        Self {
            network: SimNetwork::new(n),
            cost_model,
            profiles: None,
            epochs: Vec::new(),
            current: None,
        }
    }

    /// Creates a runtime whose epochs are additionally priced per-device by
    /// `profiles` through the `lumos-sim` discrete-event simulator.
    ///
    /// # Panics
    /// Panics if `profiles.len() != n`.
    pub fn with_profiles(n: usize, cost_model: CostModel, profiles: Vec<DeviceProfile>) -> Self {
        let mut rt = Self::new(n, cost_model);
        rt.set_profiles(profiles);
        rt
    }

    /// Installs (or replaces) the device profiles used by subsequent
    /// epochs. Scenarios with churn call this every round.
    ///
    /// # Panics
    /// Panics if the profile count does not match the device count.
    pub fn set_profiles(&mut self, profiles: Vec<DeviceProfile>) {
        assert_eq!(
            profiles.len(),
            self.network.num_devices(),
            "one profile per device"
        );
        self.profiles = Some(profiles);
    }

    /// The device profiles, if the profile-aware path is active.
    pub fn profiles(&self) -> Option<&[DeviceProfile]> {
        self.profiles.as_deref()
    }

    /// Per-device fixed-point tree-node costs (virtual µs) derived from the
    /// installed profiles — the price vector the `VirtualSecs` balance
    /// objective feeds to the tree constructor. `None` on the plain
    /// cost-model path, where every device is interchangeable and the
    /// node-count objective is exact.
    pub fn node_costs_micros(&self, layers: usize, embedding_bytes: u64) -> Option<Vec<u64>> {
        self.profiles.as_ref().map(|ps| {
            ps.iter()
                .map(|p| p.micros_per_tree_node(layers, embedding_bytes))
                .collect()
        })
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Begins an epoch: starts the wall timer and snapshots the ledger.
    ///
    /// # Panics
    /// Panics if an epoch is already open.
    pub fn begin_epoch(&mut self) {
        assert!(self.current.is_none(), "previous epoch still open");
        let idx = self.epochs.len();
        self.current = Some((idx, Stopwatch::started(), self.network.snapshot()));
    }

    /// Ends the open epoch. `device_tree_nodes` and `layers` feed the
    /// straggler cost model; message counts are read from the ledger delta.
    ///
    /// # Panics
    /// Panics if no epoch is open.
    pub fn end_epoch(&mut self, device_tree_nodes: &[usize], layers: usize) -> &EpochRecord {
        let (idx, mut sw, snap) = self.current.take().expect("no epoch open");
        sw.stop();
        self.network.round();
        let sent = self.network.sent_since(&snap);
        let costs: Vec<f64> = device_tree_nodes
            .iter()
            .zip(&sent)
            .map(|(&nodes, &msgs)| self.cost_model.device_cost(nodes, layers, msgs))
            .collect();
        let total_messages = self.network.total_messages() - snap.total_messages;
        let n = self.network.num_devices().max(1) as f64;
        let sim = self.profiles.as_ref().map(|profiles| {
            let bytes_out = self.network.bytes_sent_since(&snap);
            let bytes_in = self.network.bytes_received_since(&snap);
            let work: Vec<DeviceWork> = device_tree_nodes
                .iter()
                .enumerate()
                .map(|(d, &nodes)| DeviceWork {
                    compute_units: (nodes * layers) as f64,
                    messages_out: sent.get(d).copied().unwrap_or(0),
                    bytes_out: bytes_out[d],
                    bytes_in: bytes_in[d],
                })
                .collect();
            simulate_epoch(profiles, &work)
        });
        self.epochs.push(EpochRecord {
            epoch: idx,
            timing: EpochTiming {
                wall_secs: sw.secs(),
                makespan: epoch_makespan(&costs),
                mean_cost: epoch_mean_cost(&costs),
            },
            avg_messages_per_device: total_messages as f64 / n,
            total_messages,
            sim,
        });
        self.epochs.last().expect("just pushed")
    }

    /// All completed epochs.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Mean wall seconds per epoch (Fig. 8b).
    pub fn avg_epoch_wall_secs(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.wall_secs).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Mean messages per device per epoch (Fig. 8a).
    pub fn avg_messages_per_device_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs
                .iter()
                .map(|e| e.avg_messages_per_device)
                .sum::<f64>()
                / self.epochs.len() as f64
        }
    }

    /// Mean modeled makespan per epoch.
    pub fn avg_epoch_makespan(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.makespan).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Epochs that carry an event-driven simulation record.
    fn sim_epochs(&self) -> impl Iterator<Item = &EpochStats> {
        self.epochs.iter().filter_map(|e| e.sim.as_ref())
    }

    /// Total simulated (virtual) seconds across all profiled epochs.
    pub fn total_sim_secs(&self) -> f64 {
        self.sim_epochs().map(|s| s.makespan_secs).sum()
    }

    /// Mean simulated seconds per profiled epoch.
    pub fn avg_sim_epoch_secs(&self) -> f64 {
        let n = self.sim_epochs().count();
        if n == 0 {
            0.0
        } else {
            self.total_sim_secs() / n as f64
        }
    }

    /// The straggler of each profiled epoch, in epoch order.
    pub fn straggler_sequence(&self) -> Vec<u32> {
        self.sim_epochs().filter_map(|s| s.straggler).collect()
    }

    /// Mean device utilization across profiled epochs (busy / makespan).
    pub fn mean_sim_utilization(&self) -> f64 {
        let n = self.sim_epochs().count();
        if n == 0 {
            0.0
        } else {
            self.sim_epochs().map(|s| s.mean_utilization()).sum::<f64>() / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_lifecycle_records_messages_and_times() {
        let mut rt = Runtime::new(3, CostModel::default());
        rt.begin_epoch();
        rt.network.send(0, 1, 10);
        rt.network.send(1, 2, 10);
        rt.network.send(2, 0, 10);
        let rec = rt.end_epoch(&[4, 7, 10], 2).clone();
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.total_messages, 3);
        assert!((rec.avg_messages_per_device - 1.0).abs() < 1e-12);
        assert!(rec.timing.wall_secs >= 0.0);
        // Straggler: device 2 with 10 tree nodes dominates.
        let m = CostModel::default();
        assert!((rec.timing.makespan - m.device_cost(10, 2, 1)).abs() < 1e-9);
        assert_eq!(rt.epochs().len(), 1);
        assert_eq!(rt.network.rounds(), 1);
    }

    #[test]
    fn averages_across_epochs() {
        let mut rt = Runtime::new(2, CostModel::default());
        for _ in 0..3 {
            rt.begin_epoch();
            rt.network.send(0, 1, 1);
            rt.end_epoch(&[3, 3], 2);
        }
        assert!((rt.avg_messages_per_device_per_epoch() - 0.5).abs() < 1e-12);
        assert!(rt.avg_epoch_makespan() > 0.0);
        assert!(rt.avg_epoch_wall_secs() >= 0.0);
    }

    #[test]
    fn cost_model_path_records_no_sim() {
        let mut rt = Runtime::new(2, CostModel::default());
        rt.begin_epoch();
        let rec = rt.end_epoch(&[3, 3], 2).clone();
        assert!(rec.sim.is_none());
        assert_eq!(rt.total_sim_secs(), 0.0);
        assert!(rt.straggler_sequence().is_empty());
    }

    #[test]
    fn profile_path_prices_devices_individually() {
        // Two equal workloads, but device 1 computes 100× slower: the
        // global cost model sees identical devices while the profile path
        // names device 1 the straggler.
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 100.0;
        let mut rt = Runtime::with_profiles(2, CostModel::default(), profiles);
        rt.begin_epoch();
        rt.network.send(0, 1, 64);
        rt.network.send(1, 0, 64);
        let rec = rt.end_epoch(&[10, 10], 2).clone();
        let sim = rec.sim.expect("profile path must simulate");
        assert_eq!(sim.straggler, Some(1));
        assert!(sim.busy_secs[1] > sim.busy_secs[0]);
        assert!(rt.total_sim_secs() > 0.0);
        assert_eq!(rt.straggler_sequence(), vec![1]);
        assert!(rt.avg_sim_epoch_secs() > 0.0);
        assert!(rt.mean_sim_utilization() > 0.0 && rt.mean_sim_utilization() <= 1.0);
        // The global model still prices both devices identically.
        assert!((rec.timing.makespan - rec.timing.mean_cost).abs() < 1e-12);
    }

    #[test]
    fn node_costs_follow_profiles() {
        let mut rt = Runtime::new(2, CostModel::default());
        assert_eq!(rt.node_costs_micros(2, 64), None);
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 10.0;
        rt.set_profiles(profiles.clone());
        let costs = rt.node_costs_micros(2, 64).expect("profiles installed");
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0], profiles[0].micros_per_tree_node(2, 64));
        assert!(costs[1] > costs[0], "slower device must cost more µs/node");
    }

    #[test]
    fn profile_epochs_are_deterministic() {
        let run = || {
            let mut profiles = vec![DeviceProfile::baseline(); 3];
            profiles[2].uplink_bytes_per_sec /= 7.0;
            let mut rt = Runtime::with_profiles(3, CostModel::default(), profiles);
            for _ in 0..4 {
                rt.begin_epoch();
                rt.network.send(0, 1, 100);
                rt.network.send(2, 0, 300);
                rt.end_epoch(&[5, 6, 7], 2);
            }
            (rt.total_sim_secs(), rt.straggler_sequence())
        };
        let (a_secs, a_seq) = run();
        let (b_secs, b_seq) = run();
        assert_eq!(a_secs.to_bits(), b_secs.to_bits());
        assert_eq!(a_seq, b_seq);
    }

    #[test]
    #[should_panic]
    fn mismatched_profile_count_panics() {
        Runtime::with_profiles(3, CostModel::default(), vec![DeviceProfile::baseline(); 2]);
    }

    #[test]
    #[should_panic]
    fn nested_epochs_panic() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.begin_epoch();
        rt.begin_epoch();
    }

    #[test]
    #[should_panic]
    fn end_without_begin_panics() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.end_epoch(&[1], 1);
    }
}
