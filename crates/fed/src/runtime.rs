//! The synchronous federated round engine.
//!
//! Lumos "is a synchronized federated framework that operates in rounds and
//! has to receive all the required updates to start the next round"
//! (§IV-B). The engine owns the network ledger and the per-epoch timing
//! records the system-cost experiments consume. Epoch timing is priced
//! per destination: the ledger's `(sender → receiver)` deltas become
//! per-sender inbound contributions, so a receiver's drain waits for its
//! actual senders instead of being self-timed from its own burst.

use lumos_common::timer::Stopwatch;
use lumos_sim::{
    AggregationPolicy, Control, DeviceProfile, DeviceWork, EpochStats, EventDrivenRuntime,
    FaultPlan, Inbound, RoundPolicy,
};
use lumos_topo::{tier_timing, tier_timing_failover, Topology};

use crate::clock::{epoch_makespan, epoch_mean_cost, CostModel, EpochTiming};
use crate::network::{NetworkSnapshot, SimNetwork};

/// Default wire size assumed when pricing one tree node's per-epoch
/// traffic (a pooled 16-float embedding).
pub const DEFAULT_EMBEDDING_BYTES: u64 = 16 * 4;

/// Price multiplier for tree nodes hosted on a currently-unavailable
/// device: its retained nodes still exist, but every round it sits out
/// stalls that work until rejoin. (Pricing absent devices at their nominal
/// rate was the stale-cost bug — a churned fleet priced bit-identically to
/// the frozen initial fleet.)
pub const UNAVAILABLE_COST_FACTOR: u64 = 4;

/// Builds the per-device [`DeviceWork`] of the epoch between `snap` and the
/// network's current counters: compute from the tree-node counts, outbound
/// traffic from the per-device ledger deltas, and the inbound side as the
/// per-sender `(sender, bytes)` contributions of the edge ledger.
///
/// # Panics
/// Panics if `device_tree_nodes` does not have exactly one entry per
/// device. (The old zip-based construction silently truncated on a length
/// mismatch, quietly mis-timing every epoch after a bad caller.)
pub fn ledger_work(
    network: &SimNetwork,
    snap: &NetworkSnapshot,
    device_tree_nodes: &[usize],
    layers: usize,
) -> Vec<DeviceWork> {
    assert_eq!(
        device_tree_nodes.len(),
        network.num_devices(),
        "one tree-node count per device: got {} counts for {} devices — \
         a mismatched workload vector would silently truncate the epoch's work",
        device_tree_nodes.len(),
        network.num_devices(),
    );
    let sent = network.sent_since(snap);
    let bytes_out = network.bytes_sent_since(snap);
    if network.is_sharded() {
        // The compact sharded ledger keeps no per-edge map, so the
        // inbound side degrades to the aggregate (self-timed) schedule —
        // the deliberate memory-for-precision trade at 10⁵+ devices.
        let bytes_in = network.bytes_received_since(snap);
        return device_tree_nodes
            .iter()
            .enumerate()
            .map(|(d, &nodes)| DeviceWork {
                compute_units: (nodes * layers) as f64,
                messages_out: sent[d],
                bytes_out: bytes_out[d],
                inbound: Inbound::Aggregate(bytes_in[d]),
            })
            .collect();
    }
    let inbound = network.received_matrix_since(snap);
    device_tree_nodes
        .iter()
        .zip(inbound)
        .enumerate()
        .map(|(d, (&nodes, from))| DeviceWork {
            compute_units: (nodes * layers) as f64,
            messages_out: sent[d],
            bytes_out: bytes_out[d],
            inbound: Inbound::PerSender(from),
        })
        .collect()
}

/// The aggregator tier of a hierarchical topology, as the runtime prices
/// it: which shard each device reports to, the profile every edge
/// aggregator uploads with, and the wire size of one pooled partial.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// The device → aggregator partition.
    pub topology: Topology,
    /// Profile the aggregators upload to the server with.
    pub aggregator: DeviceProfile,
    /// Bytes of one aggregator partial (the server's per-round inbound
    /// traffic is `aggregators × partial_bytes`).
    pub partial_bytes: u64,
}

/// Record of one completed epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Timing (measured + modeled).
    pub timing: EpochTiming,
    /// Average device-to-device messages per device during this epoch.
    pub avg_messages_per_device: f64,
    /// Total messages during this epoch.
    pub total_messages: u64,
    /// Event-driven simulation of this epoch (present when the runtime has
    /// device profiles; prices each device by its own capabilities instead
    /// of the global [`CostModel`]).
    pub sim: Option<EpochStats>,
    /// The live per-node price vector (virtual µs) this epoch ran under —
    /// re-priced from the fleet as installed for *this* round, so churned
    /// availability shows up instead of the frozen round-0 prices. `None`
    /// on the plain cost-model path.
    pub node_costs_micros: Option<Vec<u64>>,
    /// Devices that left this epoch's barrier: dropped by the aggregation
    /// deadline under the cut policies, or carried into a later round by
    /// the async quorum (empty under the full-sync barrier).
    pub late: Vec<u32>,
}

/// One carry-over batch: sends suppressed in the round that produced them
/// (the sender was past the deadline) that physically land
/// `rounds_remaining` rounds from now.
#[derive(Debug, Clone)]
struct DeferredSends {
    rounds_remaining: u32,
    /// `(from, to, bytes)`; `to == SimNetwork::SERVER` marks device→server.
    sends: Vec<(u32, u32, u64)>,
}

/// Synchronous round engine owning the network and epoch log.
#[derive(Debug)]
pub struct Runtime {
    /// The simulated network.
    pub network: SimNetwork,
    cost_model: CostModel,
    profiles: Option<Vec<DeviceProfile>>,
    embedding_bytes: u64,
    epochs: Vec<EpochRecord>,
    late_drops: u64,
    current: Option<(usize, Stopwatch, NetworkSnapshot)>,
    deferred: Vec<DeferredSends>,
    tier: Option<TierSpec>,
    tier2_secs: f64,
    /// The compiled fault outcomes of the round being closed; consumed
    /// (taken) by the next `close_epoch`. `None` — the default — prices
    /// a fault-free round, bit-identical to the seed.
    fault_plan: Option<FaultPlan>,
    /// The round's aggregator failover map (`Topology::failover_map`
    /// output); `None` routes every shard to itself.
    rehome: Option<Vec<u32>>,
}

impl Runtime {
    /// Creates a runtime for `n` devices priced by the global cost model.
    pub fn new(n: usize, cost_model: CostModel) -> Self {
        Self {
            network: SimNetwork::new(n),
            cost_model,
            profiles: None,
            embedding_bytes: DEFAULT_EMBEDDING_BYTES,
            epochs: Vec::new(),
            late_drops: 0,
            current: None,
            deferred: Vec::new(),
            tier: None,
            tier2_secs: 0.0,
            fault_plan: None,
            rehome: None,
        }
    }

    /// Installs the current round's compiled fault outcomes. The plan is
    /// consumed by the next epoch close — callers compile one plan per
    /// round, so a stale plan can never leak into a later round.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Installs (or clears) the round's aggregator failover map: when
    /// present, tier-2 timing folds each outaged shard's members into
    /// their successor aggregator ([`tier_timing_failover`]). Keep it in
    /// sync with [`SimNetwork::set_rehome`] so timing and the ledger
    /// agree on who served the round.
    pub fn set_failover(&mut self, rehome: Option<Vec<u32>>) {
        self.rehome = rehome;
    }

    /// Installs the aggregator tier: subsequent profiled epochs compose
    /// aggregator → server delivery on top of the device-tier schedule,
    /// extending each epoch's makespan to the last aggregator partial's
    /// arrival. Only meaningful with ≥ 2 aggregators — the trainer never
    /// installs a single-aggregator tier, because that resolves to the
    /// flat topology (`TopologyConfig::effective`).
    ///
    /// # Panics
    /// Panics if the topology's fleet size disagrees with the network's.
    pub fn set_tier(&mut self, tier: TierSpec) {
        assert_eq!(
            tier.topology.num_devices(),
            self.network.num_devices(),
            "tier topology and network disagree on fleet size"
        );
        self.tier = Some(tier);
    }

    /// The installed aggregator tier, if hierarchical.
    pub fn tier(&self) -> Option<&TierSpec> {
        self.tier.as_ref()
    }

    /// Total virtual seconds the aggregator → server tier added across
    /// profiled epochs (how much of the makespan the extra hop cost).
    pub fn total_tier2_secs(&self) -> f64 {
        self.tier2_secs
    }

    /// Creates a runtime whose epochs are additionally priced per-device by
    /// `profiles` through the `lumos-sim` discrete-event simulator.
    ///
    /// # Panics
    /// Panics if `profiles.len() != n`.
    pub fn with_profiles(n: usize, cost_model: CostModel, profiles: Vec<DeviceProfile>) -> Self {
        let mut rt = Self::new(n, cost_model);
        rt.set_profiles(profiles);
        rt
    }

    /// Installs (or replaces) the device profiles used by subsequent
    /// epochs. Scenarios with churn call this every round.
    ///
    /// # Panics
    /// Panics if the profile count does not match the device count.
    pub fn set_profiles(&mut self, profiles: Vec<DeviceProfile>) {
        assert_eq!(
            profiles.len(),
            self.network.num_devices(),
            "one profile per device"
        );
        self.profiles = Some(profiles);
    }

    /// The device profiles, if the profile-aware path is active.
    pub fn profiles(&self) -> Option<&[DeviceProfile]> {
        self.profiles.as_deref()
    }

    /// Sets the wire size used when re-pricing node costs per epoch
    /// (defaults to [`DEFAULT_EMBEDDING_BYTES`]).
    pub fn set_embedding_bytes(&mut self, bytes: u64) {
        self.embedding_bytes = bytes;
    }

    /// Per-device fixed-point tree-node costs (virtual µs) derived from the
    /// installed profiles — the price vector the `VirtualSecs` balance
    /// objective feeds to the tree constructor. Prices come from the *live*
    /// fleet: a device currently sitting out (churn) costs
    /// [`UNAVAILABLE_COST_FACTOR`] × its nominal price. `None` on the plain
    /// cost-model path, where every device is interchangeable and the
    /// node-count objective is exact.
    pub fn node_costs_micros(&self, layers: usize, embedding_bytes: u64) -> Option<Vec<u64>> {
        self.profiles.as_ref().map(|ps| {
            ps.iter()
                .map(|p| {
                    let nominal = p.micros_per_tree_node(layers, embedding_bytes);
                    if p.available {
                        nominal
                    } else {
                        nominal.saturating_mul(UNAVAILABLE_COST_FACTOR)
                    }
                })
                .collect()
        })
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Begins an epoch: starts the wall timer and snapshots the ledger.
    ///
    /// # Panics
    /// Panics if an epoch is already open.
    pub fn begin_epoch(&mut self) {
        assert!(self.current.is_none(), "previous epoch still open");
        let idx = self.epochs.len();
        self.current = Some((idx, Stopwatch::started(), self.network.snapshot()));
    }

    /// Ends the open epoch under the full-sync barrier. `device_tree_nodes`
    /// and `layers` feed the straggler cost model; traffic is read from the
    /// ledger's per-edge deltas.
    ///
    /// # Panics
    /// Panics if no epoch is open or if `device_tree_nodes` does not have
    /// one entry per device.
    pub fn end_epoch(&mut self, device_tree_nodes: &[usize], layers: usize) -> &EpochRecord {
        self.end_epoch_dropping(device_tree_nodes, layers, &[])
    }

    /// Ends the open epoch with `late` devices dropped by the aggregation
    /// deadline: their updates were discarded, so their events no longer
    /// gate the synchronous barrier — they are simulated as absent this
    /// epoch and tallied into [`Runtime::late_drops`].
    ///
    /// # Panics
    /// Panics if no epoch is open, if `device_tree_nodes` does not have one
    /// entry per device, or if `late` names a device id out of range.
    pub fn end_epoch_dropping(
        &mut self,
        device_tree_nodes: &[usize],
        layers: usize,
        late: &[u32],
    ) -> &EpochRecord {
        self.late_drops += late.len() as u64;
        self.close_epoch(device_tree_nodes, layers, late, None)
    }

    /// Ends the open epoch under the barrier-free async quorum
    /// ([`AggregationPolicy::Async`]): the round closes the moment
    /// `min_updates` updates have landed, so the simulated makespan is the
    /// quorum landing time, not the slowest device's. `carried` names the
    /// devices whose updates are riding the staleness buffer into a later
    /// round this epoch — they are simulated as absent (their traffic was
    /// deferred, not sent) and recorded in [`EpochRecord::late`], but they
    /// are **not** tallied into [`Runtime::late_drops`]: nothing is
    /// discarded under the quorum, only deferred.
    ///
    /// # Panics
    /// Panics if no epoch is open, if `device_tree_nodes` does not have one
    /// entry per device, if `carried` names a device id out of range, or if
    /// `min_updates` is zero.
    pub fn end_epoch_closing(
        &mut self,
        device_tree_nodes: &[usize],
        layers: usize,
        carried: &[u32],
        min_updates: usize,
    ) -> &EpochRecord {
        self.close_epoch(device_tree_nodes, layers, carried, Some(min_updates))
    }

    /// Shared epoch-closing core: prices the ledger window, runs the
    /// event-driven simulation (with `quorum` as the round-closing handler
    /// when present, the uninterrupted barrier otherwise), extends timing
    /// with the aggregator tier, and pushes the [`EpochRecord`].
    fn close_epoch(
        &mut self,
        device_tree_nodes: &[usize],
        layers: usize,
        late: &[u32],
        quorum: Option<usize>,
    ) -> &EpochRecord {
        let (idx, mut sw, snap) = self.current.take().expect("no epoch open");
        sw.stop();
        self.network.round();
        assert_eq!(
            device_tree_nodes.len(),
            self.network.num_devices(),
            "one tree-node count per device: got {} counts for {} devices — \
             a mismatched workload vector would silently truncate the epoch's costs",
            device_tree_nodes.len(),
            self.network.num_devices(),
        );
        let sent = self.network.sent_since(&snap);
        let costs: Vec<f64> = device_tree_nodes
            .iter()
            .zip(&sent)
            .map(|(&nodes, &msgs)| self.cost_model.device_cost(nodes, layers, msgs))
            .collect();
        let total_messages = self.network.total_messages() - snap.total_messages;
        let n = self.network.num_devices().max(1) as f64;
        let plan = self.fault_plan.take();
        let mut sim = self.profiles.as_ref().map(|profiles| {
            let work = ledger_work(&self.network, &snap, device_tree_nodes, layers);
            let schedule = if late.is_empty() {
                EventDrivenRuntime::new_with_faults(profiles, &work, plan.as_ref())
            } else {
                let mut overlay = profiles.clone();
                for &d in late {
                    overlay[d as usize].available = false;
                }
                EventDrivenRuntime::new_with_faults(&overlay, &work, plan.as_ref())
            };
            match quorum {
                Some(min_updates) => {
                    let mut closer =
                        RoundPolicy::new(&AggregationPolicy::Async { min_updates }, &schedule);
                    schedule.run(|t, ev| closer.on_event(t, ev))
                }
                None => schedule.run(|_, _| Control::Continue),
            }
        });
        if let (Some(stats), Some(tier)) = (sim.as_mut(), self.tier.as_ref()) {
            // Hierarchical: the round closes when the last aggregator
            // partial lands at the server, not when the last device-tier
            // event fires. Under an aggregator outage the re-homed shards
            // fold into their successors before the hop is priced.
            let t2 = match self.rehome.as_ref() {
                Some(map) => tier_timing_failover(
                    stats,
                    &tier.topology,
                    &tier.aggregator,
                    tier.partial_bytes,
                    map,
                ),
                None => tier_timing(stats, &tier.topology, &tier.aggregator, tier.partial_bytes),
            };
            let extended = stats.makespan_secs.max(t2.server_makespan_secs);
            self.tier2_secs += extended - stats.makespan_secs;
            stats.makespan_secs = extended;
        }
        self.epochs.push(EpochRecord {
            epoch: idx,
            timing: EpochTiming {
                wall_secs: sw.secs(),
                makespan: epoch_makespan(&costs),
                mean_cost: epoch_mean_cost(&costs),
            },
            avg_messages_per_device: total_messages as f64 / n,
            total_messages,
            sim,
            node_costs_micros: self.node_costs_micros(layers, self.embedding_bytes),
            late: late.to_vec(),
        });
        self.epochs.last().expect("just pushed")
    }

    /// Queues a late device's suppressed sends for delivery `rounds` rounds
    /// from now (the buffered policy's carry-over ledger segment: traffic
    /// is accounted in the round where the stale update actually arrives,
    /// not the round whose barrier it missed). `to == SimNetwork::SERVER`
    /// marks a device→server message.
    ///
    /// # Panics
    /// Panics if `rounds` is 0 — a zero-round deferral would mean the
    /// update was not late at all.
    pub fn defer_sends(&mut self, rounds: u32, sends: Vec<(u32, u32, u64)>) {
        assert!(rounds >= 1, "a deferred send must wait at least one round");
        if sends.is_empty() {
            return;
        }
        self.deferred.push(DeferredSends {
            rounds_remaining: rounds,
            sends,
        });
    }

    /// Ages the carry-over segment by one round and injects every send
    /// arriving now into the network ledger. Call right after
    /// [`Runtime::begin_epoch`], so the traffic lands inside the opening
    /// epoch's ledger deltas (its receivers pay the drain time this round;
    /// the stale senders are overlaid absent, so their bytes are staged
    /// rather than barrier-gating). Returns the number of injected sends.
    pub fn carry_in(&mut self) -> u64 {
        let mut injected = 0u64;
        let mut still_waiting = Vec::with_capacity(self.deferred.len());
        for mut batch in std::mem::take(&mut self.deferred) {
            batch.rounds_remaining -= 1;
            if batch.rounds_remaining == 0 {
                for &(from, to, bytes) in &batch.sends {
                    if to == SimNetwork::SERVER {
                        self.network.send_to_server(from, bytes);
                    } else {
                        self.network.send(from, to, bytes);
                    }
                    injected += 1;
                }
            } else {
                still_waiting.push(batch);
            }
        }
        self.deferred = still_waiting;
        injected
    }

    /// Sends still waiting in the carry-over segment.
    pub fn deferred_sends(&self) -> usize {
        self.deferred.iter().map(|b| b.sends.len()).sum()
    }

    /// All completed epochs.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Total device-rounds dropped by the aggregation deadline so far.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Mean wall seconds per epoch (Fig. 8b).
    pub fn avg_epoch_wall_secs(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.wall_secs).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Mean messages per device per epoch (Fig. 8a).
    pub fn avg_messages_per_device_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs
                .iter()
                .map(|e| e.avg_messages_per_device)
                .sum::<f64>()
                / self.epochs.len() as f64
        }
    }

    /// Mean modeled makespan per epoch.
    pub fn avg_epoch_makespan(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.epochs.iter().map(|e| e.timing.makespan).sum::<f64>() / self.epochs.len() as f64
        }
    }

    /// Epochs that carry an event-driven simulation record.
    fn sim_epochs(&self) -> impl Iterator<Item = &EpochStats> {
        self.epochs.iter().filter_map(|e| e.sim.as_ref())
    }

    /// Total simulated (virtual) seconds across all profiled epochs.
    pub fn total_sim_secs(&self) -> f64 {
        self.sim_epochs().map(|s| s.makespan_secs).sum()
    }

    /// Mean simulated seconds per profiled epoch.
    pub fn avg_sim_epoch_secs(&self) -> f64 {
        let n = self.sim_epochs().count();
        if n == 0 {
            0.0
        } else {
            self.total_sim_secs() / n as f64
        }
    }

    /// The straggler of each profiled epoch, in epoch order.
    pub fn straggler_sequence(&self) -> Vec<u32> {
        self.sim_epochs().filter_map(|s| s.straggler).collect()
    }

    /// Mean device utilization across profiled epochs (busy / makespan).
    pub fn mean_sim_utilization(&self) -> f64 {
        let n = self.sim_epochs().count();
        if n == 0 {
            0.0
        } else {
            self.sim_epochs().map(|s| s.mean_utilization()).sum::<f64>() / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_lifecycle_records_messages_and_times() {
        let mut rt = Runtime::new(3, CostModel::default());
        rt.begin_epoch();
        rt.network.send(0, 1, 10);
        rt.network.send(1, 2, 10);
        rt.network.send(2, 0, 10);
        let rec = rt.end_epoch(&[4, 7, 10], 2).clone();
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.total_messages, 3);
        assert!((rec.avg_messages_per_device - 1.0).abs() < 1e-12);
        assert!(rec.timing.wall_secs >= 0.0);
        assert!(rec.node_costs_micros.is_none());
        assert!(rec.late.is_empty());
        // Straggler: device 2 with 10 tree nodes dominates.
        let m = CostModel::default();
        assert!((rec.timing.makespan - m.device_cost(10, 2, 1)).abs() < 1e-9);
        assert_eq!(rt.epochs().len(), 1);
        assert_eq!(rt.network.rounds(), 1);
    }

    #[test]
    fn averages_across_epochs() {
        let mut rt = Runtime::new(2, CostModel::default());
        for _ in 0..3 {
            rt.begin_epoch();
            rt.network.send(0, 1, 1);
            rt.end_epoch(&[3, 3], 2);
        }
        assert!((rt.avg_messages_per_device_per_epoch() - 0.5).abs() < 1e-12);
        assert!(rt.avg_epoch_makespan() > 0.0);
        assert!(rt.avg_epoch_wall_secs() >= 0.0);
    }

    #[test]
    fn cost_model_path_records_no_sim() {
        let mut rt = Runtime::new(2, CostModel::default());
        rt.begin_epoch();
        let rec = rt.end_epoch(&[3, 3], 2).clone();
        assert!(rec.sim.is_none());
        assert_eq!(rt.total_sim_secs(), 0.0);
        assert!(rt.straggler_sequence().is_empty());
    }

    #[test]
    fn profile_path_prices_devices_individually() {
        // Two equal workloads, but device 1 computes 100× slower: the
        // global cost model sees identical devices while the profile path
        // names device 1 the straggler.
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 100.0;
        let mut rt = Runtime::with_profiles(2, CostModel::default(), profiles);
        rt.begin_epoch();
        rt.network.send(0, 1, 64);
        rt.network.send(1, 0, 64);
        let rec = rt.end_epoch(&[10, 10], 2).clone();
        let sim = rec.sim.expect("profile path must simulate");
        assert_eq!(sim.straggler, Some(1));
        assert!(sim.busy_secs[1] > sim.busy_secs[0]);
        assert!(rt.total_sim_secs() > 0.0);
        assert_eq!(rt.straggler_sequence(), vec![1]);
        assert!(rt.avg_sim_epoch_secs() > 0.0);
        assert!(rt.mean_sim_utilization() > 0.0 && rt.mean_sim_utilization() <= 1.0);
        // The global model still prices both devices identically.
        assert!((rec.timing.makespan - rec.timing.mean_cost).abs() < 1e-12);
        // And the epoch carries the live price vector.
        let costs = rec.node_costs_micros.expect("profile path re-prices");
        assert!(costs[1] > costs[0]);
    }

    #[test]
    fn epoch_timing_is_per_destination() {
        // Device 0 is fast; its inbound bytes come from slow device 1. The
        // aggregate ledger used to time device 0's drain off its own burst;
        // the per-edge ledger makes it wait for device 1's delivery.
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 1000.0;
        let mut rt = Runtime::with_profiles(2, CostModel::default(), profiles.clone());
        rt.begin_epoch();
        rt.network.send(1, 0, 4096);
        let rec = rt.end_epoch(&[10, 10], 2).clone();
        let sim = rec.sim.expect("profile path must simulate");
        // Device 1 computes 20 units at 0.1/s = 200s, uploads 1s, latency;
        // device 0's one-second drain can only start after that.
        assert!(sim.makespan_secs > 201.0, "makespan {}", sim.makespan_secs);
        assert_eq!(sim.straggler, Some(0), "the waiting receiver closes");
        // Device 0's own critical path is tiny: almost all of its epoch is
        // the wait for its sender.
        assert!(sim.busy_secs[0] < 2.0);
        assert!(sim.idle_secs[0] > 199.0);
    }

    #[test]
    fn deadline_drops_shorten_the_barrier() {
        let mut profiles = vec![DeviceProfile::baseline(); 4];
        profiles[3].compute_rate /= 500.0;
        let run = |late: &[u32]| {
            let mut rt = Runtime::with_profiles(4, CostModel::default(), profiles.clone());
            rt.begin_epoch();
            for d in 0..4 {
                rt.network.send_to_server(d, 64);
            }
            let rec = rt.end_epoch_dropping(&[5, 5, 5, 5], 2, late).clone();
            (rec, rt.late_drops())
        };
        let (full, full_drops) = run(&[]);
        let (deadline, deadline_drops) = run(&[3]);
        assert_eq!(full_drops, 0);
        assert_eq!(deadline_drops, 1);
        assert_eq!(deadline.late, vec![3]);
        let (fs, ds) = (full.sim.unwrap(), deadline.sim.unwrap());
        assert!(
            ds.makespan_secs < fs.makespan_secs / 10.0,
            "dropping the straggler must shorten the barrier: {} vs {}",
            ds.makespan_secs,
            fs.makespan_secs
        );
        assert_eq!(ds.active_devices, 3, "the late device sat the round out");
        assert_eq!(fs.active_devices, 4);
    }

    #[test]
    fn async_quorum_closes_the_round_without_tallying_drops() {
        let mut profiles = vec![DeviceProfile::baseline(); 4];
        profiles[3].compute_rate /= 500.0;
        let round = |rt: &mut Runtime| {
            rt.begin_epoch();
            for d in 0..4 {
                rt.network.send_to_server(d, 64);
            }
        };
        let mut full_rt = Runtime::with_profiles(4, CostModel::default(), profiles.clone());
        round(&mut full_rt);
        let full = full_rt.end_epoch(&[5, 5, 5, 5], 2).clone();

        // Quorum of 3: the round closes at the third landing, long before
        // the straggler's — and nothing is tallied as dropped.
        let mut rt = Runtime::with_profiles(4, CostModel::default(), profiles.clone());
        round(&mut rt);
        let quorum = rt.end_epoch_closing(&[5, 5, 5, 5], 2, &[], 3).clone();
        assert_eq!(rt.late_drops(), 0, "the quorum drops nothing");
        assert!(quorum.late.is_empty());
        let (fs, qs) = (full.sim.unwrap(), quorum.sim.unwrap());
        assert!(
            qs.makespan_secs < fs.makespan_secs / 10.0,
            "the quorum must close before the straggler: {} vs {}",
            qs.makespan_secs,
            fs.makespan_secs
        );
        assert_eq!(qs.active_devices, 4, "everyone still computed");

        // A carried device rides the staleness buffer: absent from this
        // round's simulation, named in the record, still not a drop.
        let mut rt = Runtime::with_profiles(4, CostModel::default(), profiles.clone());
        round(&mut rt);
        let carried = rt.end_epoch_closing(&[5, 5, 5, 5], 2, &[3], 3).clone();
        assert_eq!(rt.late_drops(), 0);
        assert_eq!(carried.late, vec![3]);
        assert_eq!(carried.sim.unwrap().active_devices, 3);
    }

    #[test]
    fn tiered_epochs_extend_the_makespan_to_the_last_partial() {
        let profiles = vec![DeviceProfile::baseline(); 4];
        let run = |tier: bool| {
            let topo = Topology::contiguous(4, 2);
            let mut rt = Runtime::with_profiles(4, CostModel::default(), profiles.clone());
            if tier {
                rt.network = SimNetwork::new_sharded(topo.shard_vector());
                rt.set_tier(TierSpec {
                    topology: topo,
                    aggregator: DeviceProfile::baseline(),
                    partial_bytes: 64,
                });
            }
            rt.begin_epoch();
            for d in 0..4 {
                if tier {
                    rt.network.send_to_aggregator(d, 64);
                } else {
                    rt.network.send_to_server(d, 64);
                }
            }
            if tier {
                for k in 0..2 {
                    rt.network.send_aggregator_to_server(k, 64);
                }
            }
            let rec = rt.end_epoch(&[5, 5, 5, 5], 2).clone();
            (rec.sim.unwrap().makespan_secs, rt.total_tier2_secs())
        };
        let (flat, flat_t2) = run(false);
        let (tiered, t2) = run(true);
        assert_eq!(flat_t2, 0.0, "flat runs pay no tier-2 time");
        assert!(t2 > 0.0, "the aggregator hop must cost virtual time");
        assert!(
            tiered > flat,
            "tiered makespan {tiered} must extend past the device tier {flat}"
        );
        assert!((tiered - (flat + t2)).abs() < 1e-9);
    }

    #[test]
    fn sharded_ledger_work_uses_the_aggregate_schedule() {
        let mut net = SimNetwork::new_sharded(vec![0, 0, 1]);
        let snap = net.snapshot();
        net.send(0, 2, 100);
        net.send_to_aggregator(1, 64);
        let work = ledger_work(&net, &snap, &[3, 3, 3], 2);
        assert!(matches!(work[2].inbound, Inbound::Aggregate(100)));
        assert_eq!(work[1].messages_out, 1);
        assert_eq!(work[1].bytes_out, 64);
    }

    #[test]
    #[should_panic(expected = "disagree on fleet size")]
    fn mismatched_tier_panics() {
        let mut rt = Runtime::new(3, CostModel::default());
        rt.set_tier(TierSpec {
            topology: Topology::contiguous(4, 2),
            aggregator: DeviceProfile::baseline(),
            partial_bytes: 64,
        });
    }

    #[test]
    fn node_costs_follow_profiles() {
        let mut rt = Runtime::new(2, CostModel::default());
        assert_eq!(rt.node_costs_micros(2, 64), None);
        let mut profiles = vec![DeviceProfile::baseline(); 2];
        profiles[1].compute_rate /= 10.0;
        rt.set_profiles(profiles.clone());
        let costs = rt.node_costs_micros(2, 64).expect("profiles installed");
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0], profiles[0].micros_per_tree_node(2, 64));
        assert!(costs[1] > costs[0], "slower device must cost more µs/node");
    }

    #[test]
    fn churned_fleet_reprices_instead_of_staying_frozen() {
        // Regression for the stale-cost bug: costs were priced once from
        // the initial fleet, so a fleet whose availability churned kept the
        // frozen round-0 prices. Live pricing must differ.
        let profiles = vec![DeviceProfile::baseline(); 3];
        let mut rt = Runtime::with_profiles(3, CostModel::default(), profiles.clone());
        let frozen = rt.node_costs_micros(2, 64).unwrap();
        rt.begin_epoch();
        let first = rt
            .end_epoch(&[1, 1, 1], 2)
            .node_costs_micros
            .clone()
            .unwrap();
        assert_eq!(first, frozen, "round 0 runs on the initial fleet");
        // Churn: device 1 drops out before the next round.
        let mut churned = profiles.clone();
        churned[1].available = false;
        rt.set_profiles(churned);
        rt.begin_epoch();
        let live = rt
            .end_epoch(&[1, 1, 1], 2)
            .node_costs_micros
            .clone()
            .unwrap();
        assert_ne!(live, frozen, "churned availability must re-price");
        assert_eq!(live[1], frozen[1] * UNAVAILABLE_COST_FACTOR);
        assert_eq!(live[0], frozen[0]);
        // Rejoin restores the nominal price.
        rt.set_profiles(profiles);
        rt.begin_epoch();
        let back = rt
            .end_epoch(&[1, 1, 1], 2)
            .node_costs_micros
            .clone()
            .unwrap();
        assert_eq!(back, frozen);
    }

    #[test]
    fn profile_epochs_are_deterministic() {
        let run = || {
            let mut profiles = vec![DeviceProfile::baseline(); 3];
            profiles[2].uplink_bytes_per_sec /= 7.0;
            let mut rt = Runtime::with_profiles(3, CostModel::default(), profiles);
            for _ in 0..4 {
                rt.begin_epoch();
                rt.network.send(0, 1, 100);
                rt.network.send(2, 0, 300);
                rt.end_epoch(&[5, 6, 7], 2);
            }
            (rt.total_sim_secs(), rt.straggler_sequence())
        };
        let (a_secs, a_seq) = run();
        let (b_secs, b_seq) = run();
        assert_eq!(a_secs.to_bits(), b_secs.to_bits());
        assert_eq!(a_seq, b_seq);
    }

    #[test]
    fn deferred_sends_land_in_the_arrival_round() {
        let mut rt = Runtime::new(3, CostModel::default());
        // Round 0: device 2 was late; its two messages defer by 1 and 2
        // rounds respectively.
        rt.begin_epoch();
        assert_eq!(rt.carry_in(), 0);
        rt.defer_sends(1, vec![(2, 0, 64)]);
        rt.defer_sends(2, vec![(2, SimNetwork::SERVER, 64)]);
        assert_eq!(rt.deferred_sends(), 2);
        let r0 = rt.end_epoch(&[1, 1, 1], 2).total_messages;
        assert_eq!(r0, 0, "deferred traffic must not land early");
        // Round 1: the one-round deferral arrives.
        rt.begin_epoch();
        assert_eq!(rt.carry_in(), 1);
        let r1 = rt.end_epoch(&[1, 1, 1], 2).total_messages;
        assert_eq!(r1, 1);
        assert_eq!(rt.deferred_sends(), 1);
        // Round 2: the server-bound message arrives.
        rt.begin_epoch();
        assert_eq!(rt.carry_in(), 1);
        let r2 = rt.end_epoch(&[1, 1, 1], 2).total_messages;
        assert_eq!(r2, 1);
        assert_eq!(rt.deferred_sends(), 0);
    }

    #[test]
    fn empty_deferral_is_dropped() {
        let mut rt = Runtime::new(2, CostModel::default());
        rt.defer_sends(3, Vec::new());
        assert_eq!(rt.deferred_sends(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_round_deferral_panics() {
        let mut rt = Runtime::new(2, CostModel::default());
        rt.defer_sends(0, vec![(0, 1, 8)]);
    }

    #[test]
    #[should_panic]
    fn mismatched_profile_count_panics() {
        Runtime::with_profiles(3, CostModel::default(), vec![DeviceProfile::baseline(); 2]);
    }

    #[test]
    #[should_panic(expected = "one tree-node count per device")]
    fn mismatched_workload_vector_panics_instead_of_truncating() {
        // Regression: the zip-based epoch accounting silently dropped the
        // surplus devices when the workload vector was too short.
        let mut rt = Runtime::new(3, CostModel::default());
        rt.begin_epoch();
        rt.end_epoch(&[4, 7], 2);
    }

    #[test]
    #[should_panic(expected = "one tree-node count per device")]
    fn ledger_work_rejects_mismatched_lengths() {
        let net = SimNetwork::new(3);
        let snap = net.snapshot();
        ledger_work(&net, &snap, &[1, 2, 3, 4], 2);
    }

    #[test]
    #[should_panic]
    fn nested_epochs_panic() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.begin_epoch();
        rt.begin_epoch();
    }

    #[test]
    #[should_panic]
    fn end_without_begin_panics() {
        let mut rt = Runtime::new(1, CostModel::default());
        rt.end_epoch(&[1], 1);
    }
}
