//! `lumos-fed` — the federated runtime simulation.
//!
//! Devices are simulated in-process, but every message they would exchange
//! is recorded on a per-device ledger ([`network::SimNetwork`]), epochs run
//! synchronously through [`runtime::Runtime`], and the epoch wall time is
//! paired with a straggler-dominated makespan model ([`clock::CostModel`]) —
//! the quantities behind Figure 8's communication-round and training-time
//! comparisons.
//!
//! The runtime has two pricing paths: the global linear [`clock::CostModel`]
//! (every device identical — the paper's abstraction), and a profile-aware
//! path ([`Runtime::with_profiles`]) that feeds each epoch's per-edge
//! ledger deltas ([`runtime::ledger_work`]) through the `lumos-sim`
//! discrete-event simulator, so heterogeneous fleets report per-device
//! virtual timing, per-sender arrival-gated drains, and straggler
//! identities — and the deadline aggregation policy can drop late updates
//! from the barrier ([`Runtime::end_epoch_dropping`]).

#![forbid(unsafe_code)]
pub mod clock;
pub mod network;
pub mod runtime;

pub use clock::{epoch_makespan, epoch_mean_cost, CostModel, EpochTiming};
pub use network::{DeviceTraffic, EdgeTraffic, NetworkSnapshot, SimNetwork};
pub use runtime::{ledger_work, EpochRecord, Runtime, TierSpec, UNAVAILABLE_COST_FACTOR};
