//! Simulated inter-device network with per-device and per-edge accounting.
//!
//! Figure 8a reports the *average number of inter-device communication
//! rounds per device per epoch*; this ledger records every message the
//! protocols exchange so the harness can reproduce that series exactly.
//! Each message is additionally tallied on its `(sender → receiver)` edge:
//! the per-destination timing schedule needs to know *who* a device's
//! inbound bytes came from, because the drain cannot start before the
//! slowest of those senders has actually delivered. (The ledger used to
//! keep only aggregate per-device byte totals — the approximation that made
//! makespans optimistic whenever a fast receiver's senders were slow.)

use std::collections::BTreeMap;

/// Compact per-shard ledger used by hierarchical topologies.
///
/// At 10⁵–10⁶ devices the per-edge `BTreeMap` is the memory wall: one
/// entry per directed `(sender → receiver)` pair is O(edges). The
/// sharded ledger replaces it with two O(aggregators) tally arrays —
/// device-tier traffic into each shard's aggregator, and each
/// aggregator's partials to the server — so a sharded network is
/// O(devices + aggregators) regardless of how chatty the fleet is.
#[derive(Debug, Clone)]
struct ShardLedger {
    /// Shard (aggregator) each device reports to.
    shard_of: Vec<u32>,
    /// Device → aggregator traffic per shard.
    up: Vec<EdgeTraffic>,
    /// Aggregator → server traffic per shard.
    down: Vec<EdgeTraffic>,
    /// Failover routing for the current round: `rehome[k]` is the
    /// aggregator actually serving shard `k` (`Topology::failover_map`
    /// output). `None` — the default — routes every shard to itself.
    rehome: Option<Vec<u32>>,
}

/// Per-device communication tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceTraffic {
    /// Messages sent by this device.
    pub sent: u64,
    /// Messages received by this device.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received (from peers or the server).
    pub bytes_received: u64,
}

/// Tallies of one directed `(sender → receiver)` edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Messages carried by this edge.
    pub messages: u64,
    /// Payload bytes carried by this edge.
    pub bytes: u64,
}

/// The simulated network connecting `n` devices and a server.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    devices: Vec<DeviceTraffic>,
    /// Directed per-edge tallies keyed `(from, to)`; [`SimNetwork::SERVER`]
    /// stands in for the server on either end. A `BTreeMap` keeps every
    /// traversal deterministic.
    edges: BTreeMap<(u32, u32), EdgeTraffic>,
    server_received: u64,
    server_sent: u64,
    server_bytes_sent: u64,
    server_bytes_received: u64,
    rounds: u64,
    /// `Some` switches the ledger into compact sharded mode: device-to-
    /// device messages keep their per-device tallies but skip the
    /// per-edge map, and aggregator traffic is tallied per shard.
    sharded: Option<ShardLedger>,
}

impl SimNetwork {
    /// Endpoint id of the aggregation server in per-edge keys — aliased to
    /// the simulator's sentinel so ledger inbound lists and the timing
    /// schedule can never disagree about who the server is.
    pub const SERVER: u32 = lumos_sim::SERVER_SENDER;

    /// Creates a network for `n` devices.
    pub fn new(n: usize) -> Self {
        Self {
            devices: vec![DeviceTraffic::default(); n],
            edges: BTreeMap::new(),
            server_received: 0,
            server_sent: 0,
            server_bytes_sent: 0,
            server_bytes_received: 0,
            rounds: 0,
            sharded: None,
        }
    }

    /// Creates a network in compact sharded mode: `shard_of[d]` names the
    /// aggregator device `d` reports to. Memory stays
    /// O(devices + aggregators) — no per-edge map is kept, so inbound
    /// timing degrades to the aggregate schedule (`ledger_work` handles
    /// the switch).
    pub fn new_sharded(shard_of: Vec<u32>) -> Self {
        assert!(!shard_of.is_empty(), "sharded network needs devices");
        let aggregators = shard_of.iter().copied().max().unwrap() as usize + 1;
        let n = shard_of.len();
        let mut net = Self::new(n);
        net.sharded = Some(ShardLedger {
            shard_of,
            up: vec![EdgeTraffic::default(); aggregators],
            down: vec![EdgeTraffic::default(); aggregators],
            rehome: None,
        });
        net
    }

    /// Installs (or clears) the round's failover routing. With a map in
    /// place, [`SimNetwork::send_to_aggregator`] tallies each upload on
    /// the aggregator actually serving the sender's shard, so an outaged
    /// aggregator's ledger stays flat while its successor absorbs the
    /// traffic.
    ///
    /// # Panics
    /// Panics in flat mode, or if the map's length disagrees with the
    /// aggregator count.
    pub fn set_rehome(&mut self, rehome: Option<Vec<u32>>) {
        let s = self
            .sharded
            .as_mut()
            .expect("set_rehome requires a sharded network");
        if let Some(map) = &rehome {
            assert_eq!(
                map.len(),
                s.up.len(),
                "failover map and ledger disagree on aggregator count"
            );
        }
        s.rehome = rehome;
    }

    /// The aggregator actually serving `shard` this round (itself unless
    /// a failover map re-homes it).
    pub fn rehome_target(&self, shard: u32) -> u32 {
        self.sharded
            .as_ref()
            .and_then(|s| s.rehome.as_ref())
            .map_or(shard, |map| map[shard as usize])
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Whether the ledger runs in compact sharded mode.
    pub fn is_sharded(&self) -> bool {
        self.sharded.is_some()
    }

    /// Number of edge aggregators (0 in flat mode).
    pub fn num_aggregators(&self) -> usize {
        self.sharded.as_ref().map_or(0, |s| s.up.len())
    }

    /// Live ledger entry count — the memory the accounting structures
    /// actually hold: per-edge map entries in flat mode, the two
    /// per-shard tally arrays in sharded mode.
    pub fn ledger_entries(&self) -> usize {
        match &self.sharded {
            Some(s) => s.up.len() + s.down.len(),
            None => self.edges.len(),
        }
    }

    fn record_edge(&mut self, from: u32, to: u32, bytes: u64) {
        // Sharded mode keeps no per-edge map — that's the whole point.
        if self.sharded.is_some() {
            return;
        }
        let e = self.edges.entry((from, to)).or_default();
        e.messages += 1;
        e.bytes += bytes;
    }

    /// Records a device-to-device message.
    pub fn send(&mut self, from: u32, to: u32, bytes: u64) {
        let d = &mut self.devices[from as usize];
        d.sent += 1;
        d.bytes_sent += bytes;
        let r = &mut self.devices[to as usize];
        r.received += 1;
        r.bytes_received += bytes;
        self.record_edge(from, to, bytes);
    }

    /// Records a device-to-server message.
    pub fn send_to_server(&mut self, from: u32, bytes: u64) {
        let d = &mut self.devices[from as usize];
        d.sent += 1;
        d.bytes_sent += bytes;
        self.server_received += 1;
        self.server_bytes_received += bytes;
        self.record_edge(from, Self::SERVER, bytes);
    }

    /// Records a device's upload to its shard aggregator (hierarchical
    /// topologies only). Costs the device exactly what a server upload
    /// would — one message, `bytes` payload — but lands on the shard
    /// tally instead of the server: the server never sees it.
    pub fn send_to_aggregator(&mut self, from: u32, bytes: u64) {
        let shard = {
            let s = self
                .sharded
                .as_ref()
                .expect("send_to_aggregator requires a sharded network");
            let home = s.shard_of[from as usize];
            // Under failover the upload lands at the shard's successor.
            s.rehome.as_ref().map_or(home, |map| map[home as usize]) as usize
        };
        let d = &mut self.devices[from as usize];
        d.sent += 1;
        d.bytes_sent += bytes;
        let s = self.sharded.as_mut().unwrap();
        s.up[shard].messages += 1;
        s.up[shard].bytes += bytes;
    }

    /// Records one aggregator's pooled partial reaching the server. This
    /// is infrastructure traffic — it shows up in the server's inbound
    /// counters and the shard tally, not in any device's — so per-round
    /// server traffic is O(aggregators) by construction.
    pub fn send_aggregator_to_server(&mut self, shard: u32, bytes: u64) {
        let s = self
            .sharded
            .as_mut()
            .expect("send_aggregator_to_server requires a sharded network");
        let e = &mut s.down[shard as usize];
        e.messages += 1;
        e.bytes += bytes;
        self.server_received += 1;
        self.server_bytes_received += bytes;
    }

    /// Device-tier traffic into one shard's aggregator.
    pub fn shard_up(&self, shard: u32) -> EdgeTraffic {
        self.sharded
            .as_ref()
            .map_or_else(EdgeTraffic::default, |s| s.up[shard as usize])
    }

    /// One shard's aggregator-to-server traffic.
    pub fn shard_down(&self, shard: u32) -> EdgeTraffic {
        self.sharded
            .as_ref()
            .map_or_else(EdgeTraffic::default, |s| s.down[shard as usize])
    }

    /// Records a server-to-device message.
    pub fn send_from_server(&mut self, to: u32, bytes: u64) {
        self.server_sent += 1;
        self.server_bytes_sent += bytes;
        let r = &mut self.devices[to as usize];
        r.received += 1;
        r.bytes_received += bytes;
        self.record_edge(Self::SERVER, to, bytes);
    }

    /// Marks a synchronization round (all devices advance together — the
    /// paper's synchronous federation, §IV-B).
    pub fn round(&mut self) {
        self.rounds += 1;
    }

    /// Traffic of one device.
    pub fn device(&self, v: u32) -> DeviceTraffic {
        self.devices[v as usize]
    }

    /// Cumulative traffic of one directed edge (zero if never used).
    pub fn edge(&self, from: u32, to: u32) -> EdgeTraffic {
        self.edges.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Total device-to-device plus device-to-server messages.
    pub fn total_messages(&self) -> u64 {
        self.devices.iter().map(|d| d.sent).sum::<u64>() + self.server_sent
    }

    /// Total payload bytes across all three directions: device → device and
    /// device → server (both counted at the sending device) plus
    /// server → device.
    pub fn total_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_sent).sum::<u64>() + self.server_bytes_sent
    }

    /// Payload bytes sent by the server.
    pub fn server_bytes_sent(&self) -> u64 {
        self.server_bytes_sent
    }

    /// Synchronization rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages received by the server.
    pub fn server_received(&self) -> u64 {
        self.server_received
    }

    /// Payload bytes received by the server — direct device uploads in
    /// the flat topology, aggregator partials in the hierarchical one.
    pub fn server_bytes_received(&self) -> u64 {
        self.server_bytes_received
    }

    /// Average messages sent per device (Fig. 8a's y-axis when divided by
    /// epochs).
    pub fn avg_sent_per_device(&self) -> f64 {
        if self.devices.is_empty() {
            0.0
        } else {
            self.devices.iter().map(|d| d.sent).sum::<u64>() as f64 / self.devices.len() as f64
        }
    }

    /// Snapshot for differential accounting.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            total_messages: self.total_messages(),
            total_bytes: self.total_bytes(),
            rounds: self.rounds,
            per_device_sent: self.devices.iter().map(|d| d.sent).collect(),
            per_device_bytes_sent: self.devices.iter().map(|d| d.bytes_sent).collect(),
            per_device_bytes_received: self.devices.iter().map(|d| d.bytes_received).collect(),
            edges: self.edges.clone(),
        }
    }

    /// Per-device messages sent since a snapshot.
    pub fn sent_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_sent)
            .map(|(d, &s)| d.sent - s)
            .collect()
    }

    /// Per-device payload bytes sent since a snapshot.
    pub fn bytes_sent_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_bytes_sent)
            .map(|(d, &s)| d.bytes_sent - s)
            .collect()
    }

    /// Per-device payload bytes received since a snapshot.
    pub fn bytes_received_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_bytes_received)
            .map(|(d, &s)| d.bytes_received - s)
            .collect()
    }

    /// Every directed edge used since a snapshot, with its message/byte
    /// deltas, sorted by `(from, to)`.
    pub fn sent_matrix_since(&self, snap: &NetworkSnapshot) -> Vec<((u32, u32), EdgeTraffic)> {
        self.edges
            .iter()
            .filter_map(|(&key, &cur)| {
                let prev = snap.edges.get(&key).copied().unwrap_or_default();
                let delta = EdgeTraffic {
                    messages: cur.messages - prev.messages,
                    bytes: cur.bytes - prev.bytes,
                };
                (delta.messages > 0 || delta.bytes > 0).then_some((key, delta))
            })
            .collect()
    }

    /// The `(sender, bytes)` contributions received by device `to` since a
    /// snapshot, sorted by sender id ([`SimNetwork::SERVER`] sorts last).
    pub fn received_from_since(&self, snap: &NetworkSnapshot, to: u32) -> Vec<(u32, u64)> {
        self.sent_matrix_since(snap)
            .into_iter()
            .filter_map(|((from, t), e)| (t == to && e.bytes > 0).then_some((from, e.bytes)))
            .collect()
    }

    /// Per-receiver inbound `(sender, bytes)` lists since a snapshot, for
    /// all devices in one deterministic pass (the per-destination timing
    /// input `Runtime::end_epoch` hands to `lumos-sim`).
    pub fn received_matrix_since(&self, snap: &NetworkSnapshot) -> Vec<Vec<(u32, u64)>> {
        let mut inbound: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.devices.len()];
        for ((from, to), e) in self.sent_matrix_since(snap) {
            if to != Self::SERVER && e.bytes > 0 {
                inbound[to as usize].push((from, e.bytes));
            }
        }
        // Edge keys iterate sorted by (from, to), so each receiver's list
        // is already sorted by sender — but make the contract explicit.
        for list in &mut inbound {
            debug_assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
        }
        inbound
    }
}

/// A point-in-time copy of the network counters.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Total messages at snapshot time.
    pub total_messages: u64,
    /// Total bytes at snapshot time.
    pub total_bytes: u64,
    /// Rounds at snapshot time.
    pub rounds: u64,
    /// Per-device sent counters.
    pub per_device_sent: Vec<u64>,
    /// Per-device bytes-sent counters.
    pub per_device_bytes_sent: Vec<u64>,
    /// Per-device bytes-received counters.
    pub per_device_bytes_received: Vec<u64>,
    /// Per-edge counters at snapshot time.
    pub edges: BTreeMap<(u32, u32), EdgeTraffic>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut net = SimNetwork::new(3);
        net.send(0, 1, 100);
        net.send(0, 2, 50);
        net.send(2, 0, 10);
        net.send_to_server(1, 4);
        net.send_from_server(1, 6);
        net.round();
        assert_eq!(net.device(0).sent, 2);
        assert_eq!(net.device(0).received, 1);
        assert_eq!(net.device(0).bytes_sent, 150);
        assert_eq!(net.device(0).bytes_received, 10);
        assert_eq!(net.device(1).received, 2);
        assert_eq!(net.device(1).bytes_received, 106); // 100 from dev 0 + 6 from server
        assert_eq!(net.device(2).bytes_received, 50);
        assert_eq!(net.total_messages(), 5);
        // All three directions: 160 dev→dev + 4 dev→server + 6 server→dev.
        assert_eq!(net.server_bytes_sent(), 6);
        assert_eq!(net.total_bytes(), 170);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.server_received(), 1);
        assert!((net.avg_sent_per_device() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn server_payloads_are_not_dropped() {
        // Regression: `send_from_server` used to discard its byte argument,
        // so server → device payloads were invisible to `total_bytes`.
        let mut net = SimNetwork::new(2);
        net.send_from_server(0, 128);
        net.send_from_server(1, 128);
        assert_eq!(net.total_bytes(), 256);
        assert_eq!(net.server_bytes_sent(), 256);
        assert_eq!(net.device(0).bytes_received, 128);
        assert_eq!(net.total_messages(), 2);
    }

    #[test]
    fn snapshot_differencing() {
        let mut net = SimNetwork::new(2);
        net.send(0, 1, 8);
        let snap = net.snapshot();
        net.send(0, 1, 8);
        net.send(1, 0, 8);
        let delta = net.sent_since(&snap);
        assert_eq!(delta, vec![1, 1]);
        assert_eq!(net.total_messages() - snap.total_messages, 2);
        assert_eq!(net.bytes_sent_since(&snap), vec![8, 8]);
        assert_eq!(net.bytes_received_since(&snap), vec![8, 8]);
    }

    #[test]
    fn sharded_ledger_is_compact_and_routes_through_aggregators() {
        // 4 devices across 2 shards. Device uploads land on shard
        // tallies; the server only hears from aggregators.
        let mut net = SimNetwork::new_sharded(vec![0, 0, 1, 1]);
        assert!(net.is_sharded());
        assert_eq!(net.num_aggregators(), 2);
        for d in 0..4 {
            net.send_to_aggregator(d, 64);
        }
        net.send(0, 2, 8); // cross-shard gossip keeps device tallies only
        net.send_aggregator_to_server(0, 64);
        net.send_aggregator_to_server(1, 64);
        net.round();
        // Server traffic is O(aggregators): 2 messages, not 4.
        assert_eq!(net.server_received(), 2);
        assert_eq!(net.server_bytes_received(), 128);
        assert_eq!(
            net.shard_up(0),
            EdgeTraffic {
                messages: 2,
                bytes: 128
            }
        );
        assert_eq!(
            net.shard_down(1),
            EdgeTraffic {
                messages: 1,
                bytes: 64
            }
        );
        // Device totals still price each upload at the sender.
        assert_eq!(net.device(0).sent, 2);
        assert_eq!(net.device(0).bytes_sent, 72);
        assert_eq!(net.total_messages(), 5);
        // No per-edge map: memory is the 2×K tallies, however chatty.
        assert_eq!(net.ledger_entries(), 4);
        assert!(net
            .received_matrix_since(&net.snapshot())
            .iter()
            .all(Vec::is_empty));
    }

    #[test]
    fn flat_ledger_counts_server_bytes_received() {
        let mut net = SimNetwork::new(2);
        net.send_to_server(0, 10);
        net.send_to_server(1, 30);
        assert_eq!(net.server_bytes_received(), 40);
        assert_eq!(net.ledger_entries(), 2);
    }

    #[test]
    #[should_panic(expected = "requires a sharded network")]
    fn aggregator_send_requires_sharded_mode() {
        SimNetwork::new(2).send_to_aggregator(0, 8);
    }

    #[test]
    fn failover_routes_uploads_to_the_successor_aggregator() {
        let mut net = SimNetwork::new_sharded(vec![0, 0, 1, 1]);
        // Aggregator 0 is down: shard 0's uploads land on aggregator 1.
        net.set_rehome(Some(vec![1, 1]));
        assert_eq!(net.rehome_target(0), 1);
        assert_eq!(net.rehome_target(1), 1);
        for d in 0..4 {
            net.send_to_aggregator(d, 64);
        }
        assert_eq!(net.shard_up(0), EdgeTraffic::default());
        assert_eq!(
            net.shard_up(1),
            EdgeTraffic {
                messages: 4,
                bytes: 256
            }
        );
        // Senders still pay full price for their uploads.
        assert_eq!(net.device(0).sent, 1);
        assert_eq!(net.device(0).bytes_sent, 64);
        // Clearing the map restores home routing.
        net.set_rehome(None);
        assert_eq!(net.rehome_target(0), 0);
        net.send_to_aggregator(0, 64);
        assert_eq!(net.shard_up(0).messages, 1);
    }

    #[test]
    #[should_panic(expected = "disagree on aggregator count")]
    fn mis_sized_failover_map_panics() {
        SimNetwork::new_sharded(vec![0, 1]).set_rehome(Some(vec![0]));
    }

    #[test]
    fn per_edge_ledger_tracks_each_sender_separately() {
        // The tentpole regression: aggregate per-device totals cannot tell
        // a receiver *who* its bytes came from. The edge ledger can.
        let mut net = SimNetwork::new(3);
        net.send(0, 2, 100);
        let snap = net.snapshot();
        net.send(0, 2, 40);
        net.send(0, 2, 2);
        net.send(1, 2, 7);
        net.send_from_server(2, 9);
        net.send_to_server(2, 1);
        // Edge deltas exclude the pre-snapshot 100 bytes.
        assert_eq!(
            net.received_from_since(&snap, 2),
            vec![(0, 42), (1, 7), (SimNetwork::SERVER, 9)]
        );
        assert!(net.received_from_since(&snap, 0).is_empty());
        assert_eq!(
            net.edge(0, 2),
            EdgeTraffic {
                messages: 3,
                bytes: 142
            }
        );
        assert_eq!(net.edge(2, SimNetwork::SERVER).bytes, 1);
        let matrix = net.sent_matrix_since(&snap);
        assert_eq!(matrix.len(), 4, "0→2, 1→2, 2→server, server→2");
        assert!(matrix.windows(2).all(|w| w[0].0 < w[1].0), "sorted keys");
        // The one-pass per-receiver form agrees with the per-device query
        // and never routes server-bound uploads into a device inbox.
        let inbound = net.received_matrix_since(&snap);
        for d in 0..3u32 {
            assert_eq!(inbound[d as usize], net.received_from_since(&snap, d));
        }
        // Totals are consistent with the aggregate ledger.
        let agg = net.bytes_received_since(&snap);
        for d in 0..3usize {
            let sum: u64 = inbound[d].iter().map(|&(_, b)| b).sum();
            assert_eq!(sum, agg[d], "device {d} inbound totals diverge");
        }
    }
}
