//! Simulated inter-device network with per-device accounting.
//!
//! Figure 8a reports the *average number of inter-device communication
//! rounds per device per epoch*; this ledger records every message the
//! protocols exchange so the harness can reproduce that series exactly.

/// Per-device communication tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceTraffic {
    /// Messages sent by this device.
    pub sent: u64,
    /// Messages received by this device.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received (from peers or the server).
    pub bytes_received: u64,
}

/// The simulated network connecting `n` devices and a server.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    devices: Vec<DeviceTraffic>,
    server_received: u64,
    server_sent: u64,
    server_bytes_sent: u64,
    rounds: u64,
}

impl SimNetwork {
    /// Creates a network for `n` devices.
    pub fn new(n: usize) -> Self {
        Self {
            devices: vec![DeviceTraffic::default(); n],
            server_received: 0,
            server_sent: 0,
            server_bytes_sent: 0,
            rounds: 0,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Records a device-to-device message.
    pub fn send(&mut self, from: u32, to: u32, bytes: u64) {
        let d = &mut self.devices[from as usize];
        d.sent += 1;
        d.bytes_sent += bytes;
        let r = &mut self.devices[to as usize];
        r.received += 1;
        r.bytes_received += bytes;
    }

    /// Records a device-to-server message.
    pub fn send_to_server(&mut self, from: u32, bytes: u64) {
        let d = &mut self.devices[from as usize];
        d.sent += 1;
        d.bytes_sent += bytes;
        self.server_received += 1;
    }

    /// Records a server-to-device message.
    pub fn send_from_server(&mut self, to: u32, bytes: u64) {
        self.server_sent += 1;
        self.server_bytes_sent += bytes;
        let r = &mut self.devices[to as usize];
        r.received += 1;
        r.bytes_received += bytes;
    }

    /// Marks a synchronization round (all devices advance together — the
    /// paper's synchronous federation, §IV-B).
    pub fn round(&mut self) {
        self.rounds += 1;
    }

    /// Traffic of one device.
    pub fn device(&self, v: u32) -> DeviceTraffic {
        self.devices[v as usize]
    }

    /// Total device-to-device plus device-to-server messages.
    pub fn total_messages(&self) -> u64 {
        self.devices.iter().map(|d| d.sent).sum::<u64>() + self.server_sent
    }

    /// Total payload bytes across all three directions: device → device and
    /// device → server (both counted at the sending device) plus
    /// server → device.
    pub fn total_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_sent).sum::<u64>() + self.server_bytes_sent
    }

    /// Payload bytes sent by the server.
    pub fn server_bytes_sent(&self) -> u64 {
        self.server_bytes_sent
    }

    /// Synchronization rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages received by the server.
    pub fn server_received(&self) -> u64 {
        self.server_received
    }

    /// Average messages sent per device (Fig. 8a's y-axis when divided by
    /// epochs).
    pub fn avg_sent_per_device(&self) -> f64 {
        if self.devices.is_empty() {
            0.0
        } else {
            self.devices.iter().map(|d| d.sent).sum::<u64>() as f64 / self.devices.len() as f64
        }
    }

    /// Snapshot for differential accounting.
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            total_messages: self.total_messages(),
            total_bytes: self.total_bytes(),
            rounds: self.rounds,
            per_device_sent: self.devices.iter().map(|d| d.sent).collect(),
            per_device_bytes_sent: self.devices.iter().map(|d| d.bytes_sent).collect(),
            per_device_bytes_received: self.devices.iter().map(|d| d.bytes_received).collect(),
        }
    }

    /// Per-device messages sent since a snapshot.
    pub fn sent_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_sent)
            .map(|(d, &s)| d.sent - s)
            .collect()
    }

    /// Per-device payload bytes sent since a snapshot.
    pub fn bytes_sent_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_bytes_sent)
            .map(|(d, &s)| d.bytes_sent - s)
            .collect()
    }

    /// Per-device payload bytes received since a snapshot.
    pub fn bytes_received_since(&self, snap: &NetworkSnapshot) -> Vec<u64> {
        self.devices
            .iter()
            .zip(&snap.per_device_bytes_received)
            .map(|(d, &s)| d.bytes_received - s)
            .collect()
    }
}

/// A point-in-time copy of the network counters.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Total messages at snapshot time.
    pub total_messages: u64,
    /// Total bytes at snapshot time.
    pub total_bytes: u64,
    /// Rounds at snapshot time.
    pub rounds: u64,
    /// Per-device sent counters.
    pub per_device_sent: Vec<u64>,
    /// Per-device bytes-sent counters.
    pub per_device_bytes_sent: Vec<u64>,
    /// Per-device bytes-received counters.
    pub per_device_bytes_received: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut net = SimNetwork::new(3);
        net.send(0, 1, 100);
        net.send(0, 2, 50);
        net.send(2, 0, 10);
        net.send_to_server(1, 4);
        net.send_from_server(1, 6);
        net.round();
        assert_eq!(net.device(0).sent, 2);
        assert_eq!(net.device(0).received, 1);
        assert_eq!(net.device(0).bytes_sent, 150);
        assert_eq!(net.device(0).bytes_received, 10);
        assert_eq!(net.device(1).received, 2);
        assert_eq!(net.device(1).bytes_received, 106); // 100 from dev 0 + 6 from server
        assert_eq!(net.device(2).bytes_received, 50);
        assert_eq!(net.total_messages(), 5);
        // All three directions: 160 dev→dev + 4 dev→server + 6 server→dev.
        assert_eq!(net.server_bytes_sent(), 6);
        assert_eq!(net.total_bytes(), 170);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.server_received(), 1);
        assert!((net.avg_sent_per_device() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn server_payloads_are_not_dropped() {
        // Regression: `send_from_server` used to discard its byte argument,
        // so server → device payloads were invisible to `total_bytes`.
        let mut net = SimNetwork::new(2);
        net.send_from_server(0, 128);
        net.send_from_server(1, 128);
        assert_eq!(net.total_bytes(), 256);
        assert_eq!(net.server_bytes_sent(), 256);
        assert_eq!(net.device(0).bytes_received, 128);
        assert_eq!(net.total_messages(), 2);
    }

    #[test]
    fn snapshot_differencing() {
        let mut net = SimNetwork::new(2);
        net.send(0, 1, 8);
        let snap = net.snapshot();
        net.send(0, 1, 8);
        net.send(1, 0, 8);
        let delta = net.sent_since(&snap);
        assert_eq!(delta, vec![1, 1]);
        assert_eq!(net.total_messages() - snap.total_messages, 2);
        assert_eq!(net.bytes_sent_since(&snap), vec![8, 8]);
        assert_eq!(net.bytes_received_since(&snap), vec![8, 8]);
    }
}
