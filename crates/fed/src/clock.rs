//! Straggler-aware epoch time model.
//!
//! The paper's Definition 3 argument: devices compute in parallel, so the
//! wall time of a synchronous epoch is governed by the *slowest* device —
//! the straggler — whose cost grows with its tree size. Tree trimming caps
//! that maximum, which is exactly what Figure 8b measures. We report both
//! the measured wall time of the simulator (all devices computed on one
//! machine) and this model's makespan in abstract cost units.

/// Linear per-device compute-cost model.
///
/// A device's epoch cost is `fixed + per_tree_node · tree_nodes +
/// per_message · messages`: message-passing work scales with tree size
/// (3·wl + 1 nodes per trimmed tree, §V-A) and communication with the
/// number of messages it exchanges.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-epoch overhead per device.
    pub fixed: f64,
    /// Cost per tree node per GNN layer.
    pub per_tree_node: f64,
    /// Cost per message sent or received.
    pub per_message: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            fixed: 1.0,
            per_tree_node: 1.0,
            per_message: 0.25,
        }
    }
}

impl CostModel {
    /// Cost of one device-epoch.
    pub fn device_cost(&self, tree_nodes: usize, layers: usize, messages: u64) -> f64 {
        self.fixed
            + self.per_tree_node * (tree_nodes * layers) as f64
            + self.per_message * messages as f64
    }
}

/// The makespan of a synchronous epoch: the maximum device cost.
pub fn epoch_makespan(device_costs: &[f64]) -> f64 {
    device_costs.iter().copied().fold(0.0, f64::max)
}

/// Mean device cost (the "perfectly balanced" reference point).
pub fn epoch_mean_cost(device_costs: &[f64]) -> f64 {
    if device_costs.is_empty() {
        0.0
    } else {
        device_costs.iter().sum::<f64>() / device_costs.len() as f64
    }
}

/// Per-epoch timing record combining measurement and model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochTiming {
    /// Measured wall-clock seconds of the simulated epoch.
    pub wall_secs: f64,
    /// Modeled makespan (abstract units, straggler-dominated).
    pub makespan: f64,
    /// Modeled mean device cost.
    pub mean_cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_cost_is_linear() {
        let m = CostModel {
            fixed: 2.0,
            per_tree_node: 0.5,
            per_message: 0.1,
        };
        // 3·wl+1 = 10 nodes, 2 layers, 8 messages.
        assert!((m.device_cost(10, 2, 8) - (2.0 + 0.5 * 20.0 + 0.8)).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_not_mean() {
        let costs = vec![1.0, 2.0, 50.0, 3.0];
        assert_eq!(epoch_makespan(&costs), 50.0);
        assert_eq!(epoch_mean_cost(&costs), 14.0);
        assert_eq!(epoch_makespan(&[]), 0.0);
    }

    #[test]
    fn trimming_reduces_makespan_in_the_model() {
        let m = CostModel::default();
        // Untrimmed: one straggler with a 150-neighbor tree (451 nodes).
        let untrimmed: Vec<f64> = vec![
            m.device_cost(451, 2, 300),
            m.device_cost(31, 2, 20),
            m.device_cost(16, 2, 10),
        ];
        // Trimmed: maximum workload 39 (118 nodes).
        let trimmed: Vec<f64> = vec![
            m.device_cost(118, 2, 78),
            m.device_cost(61, 2, 40),
            m.device_cost(46, 2, 30),
        ];
        assert!(epoch_makespan(&trimmed) < epoch_makespan(&untrimmed) / 2.0);
    }
}
