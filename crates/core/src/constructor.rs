//! The heterogeneity-aware tree constructor (§V): greedy initialization
//! followed by MCMC trimming, or the untrimmed full assignment for the
//! "w.o. TT" ablation.

use lumos_balance::{
    greedy_init_weighted, make_oracle_backend, mcmc_balance, Assignment, CompareBackend,
    McmcConfig, SecurityMode,
};
use lumos_common::timer::Stopwatch;
use lumos_graph::Graph;
use lumos_topo::Topology;

use crate::report::ConstructorReport;

/// Runs the tree constructor over the (training) graph.
///
/// With `trimming` enabled this is Algorithm 1 + Algorithm 2 (both under
/// secure comparisons); otherwise every device keeps its full ego network.
///
/// `node_costs` switches the balancers to the capability-weighted
/// `VirtualSecs` objective: one fixed-point µs price per device-tree-node
/// (see `DeviceProfile::micros_per_tree_node`). `None` is the paper's
/// node-count objective, bit-identical to the historical behavior.
///
/// `backend` picks the secure-comparison engine behind the oracles:
/// [`CompareBackend::Scalar`] is the per-comparison circuit (and the
/// bit-identical default); [`CompareBackend::Bitsliced`] packs the
/// whole-sweep batches Algorithms 1 and 3 submit into 64-lane words,
/// cutting the constructor's OT traffic ~64× with identical outcomes.
pub fn construct_assignment(
    g: &Graph,
    trimming: bool,
    mcmc_iterations: usize,
    security: SecurityMode,
    backend: CompareBackend,
    seed: u64,
    node_costs: Option<&[u64]>,
) -> (Assignment, ConstructorReport) {
    let mut sw = Stopwatch::started();
    let untrimmed_max = g.max_degree();
    if !trimming {
        let assignment = Assignment::full(g);
        sw.stop();
        let report = ConstructorReport {
            trimmed: false,
            weighted: false,
            workloads: assignment.workloads(),
            max_workload: assignment.objective(),
            max_weighted_workload: assignment.weighted_objective(),
            untrimmed_max,
            wall_secs: sw.secs(),
            ..Default::default()
        };
        return (assignment, report);
    }

    let mut oracle = make_oracle_backend(security, backend, seed);
    let init = greedy_init_weighted(g, node_costs, oracle.as_mut());
    let mcmc_cfg = McmcConfig {
        iterations: mcmc_iterations,
        seed: seed ^ 0x5EED,
    };
    let outcome = mcmc_balance(g, init, &mcmc_cfg, oracle.as_mut());
    sw.stop();

    debug_assert!(outcome.assignment.check_feasible(g).is_ok());
    let report = ConstructorReport {
        trimmed: true,
        weighted: node_costs.is_some(),
        workloads: outcome.assignment.workloads(),
        max_workload: outcome.assignment.objective(),
        max_weighted_workload: outcome.assignment.weighted_objective(),
        untrimmed_max,
        secure_comm: oracle.meter(),
        comparisons: oracle.comparisons(),
        server_messages: outcome.stats.server.messages,
        wall_secs: sw.secs(),
        mcmc_trace: outcome.trace,
    };
    (outcome.assignment, report)
}

/// Per-shard seed for the sharded constructor's secure lanes: distinct
/// and deterministic per `(run seed, shard)`.
fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs the tree constructor partitioned by an aggregation topology:
/// each shard solves its own balance problem — greedy init + MCMC over
/// the shard's induced subgraph, with its own secure-comparison lanes
/// seeded per shard — and the per-shard assignments are merged.
///
/// Devices are only ever compared within their shard, which is the
/// hierarchical deployment's constraint (an aggregator can run Algorithm
/// 3 among its own members without a fleet-wide sweep) and what makes
/// construction at 10⁵+ devices tractable: K independent problems of
/// size n/K instead of one of size n.
///
/// Cross-shard edges are invisible to every shard's balancer, so
/// coverage is restored at merge time: each such edge is kept by the
/// endpoint with the currently smaller tree (ties to the smaller id) —
/// deterministic, and biased toward balance.
///
/// The report aggregates the shards: comparison counts, secure traffic,
/// and server messages are summed; the MCMC trace is the element-wise
/// maximum across shards (the global objective is the max over shard
/// objectives).
#[allow(clippy::too_many_arguments)]
pub fn construct_assignment_sharded(
    g: &Graph,
    trimming: bool,
    mcmc_iterations: usize,
    security: SecurityMode,
    backend: CompareBackend,
    seed: u64,
    node_costs: Option<&[u64]>,
    topo: &Topology,
) -> (Assignment, ConstructorReport) {
    assert_eq!(
        topo.num_devices(),
        g.num_nodes(),
        "topology and graph disagree on device count"
    );
    if !trimming || topo.num_aggregators() == 1 {
        // Untrimmed keeps full ego networks (nothing to shard), and one
        // shard is the flat problem.
        return construct_assignment(
            g,
            trimming,
            mcmc_iterations,
            security,
            backend,
            seed,
            node_costs,
        );
    }

    let mut sw = Stopwatch::started();
    let untrimmed_max = g.max_degree();

    // Route every edge once: intra-shard edges go to their shard's
    // induced subgraph (re-indexed from the shard base), cross-shard
    // edges wait for the merge.
    let k = topo.num_aggregators();
    let mut local_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
    let mut cross: Vec<(u32, u32)> = Vec::new();
    for (u, v) in g.edges() {
        let (su, sv) = (topo.shard_of(u), topo.shard_of(v));
        if su == sv {
            let base = topo.members(su as usize).start;
            local_edges[su as usize].push((u - base, v - base));
        } else {
            cross.push((u, v));
        }
    }

    let mut keep: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
    let mut report = ConstructorReport {
        trimmed: true,
        weighted: node_costs.is_some(),
        untrimmed_max,
        ..Default::default()
    };
    for (shard, range) in topo.ranges() {
        let base = range.start as usize;
        let size = range.len();
        let sub = Graph::from_edges(size, &local_edges[shard]);
        let local_costs: Option<Vec<u64>> = node_costs.map(|c| c[base..base + size].to_vec());
        let mut oracle = make_oracle_backend(security, backend, shard_seed(seed, shard));
        let init = greedy_init_weighted(&sub, local_costs.as_deref(), oracle.as_mut());
        let mcmc_cfg = McmcConfig {
            iterations: mcmc_iterations,
            seed: shard_seed(seed, shard) ^ 0x5EED,
        };
        let outcome = mcmc_balance(&sub, init, &mcmc_cfg, oracle.as_mut());
        debug_assert!(outcome.assignment.check_feasible(&sub).is_ok());
        for local in 0..size {
            keep[base + local] = outcome
                .assignment
                .kept(local as u32)
                .iter()
                .map(|&w| w + base as u32)
                .collect();
        }
        let meter = oracle.meter();
        report.secure_comm.messages += meter.messages;
        report.secure_comm.bytes += meter.bytes;
        report.comparisons += oracle.comparisons();
        report.server_messages += outcome.stats.server.messages;
        if report.mcmc_trace.len() < outcome.trace.len() {
            report.mcmc_trace.resize(outcome.trace.len(), 0);
        }
        for (global, &local) in report.mcmc_trace.iter_mut().zip(&outcome.trace) {
            *global = (*global).max(local);
        }
    }

    // Restore coverage of the edges no shard saw.
    for (u, v) in cross {
        let (u, v) = if (keep[u as usize].len(), u) <= (keep[v as usize].len(), v) {
            (u, v)
        } else {
            (v, u)
        };
        keep[u as usize].push(v);
    }

    let mut assignment = Assignment::from_sets(keep);
    if let Some(costs) = node_costs {
        assignment = assignment.with_costs(costs.to_vec());
    }
    sw.stop();
    debug_assert!(assignment.check_feasible(g).is_ok());
    report.workloads = assignment.workloads();
    report.max_workload = assignment.objective();
    report.max_weighted_workload = assignment.weighted_objective();
    report.wall_secs = sw.secs();
    (assignment, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_common::rng::Xoshiro256pp;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    fn graph() -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let labels: Vec<u32> = (0..500).map(|_| rng.next_below(4) as u32).collect();
        homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng)
    }

    #[test]
    fn trimming_cuts_the_maximum_workload() {
        let g = graph();
        let (trimmed, rep) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        let (full, rep_full) = construct_assignment(
            &g,
            false,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        trimmed.check_feasible(&g).unwrap();
        full.check_feasible(&g).unwrap();
        assert_eq!(rep_full.max_workload, g.max_degree());
        assert!(
            rep.max_workload * 2 <= rep_full.max_workload,
            "trimmed {} vs full {}",
            rep.max_workload,
            rep_full.max_workload
        );
        assert!(rep.trimmed);
        assert!(!rep_full.trimmed);
        assert!(rep.comparisons > 0);
        assert!(rep.secure_comm.messages > 0);
        assert_eq!(rep_full.comparisons, 0, "no crypto without trimming");
        assert_eq!(rep.mcmc_trace.len(), 150);
    }

    #[test]
    fn trimming_reduces_total_workload_towards_edge_count() {
        let g = graph();
        let (trimmed, _) = construct_assignment(
            &g,
            true,
            50,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            7,
            None,
        );
        let total = trimmed.total_workload();
        assert!(total >= g.num_edges(), "coverage requires ≥ |E|");
        assert!(
            total < 2 * g.num_edges(),
            "trimming must drop duplicated branches: {total} vs {}",
            2 * g.num_edges()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let (a1, _) = construct_assignment(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            11,
            None,
        );
        let (a2, _) = construct_assignment(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            11,
            None,
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn bitsliced_backend_builds_the_identical_assignment_cheaper() {
        let g = graph();
        let (scalar, rep_scalar) = construct_assignment(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            5,
            None,
        );
        let (sliced, rep_sliced) = construct_assignment(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Bitsliced,
            5,
            None,
        );
        assert_eq!(scalar, sliced, "outcome-identical engines, same trees");
        assert_eq!(rep_scalar.mcmc_trace, rep_sliced.mcmc_trace);
        assert_eq!(
            rep_scalar.comparisons, rep_sliced.comparisons,
            "logical comparison counts must match"
        );
        assert!(
            rep_sliced.secure_comm.messages * 8 < rep_scalar.secure_comm.messages,
            "bit-slicing must collapse constructor traffic: {} vs {}",
            rep_sliced.secure_comm.messages,
            rep_scalar.secure_comm.messages
        );
    }

    #[test]
    fn sharded_construction_is_feasible_and_deterministic() {
        let g = graph();
        let topo = Topology::seeded(g.num_nodes(), 4, 9);
        let build = || {
            construct_assignment_sharded(
                &g,
                true,
                60,
                SecurityMode::CostModel,
                CompareBackend::Scalar,
                11,
                None,
                &topo,
            )
        };
        let (a1, rep) = build();
        let (a2, _) = build();
        assert_eq!(a1, a2, "sharded construction must be deterministic");
        a1.check_feasible(&g)
            .expect("merged assignment must cover every edge");
        // Every device owns exactly one keep set (exact cover over
        // devices), and the report aggregates all four shards.
        assert_eq!(a1.num_devices(), g.num_nodes());
        assert_eq!(rep.workloads.len(), g.num_nodes());
        assert!(rep.trimmed);
        assert!(rep.comparisons > 0);
        assert_eq!(rep.mcmc_trace.len(), 60);
        // Sharding still trims: far below the untrimmed max degree.
        assert!(rep.max_workload * 2 <= rep.untrimmed_max);
    }

    #[test]
    fn sharded_construction_collapses_to_flat_at_one_shard() {
        let g = graph();
        let topo = Topology::contiguous(g.num_nodes(), 1);
        let (flat, flat_rep) = construct_assignment(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            5,
            None,
        );
        let (sharded, sharded_rep) = construct_assignment_sharded(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            5,
            None,
            &topo,
        );
        assert_eq!(flat, sharded, "one shard is the flat problem");
        assert_eq!(flat_rep.mcmc_trace, sharded_rep.mcmc_trace);
        assert_eq!(flat_rep.comparisons, sharded_rep.comparisons);
    }

    #[test]
    fn sharded_construction_compares_fewer_devices() {
        // K independent problems of size n/K need far fewer secure
        // comparisons than one problem of size n — that's the point.
        let g = graph();
        let topo = Topology::contiguous(g.num_nodes(), 8);
        let (_, flat) = construct_assignment(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        let (_, sharded) = construct_assignment_sharded(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
            &topo,
        );
        assert!(
            sharded.comparisons < flat.comparisons,
            "sharded {} vs flat {}",
            sharded.comparisons,
            flat.comparisons
        );
    }

    #[test]
    fn weighted_construction_shifts_load_off_expensive_devices() {
        let g = graph();
        // Price the top-degree device 500× its peers: the weighted
        // constructor must give it a materially smaller tree than the
        // node-count constructor does.
        let hub = (0..g.num_nodes() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        let mut costs = vec![10u64; g.num_nodes()];
        costs[hub as usize] = 5_000;
        let (plain, rep_plain) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        let (weighted, rep) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            Some(&costs),
        );
        weighted.check_feasible(&g).unwrap();
        // The report says which objective actually ran — the signal that a
        // VirtualSecs request degenerated (no costs ⇒ weighted = false).
        assert!(rep.weighted);
        assert!(!rep_plain.weighted);
        assert!(
            weighted.workload(hub) < plain.workload(hub),
            "weighted: hub kept {} nodes, node-count: {}",
            weighted.workload(hub),
            plain.workload(hub)
        );
        // The report's weighted objective is in µs, not node counts.
        assert_eq!(rep.max_weighted_workload, weighted.weighted_objective());
        assert!(rep.max_weighted_workload >= rep.max_workload as u64 * 10);
    }
}
