//! The heterogeneity-aware tree constructor (§V): greedy initialization
//! followed by MCMC trimming, or the untrimmed full assignment for the
//! "w.o. TT" ablation.

use lumos_balance::{
    greedy_init_weighted, make_oracle_backend, mcmc_balance, Assignment, CompareBackend,
    McmcConfig, SecurityMode,
};
use lumos_common::timer::Stopwatch;
use lumos_graph::Graph;

use crate::report::ConstructorReport;

/// Runs the tree constructor over the (training) graph.
///
/// With `trimming` enabled this is Algorithm 1 + Algorithm 2 (both under
/// secure comparisons); otherwise every device keeps its full ego network.
///
/// `node_costs` switches the balancers to the capability-weighted
/// `VirtualSecs` objective: one fixed-point µs price per device-tree-node
/// (see `DeviceProfile::micros_per_tree_node`). `None` is the paper's
/// node-count objective, bit-identical to the historical behavior.
///
/// `backend` picks the secure-comparison engine behind the oracles:
/// [`CompareBackend::Scalar`] is the per-comparison circuit (and the
/// bit-identical default); [`CompareBackend::Bitsliced`] packs the
/// whole-sweep batches Algorithms 1 and 3 submit into 64-lane words,
/// cutting the constructor's OT traffic ~64× with identical outcomes.
pub fn construct_assignment(
    g: &Graph,
    trimming: bool,
    mcmc_iterations: usize,
    security: SecurityMode,
    backend: CompareBackend,
    seed: u64,
    node_costs: Option<&[u64]>,
) -> (Assignment, ConstructorReport) {
    let mut sw = Stopwatch::started();
    let untrimmed_max = g.max_degree();
    if !trimming {
        let assignment = Assignment::full(g);
        sw.stop();
        let report = ConstructorReport {
            trimmed: false,
            weighted: false,
            workloads: assignment.workloads(),
            max_workload: assignment.objective(),
            max_weighted_workload: assignment.weighted_objective(),
            untrimmed_max,
            wall_secs: sw.secs(),
            ..Default::default()
        };
        return (assignment, report);
    }

    let mut oracle = make_oracle_backend(security, backend, seed);
    let init = greedy_init_weighted(g, node_costs, oracle.as_mut());
    let mcmc_cfg = McmcConfig {
        iterations: mcmc_iterations,
        seed: seed ^ 0x5EED,
    };
    let outcome = mcmc_balance(g, init, &mcmc_cfg, oracle.as_mut());
    sw.stop();

    debug_assert!(outcome.assignment.check_feasible(g).is_ok());
    let report = ConstructorReport {
        trimmed: true,
        weighted: node_costs.is_some(),
        workloads: outcome.assignment.workloads(),
        max_workload: outcome.assignment.objective(),
        max_weighted_workload: outcome.assignment.weighted_objective(),
        untrimmed_max,
        secure_comm: oracle.meter(),
        comparisons: oracle.comparisons(),
        server_messages: outcome.stats.server.messages,
        wall_secs: sw.secs(),
        mcmc_trace: outcome.trace,
    };
    (outcome.assignment, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_common::rng::Xoshiro256pp;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    fn graph() -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let labels: Vec<u32> = (0..500).map(|_| rng.next_below(4) as u32).collect();
        homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng)
    }

    #[test]
    fn trimming_cuts_the_maximum_workload() {
        let g = graph();
        let (trimmed, rep) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        let (full, rep_full) = construct_assignment(
            &g,
            false,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        trimmed.check_feasible(&g).unwrap();
        full.check_feasible(&g).unwrap();
        assert_eq!(rep_full.max_workload, g.max_degree());
        assert!(
            rep.max_workload * 2 <= rep_full.max_workload,
            "trimmed {} vs full {}",
            rep.max_workload,
            rep_full.max_workload
        );
        assert!(rep.trimmed);
        assert!(!rep_full.trimmed);
        assert!(rep.comparisons > 0);
        assert!(rep.secure_comm.messages > 0);
        assert_eq!(rep_full.comparisons, 0, "no crypto without trimming");
        assert_eq!(rep.mcmc_trace.len(), 150);
    }

    #[test]
    fn trimming_reduces_total_workload_towards_edge_count() {
        let g = graph();
        let (trimmed, _) = construct_assignment(
            &g,
            true,
            50,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            7,
            None,
        );
        let total = trimmed.total_workload();
        assert!(total >= g.num_edges(), "coverage requires ≥ |E|");
        assert!(
            total < 2 * g.num_edges(),
            "trimming must drop duplicated branches: {total} vs {}",
            2 * g.num_edges()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let (a1, _) = construct_assignment(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            11,
            None,
        );
        let (a2, _) = construct_assignment(
            &g,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            11,
            None,
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn bitsliced_backend_builds_the_identical_assignment_cheaper() {
        let g = graph();
        let (scalar, rep_scalar) = construct_assignment(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            5,
            None,
        );
        let (sliced, rep_sliced) = construct_assignment(
            &g,
            true,
            60,
            SecurityMode::CostModel,
            CompareBackend::Bitsliced,
            5,
            None,
        );
        assert_eq!(scalar, sliced, "outcome-identical engines, same trees");
        assert_eq!(rep_scalar.mcmc_trace, rep_sliced.mcmc_trace);
        assert_eq!(
            rep_scalar.comparisons, rep_sliced.comparisons,
            "logical comparison counts must match"
        );
        assert!(
            rep_sliced.secure_comm.messages * 8 < rep_scalar.secure_comm.messages,
            "bit-slicing must collapse constructor traffic: {} vs {}",
            rep_sliced.secure_comm.messages,
            rep_scalar.secure_comm.messages
        );
    }

    #[test]
    fn weighted_construction_shifts_load_off_expensive_devices() {
        let g = graph();
        // Price the top-degree device 500× its peers: the weighted
        // constructor must give it a materially smaller tree than the
        // node-count constructor does.
        let hub = (0..g.num_nodes() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        let mut costs = vec![10u64; g.num_nodes()];
        costs[hub as usize] = 5_000;
        let (plain, rep_plain) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            None,
        );
        let (weighted, rep) = construct_assignment(
            &g,
            true,
            150,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            3,
            Some(&costs),
        );
        weighted.check_feasible(&g).unwrap();
        // The report says which objective actually ran — the signal that a
        // VirtualSecs request degenerated (no costs ⇒ weighted = false).
        assert!(rep.weighted);
        assert!(!rep_plain.weighted);
        assert!(
            weighted.workload(hub) < plain.workload(hub),
            "weighted: hub kept {} nodes, node-count: {}",
            weighted.workload(hub),
            plain.workload(hub)
        );
        // The report's weighted objective is in µs, not node counts.
        assert_eq!(rep.max_weighted_workload, weighted.weighted_objective());
        assert!(rep.max_weighted_workload >= rep.max_workload as u64 * 10);
    }
}
