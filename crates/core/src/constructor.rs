//! The heterogeneity-aware tree constructor (§V): greedy initialization
//! followed by MCMC trimming, or the untrimmed full assignment for the
//! "w.o. TT" ablation.

use lumos_balance::{greedy_init, make_oracle, mcmc_balance, Assignment, McmcConfig, SecurityMode};
use lumos_common::timer::Stopwatch;
use lumos_graph::Graph;

use crate::report::ConstructorReport;

/// Runs the tree constructor over the (training) graph.
///
/// With `trimming` enabled this is Algorithm 1 + Algorithm 2 (both under
/// secure comparisons); otherwise every device keeps its full ego network.
pub fn construct_assignment(
    g: &Graph,
    trimming: bool,
    mcmc_iterations: usize,
    security: SecurityMode,
    seed: u64,
) -> (Assignment, ConstructorReport) {
    let mut sw = Stopwatch::started();
    let untrimmed_max = g.max_degree();
    if !trimming {
        let assignment = Assignment::full(g);
        sw.stop();
        let report = ConstructorReport {
            trimmed: false,
            workloads: assignment.workloads(),
            max_workload: assignment.objective(),
            untrimmed_max,
            wall_secs: sw.secs(),
            ..Default::default()
        };
        return (assignment, report);
    }

    let mut oracle = make_oracle(security, seed);
    let init = greedy_init(g, oracle.as_mut());
    let mcmc_cfg = McmcConfig {
        iterations: mcmc_iterations,
        seed: seed ^ 0x5EED,
    };
    let outcome = mcmc_balance(g, init, &mcmc_cfg, oracle.as_mut());
    sw.stop();

    debug_assert!(outcome.assignment.check_feasible(g).is_ok());
    let report = ConstructorReport {
        trimmed: true,
        workloads: outcome.assignment.workloads(),
        max_workload: outcome.assignment.objective(),
        untrimmed_max,
        secure_comm: oracle.meter(),
        comparisons: oracle.comparisons(),
        server_messages: outcome.stats.server.messages,
        wall_secs: sw.secs(),
        mcmc_trace: outcome.trace,
    };
    (outcome.assignment, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_common::rng::Xoshiro256pp;
    use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};

    fn graph() -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let labels: Vec<u32> = (0..500).map(|_| rng.next_below(4) as u32).collect();
        homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut rng)
    }

    #[test]
    fn trimming_cuts_the_maximum_workload() {
        let g = graph();
        let (trimmed, rep) = construct_assignment(&g, true, 150, SecurityMode::CostModel, 3);
        let (full, rep_full) = construct_assignment(&g, false, 150, SecurityMode::CostModel, 3);
        trimmed.check_feasible(&g).unwrap();
        full.check_feasible(&g).unwrap();
        assert_eq!(rep_full.max_workload, g.max_degree());
        assert!(
            rep.max_workload * 2 <= rep_full.max_workload,
            "trimmed {} vs full {}",
            rep.max_workload,
            rep_full.max_workload
        );
        assert!(rep.trimmed);
        assert!(!rep_full.trimmed);
        assert!(rep.comparisons > 0);
        assert!(rep.secure_comm.messages > 0);
        assert_eq!(rep_full.comparisons, 0, "no crypto without trimming");
        assert_eq!(rep.mcmc_trace.len(), 150);
    }

    #[test]
    fn trimming_reduces_total_workload_towards_edge_count() {
        let g = graph();
        let (trimmed, _) = construct_assignment(&g, true, 50, SecurityMode::CostModel, 7);
        let total = trimmed.total_workload();
        assert!(total >= g.num_edges(), "coverage requires ≥ |E|");
        assert!(
            total < 2 * g.num_edges(),
            "trimming must drop duplicated branches: {total} vs {}",
            2 * g.num_edges()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph();
        let (a1, _) = construct_assignment(&g, true, 40, SecurityMode::CostModel, 11);
        let (a2, _) = construct_assignment(&g, true, 40, SecurityMode::CostModel, 11);
        assert_eq!(a1, a2);
    }
}
