//! Per-device trees with virtual nodes (§V-A, Fig. 2).
//!
//! Device `v` with retained neighbors `N_v = {u_1, …, u_wl}` builds `T(v)`:
//! for every retained neighbor a *leaf pair* `(v, u_k)` — the center is
//! replicated once per pair so its only non-noised feature is reused — a
//! virtual parent `P_k` joining each pair, and a virtual root `R` joining
//! all parents. The tree has `3·wl + 1` nodes and `3·wl` edges. The paper's
//! ablation "Lumos w.o. VN" instead feeds the raw ego network (a star) to
//! the trainer; both shapes are produced here.

/// Role of a node inside a device's local graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeNode {
    /// The virtual root `R` (virtual-node trees only).
    Root,
    /// The virtual parent `P_k` of leaf pair `k`.
    Parent(u32),
    /// A leaf carrying the center vertex (pair index attached).
    CenterLeaf(u32),
    /// A leaf carrying retained neighbor `N_v[k]`.
    NeighborLeaf(u32),
    /// The center node of a raw ego network (w.o.-VN ablation), or the
    /// stand-alone node of a device with zero retained anything.
    EgoCenter,
    /// A neighbor node of a raw ego network (w.o.-VN ablation).
    EgoNeighbor(u32),
}

/// Shape of the local graph each device trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalGraphKind {
    /// The paper's virtual-node tree.
    VirtualNodeTree,
    /// The raw ego network (ablation "Lumos w.o. VN").
    RawEgoNetwork,
}

/// The local graph of one device, with node roles and edges in local ids.
#[derive(Debug, Clone)]
pub struct DeviceTree {
    /// The owning device / center vertex.
    pub center: u32,
    /// Retained neighbors (defines `wl = neighbors.len()`).
    pub neighbors: Vec<u32>,
    /// Role of each local node; index = local node id.
    pub nodes: Vec<TreeNode>,
    /// Undirected edges in local ids.
    pub edges: Vec<(u32, u32)>,
    /// Which construction was used.
    pub kind: LocalGraphKind,
}

impl DeviceTree {
    /// Builds the virtual-node tree of Fig. 2.
    ///
    /// Local layout: node 0 is the root; pair `k` occupies nodes
    /// `1+3k` (parent), `2+3k` (center leaf), `3+3k` (neighbor leaf).
    /// A device with `wl = 0` degenerates to a single `EgoCenter` node so
    /// that every vertex still owns at least one featured leaf.
    pub fn with_virtual_nodes(center: u32, neighbors: Vec<u32>) -> Self {
        let wl = neighbors.len();
        if wl == 0 {
            return Self {
                center,
                neighbors,
                nodes: vec![TreeNode::EgoCenter],
                edges: Vec::new(),
                kind: LocalGraphKind::VirtualNodeTree,
            };
        }
        let mut nodes = Vec::with_capacity(1 + 3 * wl);
        let mut edges = Vec::with_capacity(3 * wl);
        nodes.push(TreeNode::Root);
        for k in 0..wl as u32 {
            let parent = 1 + 3 * k;
            let center_leaf = parent + 1;
            let neighbor_leaf = parent + 2;
            nodes.push(TreeNode::Parent(k));
            nodes.push(TreeNode::CenterLeaf(k));
            nodes.push(TreeNode::NeighborLeaf(k));
            edges.push((0, parent));
            edges.push((parent, center_leaf));
            edges.push((parent, neighbor_leaf));
        }
        Self {
            center,
            neighbors,
            nodes,
            edges,
            kind: LocalGraphKind::VirtualNodeTree,
        }
    }

    /// Builds the raw ego network (star) of the w.o.-VN ablation: node 0 is
    /// the center, nodes `1..=wl` the retained neighbors.
    pub fn raw_ego(center: u32, neighbors: Vec<u32>) -> Self {
        let wl = neighbors.len() as u32;
        let mut nodes = Vec::with_capacity(1 + wl as usize);
        nodes.push(TreeNode::EgoCenter);
        let mut edges = Vec::with_capacity(wl as usize);
        for k in 0..wl {
            nodes.push(TreeNode::EgoNeighbor(k));
            edges.push((0, 1 + k));
        }
        Self {
            center,
            neighbors,
            nodes,
            edges,
            kind: LocalGraphKind::RawEgoNetwork,
        }
    }

    /// Builds the requested kind.
    pub fn build(kind: LocalGraphKind, center: u32, neighbors: Vec<u32>) -> Self {
        match kind {
            LocalGraphKind::VirtualNodeTree => Self::with_virtual_nodes(center, neighbors),
            LocalGraphKind::RawEgoNetwork => Self::raw_ego(center, neighbors),
        }
    }

    /// The workload `wl(v)` this tree realizes.
    pub fn workload(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of local nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// For each local node, the global vertex it represents as a *leaf*
    /// (None for virtual nodes). Used by the POOL layer (Eq. 31).
    pub fn leaf_vertices(&self) -> Vec<Option<u32>> {
        self.nodes
            .iter()
            .map(|n| match n {
                TreeNode::Root | TreeNode::Parent(_) => None,
                TreeNode::CenterLeaf(_) | TreeNode::EgoCenter => Some(self.center),
                TreeNode::NeighborLeaf(k) | TreeNode::EgoNeighbor(k) => {
                    Some(self.neighbors[*k as usize])
                }
            })
            .collect()
    }

    /// Checks the structural invariants of §V-A.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self.kind {
            LocalGraphKind::VirtualNodeTree => {
                let wl = self.workload();
                if wl == 0 {
                    if self.nodes.len() != 1 || !self.edges.is_empty() {
                        return Err("degenerate tree must be a single node".into());
                    }
                    return Ok(());
                }
                if self.nodes.len() != 1 + 3 * wl {
                    return Err(format!(
                        "tree must have 3·wl+1 = {} nodes, found {}",
                        1 + 3 * wl,
                        self.nodes.len()
                    ));
                }
                if self.edges.len() != 3 * wl {
                    return Err(format!(
                        "tree must have 3·wl = {} edges, found {}",
                        3 * wl,
                        self.edges.len()
                    ));
                }
                // A tree: |E| = |V| - 1.
                if self.edges.len() != self.nodes.len() - 1 {
                    return Err("edge count must be node count − 1 (a tree)".into());
                }
            }
            LocalGraphKind::RawEgoNetwork => {
                if self.nodes.len() != 1 + self.workload() {
                    return Err("ego network must have wl+1 nodes".into());
                }
                if self.edges.len() != self.workload() {
                    return Err("ego network must have wl edges".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Fig. 2: vertex 1 with neighbors {2, 3, 4, 5}.
    #[test]
    fn figure_2_tree_structure() {
        let t = DeviceTree::with_virtual_nodes(1, vec![2, 3, 4, 5]);
        t.check_invariants().unwrap();
        assert_eq!(t.num_nodes(), 13, "4 pairs → 13 nodes (R, 4×P, 8 leaves)");
        assert_eq!(t.edges.len(), 12);
        // Root connects to the four parents.
        let root_edges: Vec<_> = t.edges.iter().filter(|(a, _)| *a == 0).collect();
        assert_eq!(root_edges.len(), 4);
        // Each parent joins a center copy and one neighbor.
        let lv = t.leaf_vertices();
        assert_eq!(lv[0], None); // root
        assert_eq!(lv[1], None); // P1
        assert_eq!(lv[2], Some(1)); // center copy
        assert_eq!(lv[3], Some(2)); // neighbor 2

        // Center is replicated |N(v)| times.
        let center_copies = lv.iter().filter(|v| **v == Some(1)).count();
        assert_eq!(center_copies, 4);
    }

    #[test]
    fn zero_workload_degenerates_to_single_leaf() {
        let t = DeviceTree::with_virtual_nodes(7, vec![]);
        t.check_invariants().unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.leaf_vertices(), vec![Some(7)]);
    }

    #[test]
    fn raw_ego_is_a_star() {
        let t = DeviceTree::raw_ego(3, vec![0, 1, 9]);
        t.check_invariants().unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.edges, vec![(0, 1), (0, 2), (0, 3)]);
        let lv = t.leaf_vertices();
        assert_eq!(lv[0], Some(3));
        assert_eq!(lv[3], Some(9));
        // Center appears once, not replicated.
        assert_eq!(lv.iter().filter(|v| **v == Some(3)).count(), 1);
    }

    #[test]
    fn build_dispatches_kinds() {
        let a = DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]);
        assert_eq!(a.kind, LocalGraphKind::VirtualNodeTree);
        assert_eq!(a.num_nodes(), 4);
        let b = DeviceTree::build(LocalGraphKind::RawEgoNetwork, 0, vec![1]);
        assert_eq!(b.kind, LocalGraphKind::RawEgoNetwork);
        assert_eq!(b.num_nodes(), 2);
    }

    #[test]
    fn tree_size_scales_with_workload() {
        for wl in 1..20 {
            let t = DeviceTree::with_virtual_nodes(0, (1..=wl as u32).collect());
            t.check_invariants().unwrap();
            assert_eq!(t.num_nodes(), 1 + 3 * wl);
        }
    }
}
