//! The tree-based GNN trainer (§VI) and the end-to-end Lumos pipeline.
//!
//! Pipeline per run: split the graph into ego networks → construct trimmed
//! trees (§V) → LDP feature exchange (§VI-A) → per-epoch message passing on
//! every tree with shared weights, POOL across devices (Eq. 31), loss
//! computation (§VI-C), synchronized gradient update — with every
//! inter-device message recorded on the federated runtime's ledger.

use std::rc::Rc;

use lumos_balance::{rebalance_assignment, BalanceObjective};
use lumos_common::rng::Xoshiro256pp;
use lumos_data::{Dataset, EdgeSplit, NodeSplit};
use lumos_fed::{ledger_work, CostModel, Runtime, SimNetwork, TierSpec};
use lumos_gnn::{
    accuracy_masked, cross_entropy_masked, link_logits, link_prediction_loss, roc_auc,
    EncoderConfig, GnnEncoder, LinearDecoder,
};
use lumos_graph::Graph;
use lumos_tensor::{Adam, ParamStore, Tape, VarId};

use lumos_sim::{
    simulate_epoch, AggregationPolicy, DeviceProfile, DeviceWork, EventDrivenRuntime, FaultState,
    RoundPolicy, ScenarioState, StalenessBuffer,
};
use lumos_topo::{shard_late_with_staleness, ShardRoundPolicies, Topology};

use crate::batch::{build_batched, BatchedTrees, PoolArrays};
use crate::config::{LumosConfig, TaskKind};
use crate::constructor::{construct_assignment, construct_assignment_sharded};
use crate::init::{exchange_features, exchange_missing_features};
use crate::report::{EpochMetrics, RunReport, SimSummary};
use crate::tree::{DeviceTree, LocalGraphKind};

/// Paired endpoint lists of positive training edges.
type PairLists = (Rc<Vec<u32>>, Rc<Vec<u32>>);

/// Memoized late probe: the fleet it was simulated against and the
/// `(device, staleness)` pairs the policy cut that round.
type LateProbe = (Vec<lumos_sim::DeviceProfile>, Vec<(u32, u32)>);

/// Embedding size of a pooled vertex message on the wire (16 f32 values).
const EMBEDDING_BYTES: u64 = 16 * 4;

/// Runs the full Lumos system on a dataset and returns the report.
pub fn run_lumos(ds: &Dataset, cfg: &LumosConfig) -> RunReport {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let n = ds.num_nodes();

    // Task-specific splits. Link prediction trains on the 80% train-edge
    // graph; classification trains on the full graph with node masks.
    let node_split;
    let edge_split;
    let train_graph: Graph = match cfg.task {
        TaskKind::Supervised => {
            node_split = Some(NodeSplit::uniform(n, &mut rng));
            edge_split = None;
            ds.graph.clone()
        }
        TaskKind::Unsupervised => {
            let split = EdgeSplit::uniform(&ds.graph, &mut rng);
            let g = split.train_graph(n);
            edge_split = Some(split);
            node_split = None;
            g
        }
    };

    // Fleet and runtime come up before the constructor so the VirtualSecs
    // objective can price each device's tree nodes. The fleet draws from
    // its own seed-derived RNG stream, so enabling a scenario changes
    // timing statistics (and, under VirtualSecs, tree placement) only —
    // never the trainer's stochastic streams.
    let mut runtime = Runtime::new(n, CostModel::default());
    runtime.set_embedding_bytes(EMBEDDING_BYTES);
    let mut scenario = cfg.scenario.map(|s| ScenarioState::new(s, n, cfg.seed));
    if let Some(state) = &scenario {
        runtime.set_profiles(state.profiles().to_vec());
    }
    let enc_cfg = EncoderConfig::paper(cfg.backbone, ds.feature_dim);
    let node_costs = match cfg.balance_objective {
        BalanceObjective::TreeNodes => None,
        // Without a scenario there are no profiles to price with, so this
        // silently degenerates to the node-count objective.
        BalanceObjective::VirtualSecs => {
            runtime.node_costs_micros(enc_cfg.num_layers, EMBEDDING_BYTES)
        }
    };

    // Aggregation topology (hierarchical mode). A single-aggregator tree
    // resolves to the flat topology up front (`TopologyConfig::effective`),
    // so `topology` is `Some` only with ≥ 2 real shards. Device→shard
    // placement is cost-aware when per-device prices exist, seeded
    // otherwise — and static thereafter: live re-balancing migrates tree
    // nodes between devices, never devices between aggregators.
    let topology: Option<Topology> =
        cfg.topology
            .effective(n)
            .aggregators()
            .map(|k| match node_costs.as_deref() {
                Some(costs) => Topology::cost_balanced(costs, k),
                None => Topology::seeded(n, k, cfg.seed),
            });
    if let Some(topo) = &topology {
        // The compact per-shard ledger replaces the per-edge matrix —
        // memory stays O(devices + aggregators) — and the tier spec makes
        // every profiled epoch's makespan run through the aggregators.
        runtime.network = SimNetwork::new_sharded(topo.shard_vector());
        runtime.set_tier(TierSpec {
            topology: topo.clone(),
            aggregator: DeviceProfile::baseline(),
            partial_bytes: EMBEDDING_BYTES,
        });
    }

    // Phase 1: heterogeneity-aware tree constructor (§V); in hierarchical
    // mode each shard balances independently inside its own secure lanes.
    let (mut assignment, constructor) = match &topology {
        Some(topo) => construct_assignment_sharded(
            &train_graph,
            cfg.tree_trimming,
            cfg.mcmc_iterations,
            cfg.security,
            cfg.compare_backend,
            cfg.seed,
            node_costs.as_deref(),
            topo,
        ),
        None => construct_assignment(
            &train_graph,
            cfg.tree_trimming,
            cfg.mcmc_iterations,
            cfg.security,
            cfg.compare_backend,
            cfg.seed,
            node_costs.as_deref(),
        ),
    };

    let kind = if cfg.virtual_nodes {
        LocalGraphKind::VirtualNodeTree
    } else {
        LocalGraphKind::RawEgoNetwork
    };
    let mut trees: Vec<DeviceTree> = (0..n as u32)
        .map(|v| DeviceTree::build(kind, v, assignment.kept(v).to_vec()))
        .collect();

    // Phase 2: LDP embedding initialization (§VI-A).
    let mut exchange = exchange_features(
        &ds.features,
        ds.feature_dim,
        &trees,
        cfg.epsilon,
        &mut rng,
        &mut runtime.network,
    );
    let init_messages = exchange.messages;
    let mut batch = build_batched(&trees, &ds.features, ds.feature_dim, &exchange);

    // The policy actually executed: `Buffered { decay: 0 }` resolves to
    // `Deadline` and a full-fleet `Async` quorum to `FullSync` up front,
    // so both bit-for-bit collapses hold by construction.
    let policy = cfg.aggregation_policy.resolve(n);

    // Semi-sync probe: the per-round message pattern is static between
    // migrations (same trees, same protocol every epoch), so one dry run of
    // the recorder yields the per-destination DeviceWork whose simulated
    // timing decides, each round, which updates would land past the
    // deadline. Inert without a scenario — no profiles to time against.
    let layers = enc_cfg.num_layers;
    let build_template = |trees: &[DeviceTree], tree_sizes: &[usize]| -> Vec<DeviceWork> {
        // The probe must mirror the live network's mode: a sharded ledger
        // yields the aggregate inbound schedule the real epochs will run.
        let mut probe = match &topology {
            Some(topo) => SimNetwork::new_sharded(topo.shard_vector()),
            None => SimNetwork::new(n),
        };
        let snap = probe.snapshot();
        record_epoch_messages(
            trees,
            cfg,
            &mut probe,
            edge_split.as_ref(),
            &[],
            &[],
            None,
            topology.as_ref(),
        );
        ledger_work(&probe, &snap, tree_sizes, layers)
    };
    let mut work_template: Option<Vec<DeviceWork>> =
        if policy != AggregationPolicy::FullSync && scenario.is_some() {
            Some(build_template(&trees, &batch.tree_sizes))
        } else {
            None
        };

    // Buffered-policy state: the staleness buffer holding late updates
    // until their arrival round, and the re-balancer's per-device overload
    // streaks. The async quorum reuses the whole buffering machinery at
    // decay 1.0 — its overflow is carried, never discounted and never
    // dropped — and additionally closes each round early at the quorum.
    let buffered_decay = match policy {
        AggregationPolicy::Buffered { decay, .. } => Some(decay),
        AggregationPolicy::Async { .. } => Some(1.0),
        _ => None,
    };
    let async_min = match policy {
        AggregationPolicy::Async { min_updates } => Some(min_updates),
        _ => None,
    };
    // Seeded fault injection (strictly opt-in): the fault stream draws
    // from its own domain-separated RNG, so enabling it never perturbs
    // the trainer's or the fleet's stochastic streams — and it is inert
    // without a scenario, because there are no profiles to crash or
    // delay against. Fault recovery rides the buffering machinery even
    // under a non-buffering policy: an upload that exhausts its retry
    // budget degrades into the staleness buffer at full weight and
    // arrives one round late, instead of vanishing.
    let mut faults: Option<FaultState> = (!cfg.faults.is_none() && scenario.is_some())
        .then(|| FaultState::new(cfg.faults.clone(), cfg.recovery, cfg.seed));
    let policy_buffering = buffered_decay.is_some() && scenario.is_some();
    let buffering = policy_buffering || faults.is_some();
    let mut staleness_buffer = StalenessBuffer::new(buffered_decay.unwrap_or(1.0));
    let mut streaks: Vec<u32> = vec![0; n];
    let mut migrations = 0u64;
    let mut migrated_nodes = 0u64;

    // Phase 3: model setup (§VIII-B hyperparameters).
    let mut store = ParamStore::new();
    let encoder = GnnEncoder::new(&mut store, &enc_cfg, &mut rng);
    let decoder = match cfg.task {
        TaskKind::Supervised => Some(LinearDecoder::new(
            &mut store,
            "head",
            encoder.out_dim(),
            ds.num_classes,
            &mut rng,
        )),
        TaskKind::Unsupervised => None,
    };
    let mut opt = Adam::new(cfg.lr);

    let mut report = RunReport::new("lumos", &ds.name, cfg.backbone.name(), cfg.task.name());
    report.constructor = constructor;
    report.init_messages = init_messages;

    // Supervised target/mask buffers.
    let targets = Rc::new(ds.labels.clone());
    let train_mask: Option<Rc<Vec<f32>>> = node_split.as_ref().map(|s| {
        Rc::new(
            s.train_mask
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect::<Vec<f32>>(),
        )
    });
    // Unsupervised positive pairs (training edges).
    let pos_pairs: Option<PairLists> = edge_split.as_ref().map(|s| {
        let src: Vec<u32> = s.train_edges.iter().map(|&(u, _)| u).collect();
        let dst: Vec<u32> = s.train_edges.iter().map(|&(_, v)| v).collect();
        (Rc::new(src), Rc::new(dst))
    });

    // Phase 4: synchronized training epochs.
    let mut best_val = 0.0f64;
    // Per-round memos: the probe is a pure function of (fleet, template)
    // and the template is static between migrations, so re-simulate only
    // when churn actually changed the fleet — and rebuild the POOL arrays
    // only when the drop set (or the weight vector) itself changed.
    let mut probe_cache: Option<LateProbe> = None;
    let mut pool_cache: (Vec<u32>, PoolArrays) = (Vec::new(), batch.masked_pool(&[]));
    let mut weight_cache: (Vec<f32>, PoolArrays) = (vec![1.0; n], pool_cache.1.clone());
    for epoch in 0..cfg.epochs {
        if let Some(state) = &scenario {
            runtime.set_profiles(state.profiles().to_vec());
        }
        runtime.begin_epoch();
        // Compile this round's fault outcomes before any traffic lands on
        // the ledger: who crashes mid-round, whose upload exhausts its
        // retry budget, and which aggregators sit inside an outage window
        // (their shards re-home to the deterministic cyclic successor for
        // the whole round — ledger routing and tier timing alike).
        let round_plan = match (&mut faults, &scenario) {
            (Some(fstate), Some(state)) => {
                if let Some(topo) = &topology {
                    let outaged = fstate.outaged_aggregators(topo.num_aggregators());
                    let rehome = (!outaged.is_empty()).then(|| topo.failover_map(&outaged));
                    if let Some(map) = &rehome {
                        let served = map
                            .iter()
                            .enumerate()
                            .filter(|&(k, &t)| t as usize != k)
                            .count();
                        fstate.note_failovers(served as u64);
                    }
                    runtime.network.set_rehome(rehome.clone());
                    runtime.set_failover(rehome);
                }
                Some(fstate.compile_round(state.profiles()))
            }
            _ => None,
        };
        // Crashed devices lose the round entirely — their update never
        // forms, like churn. Exhausted uploads survive: parked in the
        // staleness buffer, they arrive next round instead.
        let (crashed, exhausted) = match (&round_plan, &scenario) {
            (Some(plan), Some(state)) => {
                let avail: Vec<bool> = state.profiles().iter().map(|p| p.available).collect();
                (plan.crashed_devices(&avail), plan.exhausted_uploads(&avail))
            }
            _ => (Vec::new(), Vec::new()),
        };
        if buffering {
            // Deferred protocol traffic from earlier rounds' late devices
            // lands in this epoch's ledger window — accounted in the round
            // where it arrives, not the round where it was cut.
            runtime.carry_in();
        }
        if policy_buffering {
            // Live re-balancing: price the fleet as it stands (churn-absent
            // devices cost UNAVAILABLE_COST_FACTOR× their nominal rate) and
            // migrate tree nodes off devices whose per-node price stayed
            // above `cfg.rebalance_threshold` × the fleet mean for
            // `cfg.rebalance_patience` consecutive rounds.
            if let Some(prices) = runtime.node_costs_micros(layers, EMBEDDING_BYTES) {
                let mean =
                    prices.iter().map(|&p| p as f64).sum::<f64>() / prices.len().max(1) as f64;
                let mut overloaded: Vec<u32> = Vec::new();
                for (d, &p) in prices.iter().enumerate() {
                    if p as f64 > cfg.rebalance_threshold * mean {
                        streaks[d] += 1;
                        if streaks[d] >= cfg.rebalance_patience {
                            overloaded.push(d as u32);
                        }
                    } else {
                        streaks[d] = 0;
                    }
                }
                if !overloaded.is_empty() {
                    let outcome = rebalance_assignment(&mut assignment, &prices, &overloaded);
                    for &d in &overloaded {
                        streaks[d as usize] = 0;
                    }
                    if outcome.moved_nodes > 0 {
                        migrations += 1;
                        migrated_nodes += outcome.moved_nodes as u64;
                        trees = (0..n as u32)
                            .map(|v| DeviceTree::build(kind, v, assignment.kept(v).to_vec()))
                            .collect();
                        // Devices that just inherited a branch never held
                        // its leaves' features: top up only the missing
                        // (owner, neighbor) pairs, on this epoch's ledger.
                        exchange_missing_features(
                            &ds.features,
                            ds.feature_dim,
                            &trees,
                            cfg.epsilon,
                            &mut rng,
                            &mut runtime.network,
                            &mut exchange,
                        );
                        batch = build_batched(&trees, &ds.features, ds.feature_dim, &exchange);
                        work_template = Some(build_template(&trees, &batch.tree_sizes));
                        probe_cache = None;
                        pool_cache = (Vec::new(), batch.masked_pool(&[]));
                        weight_cache = (vec![1.0; n], pool_cache.1.clone());
                    }
                }
            }
        }
        // Probe this round's timing on the live fleet: devices whose
        // updates land past the deadline leave the barrier — dropped
        // forever under `Deadline`, parked in the staleness buffer until
        // their arrival round under `Buffered`.
        let late_staleness: Vec<(u32, u32)> = match (&work_template, &scenario) {
            (Some(template), Some(state)) => {
                // A fault plan changes every round even on a frozen
                // fleet, so the memo only holds on fault-free rounds.
                let stale = round_plan.is_some()
                    || probe_cache
                        .as_ref()
                        .is_none_or(|(fleet, _)| fleet.as_slice() != state.profiles());
                if stale {
                    // The round's decisions happen at event granularity:
                    // the policy's arrival-time handlers subscribe to the
                    // scheduled event stream and judge each update as it
                    // lands (hierarchical mode routes events to per-shard
                    // handlers, each cutting against its own local
                    // median). The retired lockstep probe survives as a
                    // bisection aid behind `cfg.lockstep_runtime` — both
                    // paths are bit-identical by construction.
                    // The lockstep probe predates fault injection and
                    // cannot see a plan; faulted rounds always run the
                    // event-driven path.
                    let lates = if cfg.lockstep_runtime && round_plan.is_none() {
                        let timing = simulate_epoch(state.profiles(), template);
                        match &topology {
                            Some(topo) => shard_late_with_staleness(&policy, &timing, topo),
                            None => policy.late_with_staleness(&timing),
                        }
                    } else {
                        let schedule = EventDrivenRuntime::new_with_faults(
                            state.profiles(),
                            template,
                            round_plan.as_ref(),
                        );
                        match &topology {
                            Some(topo) => {
                                let mut shards = ShardRoundPolicies::new(&policy, &schedule, topo);
                                schedule.run(|t, ev| shards.on_event(t, ev));
                                shards.verdicts()
                            }
                            None => {
                                let mut round = RoundPolicy::new(&policy, &schedule);
                                schedule.run(|t, ev| round.on_event(t, ev));
                                round.verdicts()
                            }
                        }
                    };
                    probe_cache = Some((state.profiles().to_vec(), lates));
                }
                probe_cache.as_ref().expect("probe just cached").1.clone()
            }
            _ => Vec::new(),
        };
        let late: Vec<u32> = late_staleness.iter().map(|&(d, _)| d).collect();
        // Churn makes absent devices actually absent: they send no
        // protocol messages and their embeddings leave the POOL for the
        // rounds they sit out.
        let absent: Vec<u32> = match &scenario {
            Some(state) => state
                .profiles()
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.available)
                .map(|(d, _)| d as u32)
                .collect(),
            None => Vec::new(),
        };
        let pool: PoolArrays = if buffering {
            // Weighted POOL: absent and late devices contribute nothing
            // this round; buffered updates blend back in at
            // `decay^staleness` in the round they arrive — even if their
            // sender is late or absent again (the update already landed).
            let arrivals = staleness_buffer.advance(n);
            let mut weights = vec![1.0f32; n];
            for &d in absent.iter().chain(&crashed) {
                weights[d as usize] = 0.0;
            }
            for &d in late.iter().chain(&exhausted) {
                weights[d as usize] = 0.0;
            }
            for (d, w) in arrivals.iter().enumerate() {
                weights[d] += *w as f32;
            }
            if weights != weight_cache.0 {
                weight_cache = (weights.clone(), batch.weighted_pool(&weights));
            }
            weight_cache.1.clone()
        } else {
            let mut dropped: Vec<u32> = absent.iter().chain(late.iter()).copied().collect();
            dropped.sort_unstable();
            dropped.dedup();
            if dropped != pool_cache.0 {
                pool_cache = (dropped.clone(), batch.masked_pool(&dropped));
            }
            pool_cache.1.clone()
        };
        let mut tape = Tape::new();
        let h = forward_pooled(
            &mut tape,
            &store,
            &encoder,
            &batch,
            true,
            &mut rng,
            &pool,
            topology.as_ref(),
        );

        let loss_var: VarId = match cfg.task {
            TaskKind::Supervised => {
                let dec = decoder.as_ref().expect("supervised head");
                let logits = dec.forward(&mut tape, &store, h);
                cross_entropy_masked(
                    &mut tape,
                    logits,
                    targets.clone(),
                    train_mask.clone().expect("supervised mask"),
                )
            }
            TaskKind::Unsupervised => {
                let (src, dst) = pos_pairs.clone().expect("unsupervised pairs");
                let negs = lumos_data::sample_non_edges(
                    &ds.graph,
                    src.len() * cfg.negatives_per_positive,
                    &mut rng,
                );
                let neg_src: Rc<Vec<u32>> = Rc::new(negs.iter().map(|&(u, _)| u).collect());
                let neg_dst: Rc<Vec<u32>> = Rc::new(negs.iter().map(|&(_, v)| v).collect());
                let pos_logits = link_logits(&mut tape, h, src, dst);
                let neg_logits = link_logits(&mut tape, h, neg_src, neg_dst);
                link_prediction_loss(&mut tape, pos_logits, neg_logits)
            }
        };
        let loss = tape.value(loss_var).item() as f64;

        store.zero_grad();
        let grads = tape.backward(loss_var);
        tape.accumulate_param_grads(&grads, &mut store);
        opt.step(&mut store);

        // Protocol message accounting for this epoch (§VI-B/C); devices
        // dropped by the deadline and devices churned out contribute no
        // messages and do not gate the simulated barrier. Under the
        // buffered policy the late devices' silenced sends are collected
        // and re-injected `staleness` rounds later by `carry_in`.
        let mut late_sends: Vec<(u32, u32, u64)> = Vec::new();
        // Crashed devices lose the round outright — like churn, they send
        // nothing now or later. Exhausted uploads are parked: silenced on
        // this round's ledger but captured for re-injection one round
        // later. Policy-late devices park only when the policy buffers;
        // the deadline policy genuinely drops them even under faults.
        let mut dropped_now: Vec<u32> = absent.iter().chain(&crashed).copied().collect();
        let mut parked: Vec<u32> = exhausted.clone();
        if policy_buffering {
            parked.extend(late.iter().copied());
        } else {
            dropped_now.extend(late.iter().copied());
        }
        record_epoch_messages(
            &trees,
            cfg,
            &mut runtime.network,
            edge_split.as_ref(),
            &parked,
            &dropped_now,
            if buffering {
                Some(&mut late_sends)
            } else {
                None
            },
            topology.as_ref(),
        );
        if buffering {
            if policy_buffering {
                for &(d, s) in &late_staleness {
                    staleness_buffer.push(d, s);
                    let sends: Vec<(u32, u32, u64)> = late_sends
                        .iter()
                        .filter(|&&(from, _, _)| from == d)
                        .copied()
                        .collect();
                    runtime.defer_sends(s, sends);
                }
            }
            // A send that ran out its retry budget degrades — it arrives
            // one round late (modulo the policy's staleness decay) — but
            // never disappears.
            for &d in &exhausted {
                staleness_buffer.push(d, 1);
                let sends: Vec<(u32, u32, u64)> = late_sends
                    .iter()
                    .filter(|&&(from, _, _)| from == d)
                    .copied()
                    .collect();
                runtime.defer_sends(1, sends);
            }
        }
        // Hand the plan to the runtime so the epoch's own simulation
        // replays the same crashes and retry chains the probe saw.
        runtime.set_fault_plan(round_plan);
        match async_min {
            // The async quorum: the epoch record's simulation closes the
            // round at the `min_updates`-th landing, the overflow rides
            // the staleness buffer, and nothing counts as dropped.
            Some(min_updates) if scenario.is_some() => {
                runtime.end_epoch_closing(
                    &batch.tree_sizes,
                    encoder.num_layers(),
                    &late,
                    min_updates,
                );
            }
            _ => {
                runtime.end_epoch_dropping(&batch.tree_sizes, encoder.num_layers(), &late);
            }
        }
        // Churn applies *between* rounds: the fleet after the last epoch is
        // never simulated, so advancing there would overcount drops.
        if epoch + 1 < cfg.epochs {
            if let Some(state) = &mut scenario {
                state.advance_round();
            }
        }

        // Periodic validation.
        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let val = evaluate(
                &store,
                &encoder,
                decoder.as_ref(),
                &batch,
                ds,
                cfg,
                node_split.as_ref(),
                edge_split.as_ref(),
                false,
                &mut rng,
            );
            best_val = best_val.max(val);
            report.history.push(EpochMetrics {
                epoch,
                loss,
                val_metric: val,
            });
        }
    }

    // Phase 5: test metric.
    report.test_metric = evaluate(
        &store,
        &encoder,
        decoder.as_ref(),
        &batch,
        ds,
        cfg,
        node_split.as_ref(),
        edge_split.as_ref(),
        true,
        &mut rng,
    );
    report.best_val_metric = best_val;
    report.avg_messages_per_device_per_epoch = runtime.avg_messages_per_device_per_epoch();
    report.avg_epoch_secs = runtime.avg_epoch_wall_secs();
    report.avg_epoch_makespan = runtime.avg_epoch_makespan();
    if let Some(state) = &scenario {
        let recovery = faults
            .as_ref()
            .map(|f| f.counters().clone())
            .unwrap_or_default();
        report.sim = Some(SimSummary {
            scenario: state.scenario().name().to_string(),
            total_virtual_secs: runtime.total_sim_secs(),
            avg_epoch_virtual_secs: runtime.avg_sim_epoch_secs(),
            straggler_sequence: runtime.straggler_sequence(),
            mean_utilization: runtime.mean_sim_utilization(),
            dropped_device_rounds: state.dropped_device_rounds(),
            late_drops: runtime.late_drops(),
            buffered_updates: if buffering {
                staleness_buffer.total_buffered()
            } else {
                0
            },
            // The deadline policy wastes its cuts even when fault
            // recovery has the buffering machinery switched on.
            wasted_updates: if policy_buffering {
                0
            } else {
                runtime.late_drops()
            },
            migrations,
            migrated_nodes,
            lost_messages: recovery.lost_messages,
            retries: recovery.retries,
            retry_secs: recovery.retry_secs,
            crashed_devices: recovery.crashed_devices,
            failovers: recovery.failovers,
        });
    }
    report
}

/// Forward pass over the batched forest followed by the POOL layer
/// (Eq. 31): mean of all leaf embeddings per global vertex, gathered
/// through `pool` — the batch's full arrays, a
/// [`BatchedTrees::masked_pool`] view with dropped devices excluded, or a
/// [`BatchedTrees::weighted_pool`] view with per-device staleness weights.
/// With a topology the POOL runs tier by tier ([`tiered_pool`]); flat mode
/// keeps the seed op sequence — and therefore its bitstream — untouched.
#[allow(clippy::too_many_arguments)]
fn forward_pooled(
    tape: &mut Tape,
    store: &ParamStore,
    encoder: &GnnEncoder,
    batch: &BatchedTrees,
    training: bool,
    rng: &mut Xoshiro256pp,
    pool: &PoolArrays,
    topo: Option<&Topology>,
) -> VarId {
    let x = tape.constant(batch.features.clone());
    let h_tree = encoder.forward(tape, store, x, &batch.mg, training, rng);
    if let Some(topo) = topo {
        if let Some(h) = tiered_pool(tape, h_tree, batch.num_vertices, pool, topo) {
            return h;
        }
    }
    let mut leaves = tape.gather_rows(h_tree, pool.leaves.clone());
    // Fractional staleness weights insert one extra per-leaf scale between
    // gather and scatter; uniform pools skip it, keeping the default op
    // sequence — and therefore its float results — untouched.
    if let Some(w) = &pool.leaf_weights {
        leaves = tape.scale_rows(leaves, w.clone());
    }
    let summed = tape.scatter_add_rows(leaves, pool.vertices.clone(), batch.num_vertices);
    tape.scale_rows(summed, pool.coeff.clone())
}

/// The hierarchical POOL: each aggregator scatter-adds its own members'
/// (optionally staleness-scaled) leaf rows into a local partial, the
/// server sums the K partials, and the per-vertex mean coefficients
/// normalize once at the top — Eq. 31 evaluated tier by tier. The shard
/// slices come straight off the pool arrays: trees are laid out in device
/// order, so an aggregator's leaves are one contiguous run of `owners`.
/// Returns `None` when no shard holds a surviving leaf; the caller's flat
/// sequence then pools the empty arrays to zero exactly as before.
fn tiered_pool(
    tape: &mut Tape,
    h_tree: VarId,
    num_vertices: usize,
    pool: &PoolArrays,
    topo: &Topology,
) -> Option<VarId> {
    let mut server_sum: Option<VarId> = None;
    let mut lo = 0usize;
    for (_, members) in topo.ranges() {
        let hi = lo + pool.owners[lo..].partition_point(|&o| o < members.end);
        if lo == hi {
            continue;
        }
        let mut leaves = tape.gather_rows(h_tree, Rc::new(pool.leaves[lo..hi].to_vec()));
        if let Some(w) = &pool.leaf_weights {
            leaves = tape.scale_rows(leaves, Rc::new(w[lo..hi].to_vec()));
        }
        let partial = tape.scatter_add_rows(
            leaves,
            Rc::new(pool.vertices[lo..hi].to_vec()),
            num_vertices,
        );
        server_sum = Some(match server_sum {
            Some(acc) => tape.add(acc, partial),
            None => partial,
        });
        lo = hi;
    }
    server_sum.map(|s| tape.scale_rows(s, pool.coeff.clone()))
}

/// Evaluation on the validation or test split (no dropout).
#[allow(clippy::too_many_arguments)]
fn evaluate(
    store: &ParamStore,
    encoder: &GnnEncoder,
    decoder: Option<&LinearDecoder>,
    batch: &BatchedTrees,
    ds: &Dataset,
    cfg: &LumosConfig,
    node_split: Option<&NodeSplit>,
    edge_split: Option<&EdgeSplit>,
    test: bool,
    rng: &mut Xoshiro256pp,
) -> f64 {
    let mut tape = Tape::new();
    // Evaluation is offline: every device's embedding participates, and
    // the pooling runs server-side — no aggregation tier on the wire.
    let full_pool = batch.masked_pool(&[]);
    let h = forward_pooled(
        &mut tape, store, encoder, batch, false, rng, &full_pool, None,
    );
    match cfg.task {
        TaskKind::Supervised => {
            let split = node_split.expect("supervised split");
            let mask = if test {
                &split.test_mask
            } else {
                &split.val_mask
            };
            let dec = decoder.expect("supervised head");
            let logits = dec.forward(&mut tape, store, h);
            accuracy_masked(tape.value(logits), &ds.labels, mask)
        }
        TaskKind::Unsupervised => {
            let split = edge_split.expect("unsupervised split");
            let (pos, neg) = if test {
                (&split.test_edges, &split.test_negatives)
            } else {
                (&split.val_edges, &split.val_negatives)
            };
            let score = |pairs: &[(u32, u32)], tape: &mut Tape| -> Vec<f32> {
                let src: Rc<Vec<u32>> = Rc::new(pairs.iter().map(|&(u, _)| u).collect());
                let dst: Rc<Vec<u32>> = Rc::new(pairs.iter().map(|&(_, v)| v).collect());
                let z = link_logits(tape, h, src, dst);
                tape.value(z).data().to_vec()
            };
            let pos_scores = score(pos, &mut tape);
            let neg_scores = score(neg, &mut tape);
            roc_auc(&pos_scores, &neg_scores)
        }
    }
}

/// Records the inter-device messages one training epoch incurs (§VI-B/C):
///
/// * each device sends the updated embedding of every neighbor leaf back to
///   that leaf's owner (one message per retained branch);
/// * each owner's pooled embedding requires no further messages (the leaves
///   arrived above);
/// * unsupervised training additionally fetches the embeddings of retained
///   neighbors and of sampled negatives (Eq. 33);
/// * finally every device ships its loss/gradient contribution to the
///   aggregation point.
///
/// Devices in `late` missed the aggregation deadline: their updates never
/// reached anyone this round, so none of their outbound messages are
/// accounted here (messages *to* them still are — their senders paid
/// either way). Under the buffered policy `deferred` collects those
/// silenced sends so the runtime can re-inject them in the round where
/// they actually arrive. Devices in `absent` are churned out entirely:
/// they send nothing, now or later.
///
/// With a topology the final aggregation tier routes through it: each
/// surviving device uploads to its own aggregator (same cost to the
/// device as a server upload) and every aggregator forwards exactly one
/// pooled partial to the server — per-round server traffic is
/// O(aggregators), not O(devices). A buffered-policy deferral still
/// targets the server directly: a stale partial arrives after its shard's
/// round already closed, so it skips the aggregator tier on re-injection.
#[allow(clippy::too_many_arguments)]
fn record_epoch_messages(
    trees: &[DeviceTree],
    cfg: &LumosConfig,
    net: &mut SimNetwork,
    edge_split: Option<&EdgeSplit>,
    late: &[u32],
    absent: &[u32],
    mut deferred: Option<&mut Vec<(u32, u32, u64)>>,
    topo: Option<&Topology>,
) {
    let mut silenced = vec![false; trees.len()];
    let mut parked = vec![false; trees.len()];
    for &d in absent {
        silenced[d as usize] = true;
    }
    for &d in late {
        silenced[d as usize] = true;
        parked[d as usize] = true;
    }
    for tree in trees {
        let u = tree.center;
        for &v in &tree.neighbors {
            // Leaf embedding u → owner v after the l-layer update.
            route_message(net, &mut deferred, &silenced, &parked, u, v);
        }
    }
    net.round();
    if cfg.task == TaskKind::Unsupervised {
        // Positive fetches: each training edge's embedding crosses once;
        // negatives are requested per sampled pair.
        if let Some(split) = edge_split {
            for &(u, v) in &split.train_edges {
                route_message(net, &mut deferred, &silenced, &parked, v, u);
            }
            let neg_count = split.train_edges.len() * cfg.negatives_per_positive;
            for i in 0..neg_count {
                // Negative-sample embedding transfers (uniformly attributed).
                let from = (i % trees.len()) as u32;
                let to = ((i / 2) % trees.len()) as u32;
                if from == to {
                    // A device already holds its own embedding — a
                    // self-addressed fetch never crosses the wire.
                    continue;
                }
                route_message(net, &mut deferred, &silenced, &parked, from, to);
            }
        }
        net.round();
    }
    // Loss/gradient aggregation: one message per surviving device — to
    // the server directly in flat mode, to the device's own aggregator
    // (then one partial per aggregator up to the server) in hierarchical
    // mode.
    match topo {
        Some(topo) => {
            for v in 0..trees.len() as u32 {
                if silenced[v as usize] {
                    if parked[v as usize] {
                        if let Some(buf) = deferred.as_deref_mut() {
                            buf.push((v, SimNetwork::SERVER, EMBEDDING_BYTES));
                        }
                    }
                    continue;
                }
                net.send_to_aggregator(v, EMBEDDING_BYTES);
            }
            for shard in 0..topo.num_aggregators() as u32 {
                // An outage-covered aggregator ships nothing: its members
                // were re-homed to the successor, whose own (merged)
                // partial is sent above.
                if net.rehome_target(shard) != shard {
                    continue;
                }
                net.send_aggregator_to_server(shard, EMBEDDING_BYTES);
            }
        }
        None => {
            for v in 0..trees.len() as u32 {
                route_message(
                    net,
                    &mut deferred,
                    &silenced,
                    &parked,
                    v,
                    SimNetwork::SERVER,
                );
            }
        }
    }
    net.round();
}

/// Routes one protocol message: silenced senders contribute nothing to the
/// live ledger; the parked subset (deadline-late, not churn-absent) is
/// additionally captured in `deferred` for later re-injection when the
/// buffered policy is collecting.
fn route_message(
    net: &mut SimNetwork,
    deferred: &mut Option<&mut Vec<(u32, u32, u64)>>,
    silenced: &[bool],
    parked: &[bool],
    from: u32,
    to: u32,
) {
    if silenced[from as usize] {
        if parked[from as usize] {
            if let Some(buf) = deferred.as_deref_mut() {
                buf.push((from, to, EMBEDDING_BYTES));
            }
        }
        return;
    }
    if to == SimNetwork::SERVER {
        net.send_to_server(from, EMBEDDING_BYTES);
    } else {
        net.send(from, to, EMBEDDING_BYTES);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;
    use lumos_gnn::Backbone;

    fn smoke_config(task: TaskKind) -> LumosConfig {
        LumosConfig::new(Backbone::Gcn, task)
            .with_epochs(30)
            .with_mcmc_iterations(30)
            .with_seed(7)
    }

    #[test]
    fn supervised_run_beats_random_guessing() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised);
        let report = run_lumos(&ds, &cfg);
        // 4 balanced classes → random ≈ 0.25. Lumos must clearly beat it.
        assert!(
            report.test_metric > 0.4,
            "accuracy {} too low",
            report.test_metric
        );
        assert!(!report.history.is_empty());
        assert!(report.avg_messages_per_device_per_epoch > 0.0);
        assert!(report.init_messages > 0);
        assert!(report.constructor.trimmed);
    }

    #[test]
    fn unsupervised_run_beats_random_auc() {
        let ds = Dataset::lastfm_like(Scale::Smoke);
        // Link prediction under ε = 2 needs the paper's longer training to
        // rise above the LDP noise floor (§VIII-B uses 300 epochs).
        let mut cfg = smoke_config(TaskKind::Unsupervised).with_epochs(500);
        cfg.eval_every = 50;
        let report = run_lumos(&ds, &cfg);
        assert!(
            report.test_metric > 0.57,
            "AUC {} too low",
            report.test_metric
        );
    }

    #[test]
    fn loss_decreases_during_training() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(40);
        let report = run_lumos(&ds, &cfg);
        let first = report.history.first().unwrap().loss;
        let last = report.history.last().unwrap().loss;
        assert!(last < first, "loss {first} → {last} must decrease");
    }

    #[test]
    fn trimming_reduces_messages_and_max_workload() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let trimmed = run_lumos(&ds, &smoke_config(TaskKind::Supervised).with_epochs(3));
        let untrimmed = run_lumos(
            &ds,
            &smoke_config(TaskKind::Supervised)
                .with_epochs(3)
                .without_tree_trimming(),
        );
        assert!(
            trimmed.avg_messages_per_device_per_epoch < untrimmed.avg_messages_per_device_per_epoch,
            "trimming must cut communication: {} vs {}",
            trimmed.avg_messages_per_device_per_epoch,
            untrimmed.avg_messages_per_device_per_epoch
        );
        assert!(trimmed.constructor.max_workload < untrimmed.constructor.max_workload);
        assert!(trimmed.avg_epoch_makespan < untrimmed.avg_epoch_makespan);
    }

    #[test]
    fn bitsliced_backend_is_outcome_identical_with_cheaper_crypto() {
        // The comparison engine decides only *how* orderings are computed:
        // the trees, and therefore the entire training trajectory, must be
        // bit-identical — while the constructor's secure traffic collapses.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(5);
        let scalar = run_lumos(&ds, &cfg);
        let sliced = run_lumos(
            &ds,
            &cfg.clone()
                .with_compare_backend(lumos_balance::CompareBackend::Bitsliced),
        );
        assert_eq!(scalar.test_metric.to_bits(), sliced.test_metric.to_bits());
        assert_eq!(scalar.final_loss().to_bits(), sliced.final_loss().to_bits());
        assert_eq!(
            scalar.constructor.max_workload,
            sliced.constructor.max_workload
        );
        assert_eq!(
            scalar.constructor.comparisons,
            sliced.constructor.comparisons
        );
        assert!(
            sliced.constructor.secure_comm.messages * 8 < scalar.constructor.secure_comm.messages,
            "bit-slicing must collapse constructor traffic: {} vs {}",
            sliced.constructor.secure_comm.messages,
            scalar.constructor.secure_comm.messages
        );
    }

    #[test]
    fn ablation_without_virtual_nodes_runs() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(5)
            .without_virtual_nodes();
        let report = run_lumos(&ds, &cfg);
        assert!(report.test_metric > 0.0);
    }

    #[test]
    fn scenario_overlay_reports_sim_without_changing_training() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(6);
        let plain = run_lumos(&ds, &cfg);
        let hetero = run_lumos(
            &ds,
            &cfg.clone()
                .with_scenario(lumos_sim::Scenario::StragglerTail),
        );
        // Timing overlay only: the learned model is bit-identical.
        assert_eq!(plain.test_metric.to_bits(), hetero.test_metric.to_bits());
        assert_eq!(plain.final_loss().to_bits(), hetero.final_loss().to_bits());
        assert!(plain.sim.is_none());
        let sim = hetero.sim.expect("scenario run must report sim stats");
        assert_eq!(sim.scenario, "straggler-tail");
        assert_eq!(sim.straggler_sequence.len(), 6);
        assert!(sim.total_virtual_secs > 0.0);
        assert!(sim.avg_epoch_virtual_secs > 0.0);
        assert!(sim.mean_utilization > 0.0 && sim.mean_utilization <= 1.0);
        assert_eq!(sim.dropped_device_rounds, 0);
        assert_eq!(sim.late_drops, 0, "full-sync never drops");
        assert!(sim.dominant_straggler().is_some());
    }

    #[test]
    fn deadline_policy_drops_stragglers_and_shortens_epochs() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let full = run_lumos(&ds, &base);
        let deadline = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Deadline { factor: 2.0 }),
        );
        let (fs, ds_sim) = (full.sim.clone().unwrap(), deadline.sim.clone().unwrap());
        // The Pareto tail lands past 2× the median every round.
        assert!(ds_sim.late_drops > 0, "straggler tail must breach deadline");
        assert_eq!(fs.late_drops, 0);
        // Dropping them closes the barrier earlier.
        assert!(
            ds_sim.avg_epoch_virtual_secs < fs.avg_epoch_virtual_secs,
            "deadline {} must undercut full-sync {}",
            ds_sim.avg_epoch_virtual_secs,
            fs.avg_epoch_virtual_secs
        );
        // And fewer updates cross the wire.
        assert!(
            deadline.avg_messages_per_device_per_epoch < full.avg_messages_per_device_per_epoch
        );
        // By design NOT a timing overlay: the pooled update changed.
        assert_ne!(
            full.final_loss().to_bits(),
            deadline.final_loss().to_bits(),
            "dropping updates must change the training math"
        );
        // Still learns on the surviving cohort.
        assert!(deadline.test_metric > 0.3);
    }

    #[test]
    fn deadline_policy_is_inert_without_a_scenario() {
        // No profiles → no timing signal → FullSync behavior, bit for bit.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(5);
        let plain = run_lumos(&ds, &cfg);
        let polled = run_lumos(
            &ds,
            &cfg.clone()
                .with_aggregation_policy(AggregationPolicy::Deadline { factor: 1.5 }),
        );
        assert_eq!(plain.test_metric.to_bits(), polled.test_metric.to_bits());
        assert_eq!(plain.final_loss().to_bits(), polled.final_loss().to_bits());
        assert_eq!(
            plain.avg_messages_per_device_per_epoch.to_bits(),
            polled.avg_messages_per_device_per_epoch.to_bits()
        );
        assert!(polled.sim.is_none());
    }

    #[test]
    fn deadline_runs_are_seed_deterministic() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_scenario(lumos_sim::Scenario::StragglerTail)
            .with_aggregation_policy(AggregationPolicy::Deadline { factor: 2.0 });
        let a = run_lumos(&ds, &cfg);
        let b = run_lumos(&ds, &cfg);
        assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
        assert_eq!(a.final_loss().to_bits(), b.final_loss().to_bits());
        let (sa, sb) = (a.sim.unwrap(), b.sim.unwrap());
        assert_eq!(sa.late_drops, sb.late_drops);
        assert_eq!(sa.straggler_sequence, sb.straggler_sequence);
        assert_eq!(
            sa.total_virtual_secs.to_bits(),
            sb.total_virtual_secs.to_bits()
        );
    }

    #[test]
    fn uniform_scenario_beats_straggler_tail_on_makespan() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(4);
        let uniform = run_lumos(
            &ds,
            &cfg.clone().with_scenario(lumos_sim::Scenario::Uniform),
        );
        let tail = run_lumos(
            &ds,
            &cfg.clone()
                .with_scenario(lumos_sim::Scenario::StragglerTail),
        );
        let (u, t) = (uniform.sim.unwrap(), tail.sim.unwrap());
        assert!(
            u.avg_epoch_virtual_secs < t.avg_epoch_virtual_secs,
            "uniform {} must undercut straggler-tail {}",
            u.avg_epoch_virtual_secs,
            t.avg_epoch_virtual_secs
        );
    }

    #[test]
    fn churn_scenario_drops_devices() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(8)
            .with_scenario(lumos_sim::Scenario::Churn);
        let report = run_lumos(&ds, &cfg);
        let sim = report.sim.unwrap();
        // 300 devices × 10% dropout × 8 rounds ⇒ churn must bite.
        assert!(sim.dropped_device_rounds > 0);
    }

    #[test]
    fn churn_silences_absent_devices() {
        // Regression: churn used to be a pure timing overlay — absent
        // devices kept sending protocol messages and pooling their
        // embeddings as if they had never left.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(8);
        let plain = run_lumos(&ds, &cfg);
        let churn = run_lumos(&ds, &cfg.clone().with_scenario(lumos_sim::Scenario::Churn));
        let sim = churn.sim.clone().unwrap();
        assert!(sim.dropped_device_rounds > 0, "churn must bite");
        assert!(
            churn.avg_messages_per_device_per_epoch < plain.avg_messages_per_device_per_epoch,
            "absent devices must send nothing: churn {} vs frozen fleet {}",
            churn.avg_messages_per_device_per_epoch,
            plain.avg_messages_per_device_per_epoch
        );
        assert_ne!(
            plain.final_loss().to_bits(),
            churn.final_loss().to_bits(),
            "absent devices must leave the POOL"
        );
    }

    #[test]
    fn no_self_addressed_negative_fetches() {
        // Regression: the uniform attribution of negative-sample transfers
        // maps index 0 to the pair (0, 0) — a device fetching its own
        // embedding — which used to be recorded as wire traffic.
        let ds = Dataset::lastfm_like(Scale::Smoke);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let split = EdgeSplit::uniform(&ds.graph, &mut rng);
        let n = ds.num_nodes();
        let trees: Vec<DeviceTree> = (0..n as u32)
            .map(|v| DeviceTree::build(LocalGraphKind::VirtualNodeTree, v, vec![]))
            .collect();
        let cfg = LumosConfig::new(lumos_gnn::Backbone::Gcn, TaskKind::Unsupervised);
        let mut net = SimNetwork::new(n);
        let snap = net.snapshot();
        record_epoch_messages(&trees, &cfg, &mut net, Some(&split), &[], &[], None, None);
        let edges = net.sent_matrix_since(&snap);
        assert!(!edges.is_empty());
        for ((from, to), _) in edges {
            assert_ne!(from, to, "self-addressed message on the ledger");
        }
    }

    #[test]
    fn buffered_policy_banks_late_updates_and_keeps_the_makespan_win() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let full = run_lumos(&ds, &base);
        let deadline = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Deadline { factor: 2.0 }),
        );
        let buffered = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Buffered {
                    factor: 2.0,
                    decay: 0.5,
                }),
        );
        let fs = full.sim.clone().unwrap();
        let dsim = deadline.sim.clone().unwrap();
        let bs = buffered.sim.clone().unwrap();
        // Late work is banked for a later round, never discarded.
        assert!(bs.buffered_updates > 0, "tail must breach the deadline");
        assert_eq!(bs.wasted_updates, 0, "buffered never wastes an update");
        assert!(dsim.wasted_updates > 0, "deadline discards late work");
        assert_eq!(fs.wasted_updates, 0);
        // The barrier win survives the buffering.
        let deadline_win = fs.avg_epoch_virtual_secs - dsim.avg_epoch_virtual_secs;
        let buffered_win = fs.avg_epoch_virtual_secs - bs.avg_epoch_virtual_secs;
        assert!(deadline_win > 0.0);
        assert!(
            buffered_win >= 0.95 * deadline_win,
            "buffered win {buffered_win} must keep ≥95% of the deadline win {deadline_win}"
        );
        // Blending stale updates is a genuinely different trajectory from
        // dropping them (and from never cutting at all).
        assert_ne!(
            buffered.final_loss().to_bits(),
            deadline.final_loss().to_bits()
        );
        assert_ne!(buffered.final_loss().to_bits(), full.final_loss().to_bits());
        assert!(buffered.test_metric > 0.3);
    }

    #[test]
    fn async_quorum_closes_rounds_early_and_never_drops() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let full = run_lumos(&ds, &base);
        // 80% quorum: the round closes when 4 of every 5 updates land —
        // the Pareto tail stops gating the barrier entirely.
        let quorum = ds.num_nodes() * 4 / 5;
        let asynced = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Async {
                    min_updates: quorum,
                }),
        );
        let fs = full.sim.clone().unwrap();
        let asim = asynced.sim.clone().unwrap();
        // Nothing is dropped and nothing is wasted: the overflow rides the
        // staleness buffer into the next round at full weight.
        assert_eq!(asim.late_drops, 0, "the quorum never drops");
        assert_eq!(asim.wasted_updates, 0, "the quorum never wastes");
        assert!(asim.buffered_updates > 0, "the overflow must be carried");
        // Closing at the quorum beats waiting for the straggler tail.
        assert!(
            asim.avg_epoch_virtual_secs < fs.avg_epoch_virtual_secs,
            "async {} must undercut full-sync {}",
            asim.avg_epoch_virtual_secs,
            fs.avg_epoch_virtual_secs
        );
        // A genuinely different trajectory that still learns.
        assert_ne!(asynced.final_loss().to_bits(), full.final_loss().to_bits());
        assert!(asynced.test_metric > 0.3);
    }

    #[test]
    fn zero_decay_buffered_collapses_to_deadline_bitwise() {
        // `decay = 0` means an update arriving late is worth nothing —
        // exactly the deadline policy, and the runs must agree bit for bit.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let deadline = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Deadline { factor: 2.0 }),
        );
        let collapsed = run_lumos(
            &ds,
            &base
                .clone()
                .with_aggregation_policy(AggregationPolicy::Buffered {
                    factor: 2.0,
                    decay: 0.0,
                }),
        );
        assert_eq!(
            deadline.test_metric.to_bits(),
            collapsed.test_metric.to_bits()
        );
        assert_eq!(
            deadline.final_loss().to_bits(),
            collapsed.final_loss().to_bits()
        );
        assert_eq!(
            deadline.avg_messages_per_device_per_epoch.to_bits(),
            collapsed.avg_messages_per_device_per_epoch.to_bits()
        );
        assert_eq!(deadline.sim, collapsed.sim);
    }

    #[test]
    fn buffered_churn_run_performs_live_migrations() {
        // Devices that sit out consecutive rounds are priced at 4× their
        // nominal rate, sail past the 2× fleet-mean threshold, and must
        // have their tree nodes migrated to cheaper endpoints.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(8)
            .with_scenario(lumos_sim::Scenario::Churn)
            .with_aggregation_policy(AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 0.5,
            });
        let report = run_lumos(&ds, &cfg);
        let sim = report.sim.unwrap();
        assert!(
            sim.migrations >= 1,
            "sustained churn overload must trigger a live migration"
        );
        assert!(sim.migrated_nodes >= 1);
        assert!(report.test_metric > 0.3, "still learns through churn");
    }

    #[test]
    fn runs_are_deterministic_under_seed() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised).with_epochs(5);
        let a = run_lumos(&ds, &cfg);
        let b = run_lumos(&ds, &cfg);
        assert_eq!(a.test_metric, b.test_metric);
        assert_eq!(a.final_loss(), b.final_loss());
    }

    #[test]
    fn hierarchical_run_learns_and_differs_from_flat() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised);
        let flat = run_lumos(&ds, &cfg);
        let tiered = run_lumos(
            &ds,
            &cfg.clone()
                .with_topology(lumos_topo::TopologyConfig::Hierarchical { aggregators: 4 }),
        );
        // Sharded balance reshapes the trees, so the trajectory genuinely
        // changes — and still clearly beats random guessing.
        assert!(
            tiered.test_metric > 0.4,
            "hierarchical accuracy {} too low",
            tiered.test_metric
        );
        assert_ne!(
            flat.final_loss().to_bits(),
            tiered.final_loss().to_bits(),
            "per-shard balancing must change tree placement"
        );
        // Per-shard MCMC compares devices only inside their own lanes.
        assert!(tiered.constructor.comparisons < flat.constructor.comparisons);
    }

    #[test]
    fn hierarchical_runs_are_seed_deterministic() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_topology(lumos_topo::TopologyConfig::Hierarchical { aggregators: 3 })
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let a = run_lumos(&ds, &cfg);
        let b = run_lumos(&ds, &cfg);
        assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
        assert_eq!(a.final_loss().to_bits(), b.final_loss().to_bits());
        let (sa, sb) = (a.sim.unwrap(), b.sim.unwrap());
        assert_eq!(
            sa.total_virtual_secs.to_bits(),
            sb.total_virtual_secs.to_bits()
        );
    }

    #[test]
    fn single_aggregator_topology_collapses_to_flat_bitwise() {
        // `Hierarchical { aggregators: 1 }` resolves to `Flat` up front —
        // one aggregator that hears every device and forwards one partial
        // IS the server's front door, so the whole run must agree bit for
        // bit with the flat path (satellite 3: RunReport identity).
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(5)
            .with_scenario(lumos_sim::Scenario::StragglerTail);
        let flat = run_lumos(&ds, &cfg);
        let one = run_lumos(
            &ds,
            &cfg.clone()
                .with_topology(lumos_topo::TopologyConfig::Hierarchical { aggregators: 1 }),
        );
        assert_eq!(flat.test_metric.to_bits(), one.test_metric.to_bits());
        assert_eq!(flat.final_loss().to_bits(), one.final_loss().to_bits());
        assert_eq!(
            flat.avg_messages_per_device_per_epoch.to_bits(),
            one.avg_messages_per_device_per_epoch.to_bits()
        );
        assert_eq!(
            flat.avg_epoch_makespan.to_bits(),
            one.avg_epoch_makespan.to_bits()
        );
        assert_eq!(flat.constructor.comparisons, one.constructor.comparisons);
        assert_eq!(flat.sim, one.sim);
    }

    #[test]
    fn hierarchical_scenario_run_pays_the_aggregator_hop() {
        // With profiles installed, the epoch barrier extends to the last
        // aggregator partial's arrival at the server.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = smoke_config(TaskKind::Supervised)
            .with_epochs(4)
            .with_topology(lumos_topo::TopologyConfig::Hierarchical { aggregators: 4 })
            .with_scenario(lumos_sim::Scenario::Uniform);
        let report = run_lumos(&ds, &cfg);
        let sim = report.sim.expect("scenario run must report sim stats");
        assert!(sim.total_virtual_secs > 0.0);
        assert!(report.avg_epoch_makespan > 0.0);
        // 4 epochs is a smoke run: just confirm it trains at all.
        assert!(report.test_metric > 0.25);
    }

    #[test]
    fn default_rebalance_trigger_is_bit_identical_to_explicit_defaults() {
        // Satellite 1 regression: exposing the re-balancer knobs through
        // the config must leave the default trajectory untouched.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(8)
            .with_scenario(lumos_sim::Scenario::Churn)
            .with_aggregation_policy(AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 0.5,
            });
        let implicit = run_lumos(&ds, &base);
        let explicit = run_lumos(&ds, &base.clone().with_rebalance_trigger(2.0, 2));
        assert_eq!(
            implicit.test_metric.to_bits(),
            explicit.test_metric.to_bits()
        );
        assert_eq!(
            implicit.final_loss().to_bits(),
            explicit.final_loss().to_bits()
        );
        assert_eq!(implicit.sim, explicit.sim);
    }

    #[test]
    fn hair_trigger_rebalance_migrates_at_least_as_eagerly() {
        // A 1.01× threshold with single-round patience fires on any
        // overload the default (2×, 2 rounds) would have tolerated.
        let ds = Dataset::facebook_like(Scale::Smoke);
        let base = smoke_config(TaskKind::Supervised)
            .with_epochs(8)
            .with_scenario(lumos_sim::Scenario::Churn)
            .with_aggregation_policy(AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 0.5,
            });
        let default = run_lumos(&ds, &base);
        let eager = run_lumos(&ds, &base.clone().with_rebalance_trigger(1.01, 1));
        let (d, e) = (default.sim.unwrap(), eager.sim.unwrap());
        assert!(
            e.migrations >= d.migrations,
            "hair trigger must migrate at least as often: {} vs {}",
            e.migrations,
            d.migrations
        );
        assert!(e.migrations >= 1);
    }
}
