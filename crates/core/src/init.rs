//! LDP embedding initialization (§VI-A): the federated feature exchange.
//!
//! Every device `v` one-bit-encodes its feature under budget ε, splits the
//! dimensions into one bin per *recipient* — the devices whose trees contain
//! `v` as a neighbor leaf — and sends each bin to its recipient, who applies
//! the unbiased recovery of Eq. 27. In the untrimmed system the recipients
//! are exactly `v`'s neighbors and the fan-out equals `wl(v)`, matching the
//! paper's formulas verbatim; after trimming the recipient set is
//! `{u : v ∈ N_u}` (the devices that actually kept `v`), preserving the
//! ε-LDP-per-recipient guarantee of Theorem 4.

// BTreeMap, not HashMap: the recovered-feature map sits on the deterministic
// path (pooling reads it per (owner, neighbor) pair), and BTree iteration
// order is a function of the keys alone — no per-instance hash seed.
use std::collections::BTreeMap;

use lumos_common::rng::Xoshiro256pp;
use lumos_fed::SimNetwork;
use lumos_ldp::FeatureEncoder;

use crate::tree::DeviceTree;

/// Result of the federated feature exchange.
#[derive(Debug)]
pub struct LdpExchange {
    /// Recovered feature estimates: `(tree owner u, neighbor v) → x''_v`.
    pub recovered: BTreeMap<(u32, u32), Vec<f32>>,
    /// Total feature messages sent.
    pub messages: u64,
}

/// Executes the exchange for every device.
///
/// `features` is the row-major `[n, dim]` matrix of raw local features in
/// `[0, 1]`; `trees` defines who needs whose feature; `net` records each
/// message.
pub fn exchange_features(
    features: &[f32],
    dim: usize,
    trees: &[DeviceTree],
    epsilon: f64,
    rng: &mut Xoshiro256pp,
    net: &mut SimNetwork,
) -> LdpExchange {
    let n = trees.len();
    assert_eq!(features.len(), n * dim, "feature matrix shape mismatch");

    // Recipient sets: u needs v's feature iff v is a retained neighbor in
    // u's tree.
    let mut recipients: Vec<Vec<u32>> = vec![Vec::new(); n];
    for tree in trees {
        for &v in &tree.neighbors {
            recipients[v as usize].push(tree.center);
        }
    }

    // Wire cost of one binned message: each transmitted element carries its
    // 2-bit symbol plus a dimension index.
    let index_bits = (usize::BITS - (dim.max(2) - 1).leading_zeros()) as u64;
    let mut recovered = BTreeMap::new();
    let mut messages = 0u64;
    for v in 0..n as u32 {
        let recv = &recipients[v as usize];
        if recv.is_empty() {
            continue;
        }
        let fan_out = recv.len();
        let encoder = FeatureEncoder::new(epsilon, fan_out, dim, 0.0, 1.0);
        let feature = &features[v as usize * dim..(v as usize + 1) * dim];
        let msgs = encoder.encode_binned(feature, rng);
        for (k, msg) in msgs.iter().enumerate() {
            let u = recv[k];
            let elems = msg.transmitted() as u64;
            let bytes = (elems * (2 + index_bits)).div_ceil(8);
            net.send(v, u, bytes);
            messages += 1;
            recovered.insert((u, v), encoder.recover(msg));
        }
    }
    net.round();
    LdpExchange {
        recovered,
        messages,
    }
}

/// Top-up exchange for `(owner, neighbor)` pairs with no recovered estimate
/// yet — the incremental step a live tree migration needs: the receiving
/// device never held the migrated branch, so the neighbor's LDP-encoded
/// feature must cross the wire before the new leaves can pool. Existing
/// estimates are never recomputed (their ε budget is already spent); each
/// sender encodes fresh bins only for the devices newly keeping it,
/// preserving the per-recipient guarantee of Theorem 4. Returns the number
/// of messages sent (also added to `exchange.messages`).
pub fn exchange_missing_features(
    features: &[f32],
    dim: usize,
    trees: &[DeviceTree],
    epsilon: f64,
    rng: &mut Xoshiro256pp,
    net: &mut SimNetwork,
    exchange: &mut LdpExchange,
) -> u64 {
    let n = trees.len();
    assert_eq!(features.len(), n * dim, "feature matrix shape mismatch");
    let mut recipients: Vec<Vec<u32>> = vec![Vec::new(); n];
    for tree in trees {
        for &v in &tree.neighbors {
            if !exchange.recovered.contains_key(&(tree.center, v)) {
                recipients[v as usize].push(tree.center);
            }
        }
    }
    let index_bits = (usize::BITS - (dim.max(2) - 1).leading_zeros()) as u64;
    let mut messages = 0u64;
    for v in 0..n as u32 {
        let recv = &recipients[v as usize];
        if recv.is_empty() {
            continue;
        }
        let fan_out = recv.len();
        let encoder = FeatureEncoder::new(epsilon, fan_out, dim, 0.0, 1.0);
        let feature = &features[v as usize * dim..(v as usize + 1) * dim];
        let msgs = encoder.encode_binned(feature, rng);
        for (k, msg) in msgs.iter().enumerate() {
            let u = recv[k];
            let elems = msg.transmitted() as u64;
            let bytes = (elems * (2 + index_bits)).div_ceil(8);
            net.send(v, u, bytes);
            messages += 1;
            exchange.recovered.insert((u, v), encoder.recover(msg));
        }
    }
    if messages > 0 {
        net.round();
    }
    exchange.messages += messages;
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::LocalGraphKind;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(12)
    }

    /// Triangle where everyone keeps everyone: 6 messages.
    #[test]
    fn exchange_covers_every_tree_leaf() {
        let trees: Vec<DeviceTree> = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1, 2]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![0, 2]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 2, vec![0, 1]),
        ];
        let dim = 8;
        let features: Vec<f32> = (0..3 * dim).map(|i| (i % 10) as f32 / 10.0).collect();
        let mut net = SimNetwork::new(3);
        let ex = exchange_features(&features, dim, &trees, 2.0, &mut rng(), &mut net);
        assert_eq!(ex.messages, 6);
        assert_eq!(net.total_messages(), 6);
        for tree in &trees {
            for &v in &tree.neighbors {
                let rec = ex
                    .recovered
                    .get(&(tree.center, v))
                    .expect("every neighbor leaf must have a recovered feature");
                assert_eq!(rec.len(), dim);
                assert!(rec.iter().all(|x| x.is_finite()));
            }
        }
    }

    /// Asymmetric trimming: only device 0 keeps the edge. The fan-out of
    /// vertex 1 is one, and vertex 0 sends nothing.
    #[test]
    fn asymmetric_assignment_sends_one_direction() {
        let trees = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![]),
        ];
        let dim = 4;
        let features = vec![0.5f32; 2 * dim];
        let mut net = SimNetwork::new(2);
        let ex = exchange_features(&features, dim, &trees, 1.0, &mut rng(), &mut net);
        assert_eq!(ex.messages, 1);
        assert!(ex.recovered.contains_key(&(0, 1)));
        assert!(!ex.recovered.contains_key(&(1, 0)));
        assert_eq!(net.device(1).sent, 1);
        assert_eq!(net.device(0).sent, 0);
    }

    /// With a large budget, recovered features track the truth on the
    /// transmitted dimensions and equal 0.5 elsewhere.
    #[test]
    fn recovery_tracks_features_at_high_budget() {
        let trees = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![0]),
        ];
        let dim = 16;
        let mut features = vec![0.0f32; 2 * dim];
        // Vertex 1's feature: all ones.
        for i in 0..dim {
            features[dim + i] = 1.0;
        }
        let mut net = SimNetwork::new(2);
        // Large ε ⇒ bits nearly always match the truth.
        let ex = exchange_features(&features, dim, &trees, 2000.0, &mut rng(), &mut net);
        let rec = &ex.recovered[&(0, 1)];
        // Transmitted dims decode near 1; missing dims decode exactly 0.5.
        let mut sent = 0;
        for &x in rec {
            if (x - 0.5).abs() < 1e-6 {
                continue;
            }
            sent += 1;
            assert!(x > 0.9, "high-budget recovery should be near 1, got {x}");
        }
        assert!(sent > 0, "at least one dim must be transmitted");
    }

    #[test]
    fn missing_pair_top_up_fills_only_the_gaps() {
        // Initial trees: only device 0 keeps the 0–1 edge.
        let trees = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![]),
        ];
        let dim = 4;
        let features = vec![0.5f32; 2 * dim];
        let mut net = SimNetwork::new(2);
        let mut ex = exchange_features(&features, dim, &trees, 1.0, &mut rng(), &mut net);
        assert_eq!(ex.messages, 1);
        let before = ex.recovered[&(0, 1)].clone();
        // Migration hands the edge to device 1: its tree now needs vertex
        // 0's feature, which never crossed the wire.
        let migrated = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![0]),
        ];
        let sent = exchange_missing_features(
            &features,
            dim,
            &migrated,
            1.0,
            &mut rng(),
            &mut net,
            &mut ex,
        );
        assert_eq!(sent, 1, "only the new pair is exchanged");
        assert_eq!(ex.messages, 2);
        assert!(ex.recovered.contains_key(&(1, 0)));
        // The pre-existing estimate is untouched — its budget was spent.
        assert_eq!(ex.recovered[&(0, 1)], before);
        // Running it again is a no-op: nothing is missing anymore.
        let again = exchange_missing_features(
            &features,
            dim,
            &migrated,
            1.0,
            &mut rng(),
            &mut net,
            &mut ex,
        );
        assert_eq!(again, 0);
    }

    #[test]
    fn isolated_devices_are_silent() {
        let trees = vec![DeviceTree::build(
            LocalGraphKind::VirtualNodeTree,
            0,
            vec![],
        )];
        let features = vec![0.3f32; 8];
        let mut net = SimNetwork::new(1);
        let ex = exchange_features(&features, 8, &trees, 1.0, &mut rng(), &mut net);
        assert_eq!(ex.messages, 0);
        assert!(ex.recovered.is_empty());
    }
}
