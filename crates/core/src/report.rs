//! Run reports: everything the experiment harness needs to regenerate the
//! paper's figures from one training run.

use lumos_crypto::CommMeter;

/// Metrics recorded at an evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training loss at this epoch.
    pub loss: f64,
    /// Validation metric (accuracy or AUC, per task).
    pub val_metric: f64,
}

/// Statistics of the tree-construction phase.
#[derive(Debug, Clone, Default)]
pub struct ConstructorReport {
    /// Whether trimming ran (false for "w.o. TT").
    pub trimmed: bool,
    /// Whether the balancers actually ran cost-weighted. False when the
    /// `VirtualSecs` objective silently degenerated to node counts because
    /// no scenario supplied device profiles — check this before citing
    /// weighted-balancing numbers.
    pub weighted: bool,
    /// Workload per device after construction (Fig. 7's trimmed series).
    pub workloads: Vec<usize>,
    /// Objective `max_u wl(u)` after construction.
    pub max_workload: usize,
    /// Weighted objective `max_u c_u·|N_u|` (fixed-point µs) after
    /// construction; equals `max_workload` under the node-count objective.
    pub max_weighted_workload: u64,
    /// Objective before trimming (= max degree).
    pub untrimmed_max: usize,
    /// Secure-comparison communication (greedy + MCMC + Alg. 3).
    pub secure_comm: CommMeter,
    /// Number of secure comparisons executed.
    pub comparisons: u64,
    /// Device↔server messages during Alg. 3 coordination.
    pub server_messages: u64,
    /// Wall seconds spent constructing.
    pub wall_secs: f64,
    /// MCMC objective trace (empty when trimming is off).
    pub mcmc_trace: Vec<usize>,
}

/// Summary of a run's heterogeneous-device simulation (present when the
/// config set a `lumos_sim::Scenario`).
///
/// All times are *virtual* seconds from the discrete-event simulator —
/// deterministic under the run seed, unlike the measured wall-clock fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimSummary {
    /// Scenario name ("uniform", "mobile-fleet", "straggler-tail", "churn").
    pub scenario: String,
    /// Total simulated seconds across all training epochs.
    pub total_virtual_secs: f64,
    /// Mean simulated seconds per epoch (the scenario-sweep makespan).
    pub avg_epoch_virtual_secs: f64,
    /// Per-epoch straggler identity, in epoch order.
    pub straggler_sequence: Vec<u32>,
    /// Mean fraction of each epoch active devices spent busy.
    pub mean_utilization: f64,
    /// Device-rounds lost to churn (0 for churn-free scenarios).
    pub dropped_device_rounds: u64,
    /// Device-rounds dropped by the deadline aggregation policy (0 under
    /// the default full-sync barrier).
    pub late_drops: u64,
    /// Late updates blended into a later round's POOL by the buffered
    /// policy instead of being discarded (0 under full-sync and deadline).
    pub buffered_updates: u64,
    /// Late updates discarded forever — the deadline policy's drops (0
    /// under full-sync, and 0 by construction under buffered).
    pub wasted_updates: u64,
    /// Live re-balance events: rounds in which sustained overload moved
    /// tree nodes off a device (buffered policy only).
    pub migrations: u64,
    /// Tree nodes moved off overloaded devices across all migrations.
    pub migrated_nodes: u64,
    /// Injected message losses across the run — every lost transmission
    /// attempt, including each retry that was itself lost (0 without a
    /// `FaultSpec`).
    pub lost_messages: u64,
    /// Retransmissions scheduled by the recovery policy.
    pub retries: u64,
    /// Virtual seconds spent waiting in timeout + backoff + jitter before
    /// retransmitting.
    pub retry_secs: f64,
    /// Devices that crashed mid-round across the run (device-rounds; the
    /// same device crashing twice counts twice).
    pub crashed_devices: u64,
    /// Aggregator failovers: shard-rounds served by a successor
    /// aggregator because the home aggregator was inside an outage
    /// window.
    pub failovers: u64,
}

impl SimSummary {
    /// The device that straggled most often, with its epoch count.
    pub fn dominant_straggler(&self) -> Option<(u32, usize)> {
        // BTreeMap keeps the tally iteration key-ordered; the max_by_key
        // tie-break below is then order-independent by construction.
        let mut counts = std::collections::BTreeMap::new();
        for &d in &self.straggler_sequence {
            *counts.entry(d).or_insert(0usize) += 1;
        }
        // Deterministic tie-break: highest count, then lowest device id.
        counts
            .into_iter()
            .max_by_key(|&(d, c)| (c, std::cmp::Reverse(d)))
    }
}

/// Full report of a Lumos (or baseline) run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System name ("lumos", "centralized", "lpgnn", "naive-fedgnn", …).
    pub system: String,
    /// Dataset name.
    pub dataset: String,
    /// Backbone name ("GCN"/"GAT").
    pub backbone: String,
    /// Task name ("supervised"/"unsupervised").
    pub task: String,
    /// Test metric at the end of training (accuracy ∈ [0,1] or AUC).
    pub test_metric: f64,
    /// Best validation metric seen.
    pub best_val_metric: f64,
    /// Per-evaluation-point history.
    pub history: Vec<EpochMetrics>,
    /// Average inter-device messages per device per epoch (Fig. 8a).
    pub avg_messages_per_device_per_epoch: f64,
    /// Average wall seconds per training epoch (Fig. 8b).
    pub avg_epoch_secs: f64,
    /// Average modeled makespan per epoch (straggler units).
    pub avg_epoch_makespan: f64,
    /// Tree-constructor statistics (empty/default for baselines).
    pub constructor: ConstructorReport,
    /// One-off feature-exchange messages (LDP initialization phase).
    pub init_messages: u64,
    /// Heterogeneous-device simulation summary (None without a scenario).
    pub sim: Option<SimSummary>,
}

impl RunReport {
    /// Creates an empty report shell for a system/dataset/backbone/task.
    pub fn new(system: &str, dataset: &str, backbone: &str, task: &str) -> Self {
        Self {
            system: system.into(),
            dataset: dataset.into(),
            backbone: backbone.into(),
            task: task.into(),
            test_metric: 0.0,
            best_val_metric: 0.0,
            history: Vec::new(),
            avg_messages_per_device_per_epoch: 0.0,
            avg_epoch_secs: 0.0,
            avg_epoch_makespan: 0.0,
            constructor: ConstructorReport::default(),
            init_messages: 0,
            sim: None,
        }
    }

    /// Final training loss (NaN if no history).
    pub fn final_loss(&self) -> f64 {
        self.history.last().map_or(f64::NAN, |m| m.loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shell_and_history() {
        let mut r = RunReport::new("lumos", "facebook", "GCN", "supervised");
        assert!(r.final_loss().is_nan());
        r.history.push(EpochMetrics {
            epoch: 0,
            loss: 1.5,
            val_metric: 0.4,
        });
        r.history.push(EpochMetrics {
            epoch: 10,
            loss: 0.7,
            val_metric: 0.6,
        });
        assert_eq!(r.final_loss(), 0.7);
        assert_eq!(r.system, "lumos");
        assert!(r.sim.is_none());
    }

    #[test]
    fn dominant_straggler_breaks_ties_deterministically() {
        let s = SimSummary {
            straggler_sequence: vec![4, 2, 4, 2, 9],
            ..SimSummary::default()
        };
        // Devices 2 and 4 tie on count; the lower id wins.
        assert_eq!(s.dominant_straggler(), Some((2, 2)));
        assert_eq!(SimSummary::default().dominant_straggler(), None);
    }
}
