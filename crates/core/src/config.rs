//! Configuration of a Lumos run.

use lumos_balance::{BalanceObjective, CompareBackend, SecurityMode};
use lumos_gnn::Backbone;
use lumos_sim::{AggregationPolicy, FaultSpec, RecoveryPolicy, Scenario};
use lumos_topo::TopologyConfig;

/// Learning task (§VIII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Node classification with local labels (cross-entropy).
    Supervised,
    /// Link prediction with negative sampling (Eq. 33).
    Unsupervised,
}

impl TaskKind {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Supervised => "supervised",
            TaskKind::Unsupervised => "unsupervised",
        }
    }

    /// Name of the metric this task reports.
    pub fn metric_name(self) -> &'static str {
        match self {
            TaskKind::Supervised => "accuracy",
            TaskKind::Unsupervised => "roc-auc",
        }
    }
}

/// Full configuration of a Lumos run. Defaults follow §VIII-B.
#[derive(Debug, Clone)]
pub struct LumosConfig {
    /// GNN backbone.
    pub backbone: Backbone,
    /// Learning task.
    pub task: TaskKind,
    /// Privacy budget ε for the feature encoder (2 in the paper).
    pub epsilon: f64,
    /// Training epochs (300 in the paper; scaled presets use fewer).
    pub epochs: usize,
    /// Adam learning rate (0.01 in the paper).
    pub lr: f32,
    /// MCMC iterations for the tree constructor (1,000 Facebook / 300
    /// LastFM in the paper).
    pub mcmc_iterations: usize,
    /// Whether to run the real simulated crypto or its exact cost model.
    pub security: SecurityMode,
    /// Which secure-comparison engine backs the tree constructor's
    /// oracles. The default `Scalar` evaluates one circuit per comparison
    /// and preserves the seed → bit-identical report/meter contract;
    /// `Bitsliced` packs 64 independent comparisons per circuit (identical
    /// outcomes, ~64× fewer OT messages on batched sweeps).
    pub compare_backend: CompareBackend,
    /// Run seed (weights, LDP noise, MCMC, splits).
    pub seed: u64,
    /// Ablation: include virtual nodes (false = "Lumos w.o. VN").
    pub virtual_nodes: bool,
    /// Ablation: trim trees (false = "Lumos w.o. TT").
    pub tree_trimming: bool,
    /// Negative samples per positive edge in the unsupervised loss.
    pub negatives_per_positive: usize,
    /// Evaluate on the validation split every this many epochs.
    pub eval_every: usize,
    /// Optional heterogeneous-device scenario: when set, every epoch is
    /// additionally priced per-device by the `lumos-sim` discrete-event
    /// simulator and the report carries a [`crate::report::SimSummary`].
    /// For churn-free scenarios this is a pure timing overlay — the
    /// training math is unchanged. Scenarios with churn make absent
    /// devices actually absent: they send no protocol messages and their
    /// embeddings leave the POOL for the rounds they sit out.
    pub scenario: Option<Scenario>,
    /// What the tree constructor balances: the paper's tree-node count, or
    /// capability-weighted virtual seconds. `VirtualSecs` needs a
    /// `scenario` (the fleet profiles are where the per-node µs prices come
    /// from) and falls back to `TreeNodes` without one.
    pub balance_objective: BalanceObjective,
    /// How each round's updates are aggregated. The default `FullSync` is
    /// the paper's synchronous barrier and keeps churn-free scenarios pure
    /// timing overlays; `Deadline { factor }` drops updates landing after
    /// `factor ×` the round's median delivery time from the pooled update,
    /// the message accounting, and the barrier — deliberately changing the
    /// training math. `Buffered { factor, decay }` keeps the same barrier
    /// cut but blends each late update into the round where it actually
    /// arrives with weight `decay^staleness`, accounts its messages there,
    /// and live-migrates tree nodes off devices whose price stays above
    /// twice the fleet mean. `Async { min_updates }` abolishes the barrier
    /// entirely: the round closes the moment `min_updates` updates have
    /// landed, the overflow is carried into the next round at full weight,
    /// and nothing is ever dropped (`min_updates ≥ n_devices` resolves to
    /// `FullSync`). Every non-default policy needs a `scenario` (the
    /// timing signal comes from the fleet profiles) and is inert without
    /// one.
    pub aggregation_policy: AggregationPolicy,
    /// How device updates reach the server. The default `Flat` is the
    /// paper's star (every device uploads straight to the server, bit-
    /// identical to the seed path); `Hierarchical { aggregators }` routes
    /// uploads through K edge aggregators — the balance problem runs per
    /// shard, aggregators apply the aggregation policy against their own
    /// local deadline, the ledger switches to the compact O(devices + K)
    /// sharded mode, and per-round server traffic drops from O(devices)
    /// to O(K). A single-aggregator tree resolves to `Flat`
    /// (`TopologyConfig::effective`).
    pub topology: TopologyConfig,
    /// Live re-balance trigger: a device priced above
    /// `rebalance_threshold ×` the fleet-mean per-node cost for
    /// `rebalance_patience` consecutive rounds has its tree nodes
    /// migrated to cheaper endpoints (buffered policy only). Defaults
    /// (2.0, 2) match the constants PR 6 shipped with.
    pub rebalance_threshold: f64,
    /// Consecutive overpriced rounds required before migrating.
    pub rebalance_patience: u32,
    /// Seeded fault injection: the default `FaultSpec::None` injects
    /// nothing and leaves every code path bit-identical to the seed.
    /// `FaultSpec::Faults { .. }` compiles a deterministic per-round
    /// [`lumos_sim::FaultPlan`] (mid-round crashes, message loss/
    /// duplication, aggregator outage windows) from its own RNG stream.
    /// Needs a `scenario` — the fault plan rides on the fleet profiles —
    /// and is inert without one.
    pub faults: FaultSpec,
    /// How lost sends recover: per-send timeout, exponential backoff with
    /// seeded jitter, and a retry budget. Sends that exhaust the budget
    /// degrade into the buffered-staleness path instead of vanishing.
    /// Only consulted when `faults` is set.
    pub recovery: RecoveryPolicy,
    /// Debug escape hatch: probe each round's lateness with the retired
    /// lockstep path (`simulate_epoch` + post-hoc `late_with_staleness`)
    /// instead of subscribing a [`lumos_sim::RoundPolicy`] to the live
    /// event stream. Both paths are bit-identical (pinned by the
    /// `event_runtime` property tests); this switch exists so a divergence
    /// can be bisected, not as a supported mode.
    pub lockstep_runtime: bool,
}

impl LumosConfig {
    /// Paper-default configuration for a backbone and task.
    ///
    /// The paper trains everything at `lr = 0.01`; on this substrate the
    /// unsupervised dot-product decoder occasionally collapses to the
    /// trivial solution at that rate (dead ReLUs pin the loss at ln 2), so
    /// link-prediction runs default to `lr = 0.003` — applied uniformly to
    /// Lumos and every baseline (see EXPERIMENTS.md).
    pub fn new(backbone: Backbone, task: TaskKind) -> Self {
        Self {
            backbone,
            task,
            epsilon: 2.0,
            epochs: 80,
            lr: match task {
                TaskKind::Supervised => 0.01,
                TaskKind::Unsupervised => 0.003,
            },
            mcmc_iterations: 300,
            security: SecurityMode::CostModel,
            compare_backend: CompareBackend::Scalar,
            seed: 0x10_0A05,
            virtual_nodes: true,
            tree_trimming: true,
            negatives_per_positive: 1,
            eval_every: 10,
            scenario: None,
            balance_objective: BalanceObjective::TreeNodes,
            aggregation_policy: AggregationPolicy::FullSync,
            topology: TopologyConfig::Flat,
            rebalance_threshold: 2.0,
            rebalance_patience: 2,
            faults: FaultSpec::None,
            recovery: RecoveryPolicy::default(),
            lockstep_runtime: false,
        }
    }

    /// Builder-style: set ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style: set epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style: set seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: disable virtual nodes (ablation "w.o. VN").
    pub fn without_virtual_nodes(mut self) -> Self {
        self.virtual_nodes = false;
        self
    }

    /// Builder-style: disable tree trimming (ablation "w.o. TT").
    pub fn without_tree_trimming(mut self) -> Self {
        self.tree_trimming = false;
        self
    }

    /// Builder-style: set MCMC iterations.
    pub fn with_mcmc_iterations(mut self, iters: usize) -> Self {
        self.mcmc_iterations = iters;
        self
    }

    /// Builder-style: choose the secure-comparison engine.
    pub fn with_compare_backend(mut self, backend: CompareBackend) -> Self {
        self.compare_backend = backend;
        self
    }

    /// Builder-style: enable a heterogeneous-device scenario.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Builder-style: choose what the tree constructor balances.
    pub fn with_balance_objective(mut self, objective: BalanceObjective) -> Self {
        self.balance_objective = objective;
        self
    }

    /// Builder-style: choose how each round's updates are aggregated.
    ///
    /// # Panics
    /// Panics on an invalid policy (deadline factor not finite or below 1,
    /// buffered decay outside `[0, 1]`) — here, at configuration time,
    /// rather than mid-training.
    pub fn with_aggregation_policy(mut self, policy: AggregationPolicy) -> Self {
        policy.validate();
        self.aggregation_policy = policy;
        self
    }

    /// Builder-style: choose the aggregation topology.
    ///
    /// # Panics
    /// Panics on an invalid topology (zero aggregators) at configuration
    /// time rather than mid-training.
    pub fn with_topology(mut self, topology: TopologyConfig) -> Self {
        topology.validate();
        self.topology = topology;
        self
    }

    /// Builder-style: set the live re-balance trigger — migrate a
    /// device's tree nodes after it stays priced above `threshold ×` the
    /// fleet mean for `patience` consecutive rounds. The defaults
    /// (2.0, 2) reproduce the previously hardcoded behaviour bit for bit.
    ///
    /// # Panics
    /// Panics if `threshold` is not finite and positive, or `patience`
    /// is zero — both would make the trigger fire never or always.
    pub fn with_rebalance_trigger(mut self, threshold: f64, patience: u32) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "rebalance threshold must be finite and positive, got {threshold}"
        );
        assert!(patience >= 1, "rebalance patience must be at least 1 round");
        self.rebalance_threshold = threshold;
        self.rebalance_patience = patience;
        self
    }

    /// Builder-style: enable seeded fault injection. `FaultSpec::None`
    /// (the default) is bit-identical to the seed path; anything else
    /// needs a `scenario` to ride on.
    ///
    /// # Panics
    /// Panics on an invalid spec (a rate outside `[0, 1]`, an empty
    /// outage window) at configuration time rather than mid-training.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        faults.validate();
        self.faults = faults;
        self
    }

    /// Builder-style: set the retry/backoff recovery policy applied to
    /// injected message loss.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder-style: probe round lateness with the retired lockstep path
    /// instead of the live event-driven handlers (bisection aid only —
    /// the two are bit-identical by construction).
    pub fn with_lockstep_runtime(mut self) -> Self {
        self.lockstep_runtime = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised);
        assert_eq!(c.epsilon, 2.0);
        assert_eq!(c.lr, 0.01);
        assert!(c.virtual_nodes && c.tree_trimming);
        assert_eq!(c.compare_backend, CompareBackend::Scalar);
        assert_eq!(c.balance_objective, BalanceObjective::TreeNodes);
        assert_eq!(c.aggregation_policy, AggregationPolicy::FullSync);
        assert_eq!(c.topology, TopologyConfig::Flat);
        assert_eq!(c.rebalance_threshold, 2.0);
        assert_eq!(c.rebalance_patience, 2);
        assert!(c.faults.is_none(), "faults are strictly opt-in");
        assert_eq!(c.recovery, RecoveryPolicy::default());
        assert!(!c.lockstep_runtime, "event-driven is the default runtime");
        assert_eq!(TaskKind::Supervised.metric_name(), "accuracy");
        assert_eq!(TaskKind::Unsupervised.metric_name(), "roc-auc");
    }

    #[test]
    fn builders_apply() {
        let c = LumosConfig::new(Backbone::Gat, TaskKind::Unsupervised)
            .with_epsilon(0.5)
            .with_epochs(10)
            .with_seed(9)
            .with_mcmc_iterations(50)
            .with_compare_backend(CompareBackend::Bitsliced)
            .with_scenario(Scenario::StragglerTail)
            .with_balance_objective(BalanceObjective::VirtualSecs)
            .with_aggregation_policy(AggregationPolicy::Deadline { factor: 2.0 })
            .without_virtual_nodes()
            .without_tree_trimming();
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.seed, 9);
        assert_eq!(c.mcmc_iterations, 50);
        assert_eq!(c.compare_backend, CompareBackend::Bitsliced);
        assert_eq!(c.scenario, Some(Scenario::StragglerTail));
        assert_eq!(c.balance_objective, BalanceObjective::VirtualSecs);
        assert_eq!(
            c.aggregation_policy,
            AggregationPolicy::Deadline { factor: 2.0 }
        );
        assert!(!c.virtual_nodes && !c.tree_trimming);
    }

    #[test]
    #[should_panic(expected = "deadline factor")]
    fn invalid_deadline_factor_fails_at_configuration_time() {
        // Regression: a sub-unit factor used to slip through the builder
        // and only panic at the first epoch's probe (or never, without a
        // scenario).
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_aggregation_policy(AggregationPolicy::Deadline { factor: 0.5 });
    }

    #[test]
    #[should_panic(expected = "buffered decay")]
    fn invalid_buffered_decay_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised).with_aggregation_policy(
            AggregationPolicy::Buffered {
                factor: 2.0,
                decay: 1.5,
            },
        );
    }

    #[test]
    fn scenario_defaults_to_off() {
        let c = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised);
        assert_eq!(c.scenario, None);
    }

    #[test]
    fn topology_and_rebalance_builders_apply() {
        let c = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_topology(TopologyConfig::Hierarchical { aggregators: 4 })
            .with_rebalance_trigger(3.0, 5);
        assert_eq!(c.topology, TopologyConfig::Hierarchical { aggregators: 4 });
        assert_eq!(c.rebalance_threshold, 3.0);
        assert_eq!(c.rebalance_patience, 5);
    }

    #[test]
    fn fault_builders_apply() {
        let c = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_faults(FaultSpec::message_loss(0.1))
            .with_recovery(RecoveryPolicy {
                retry_budget: 7,
                ..RecoveryPolicy::default()
            });
        assert!(!c.faults.is_none());
        assert_eq!(c.recovery.retry_budget, 7);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_loss_rate_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_faults(FaultSpec::message_loss(1.5));
    }

    #[test]
    fn lockstep_runtime_builder_applies() {
        let c = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised).with_lockstep_runtime();
        assert!(c.lockstep_runtime);
    }

    #[test]
    #[should_panic(expected = "async quorum")]
    fn zero_quorum_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_aggregation_policy(AggregationPolicy::Async { min_updates: 0 });
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregator_topology_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_topology(TopologyConfig::Hierarchical { aggregators: 0 });
    }

    #[test]
    #[should_panic(expected = "rebalance threshold")]
    fn non_positive_rebalance_threshold_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised).with_rebalance_trigger(0.0, 2);
    }

    #[test]
    #[should_panic(expected = "rebalance patience")]
    fn zero_rebalance_patience_fails_at_configuration_time() {
        LumosConfig::new(Backbone::Gcn, TaskKind::Supervised).with_rebalance_trigger(2.0, 0);
    }
}
