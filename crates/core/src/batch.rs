//! Batching every device's tree into one message-passing domain.
//!
//! Each device trains the *same* GNN weights on its own tree (§VI-B); since
//! the simulator executes all devices, it concatenates the trees into one
//! block-diagonal graph and runs message passing once. This is numerically
//! identical to per-device execution — trees are disconnected components —
//! while the POOL layer's cross-device averaging (Eq. 31) becomes a single
//! segment-mean over leaf rows.

use std::rc::Rc;

use lumos_gnn::MessageGraph;
use lumos_tensor::Tensor;

use crate::init::LdpExchange;
use crate::tree::{DeviceTree, TreeNode};

/// POOL index arrays for one round's aggregation — shared-ownership copies
/// so a per-round mask can swap them without touching the batch.
#[derive(Debug, Clone)]
pub struct PoolArrays {
    /// Batched node ids to gather (the pooled leaves).
    pub leaves: Rc<Vec<u32>>,
    /// Global vertex each gathered leaf scatters into.
    pub vertices: Rc<Vec<u32>>,
    /// Per-vertex mean coefficients (`1 / contribution` per vertex).
    pub coeff: Rc<Vec<f32>>,
    /// Owning device of each surviving leaf, ascending (trees are laid out
    /// in device order) — the hierarchical POOL slices this per aggregator
    /// shard, so each partial sums exactly its members' leaves.
    pub owners: Rc<Vec<u32>>,
    /// Optional per-leaf scale applied between gather and scatter-add.
    /// `Some` only for fractionally weighted pools (the buffered policy's
    /// staleness blending); `None` keeps the default op sequence — and with
    /// it the default path's bitstream — untouched.
    pub leaf_weights: Option<Rc<Vec<f32>>>,
}

/// The batched forest plus everything the trainer needs.
#[derive(Debug)]
pub struct BatchedTrees {
    /// Message-passing structure over all tree nodes.
    pub mg: MessageGraph,
    /// Initial node embeddings `[total_nodes, dim]` (Eq. 25: leaves carry
    /// features, virtual nodes zero).
    pub features: Tensor,
    /// Batched node ids of all leaves (POOL gather index).
    pub pool_leaves: Rc<Vec<u32>>,
    /// Global vertex of each pooled leaf (POOL scatter index).
    pub pool_vertices: Rc<Vec<u32>>,
    /// `1 / leaf-count` per global vertex (mean-pool weights).
    pub pool_coeff: Rc<Vec<f32>>,
    /// Owning device of each pooled leaf: the center of the tree it lives
    /// in — the device whose round update ships that leaf's embedding.
    pub pool_owners: Rc<Vec<u32>>,
    /// Per-device tree sizes (straggler cost model input).
    pub tree_sizes: Vec<usize>,
    /// Number of global vertices.
    pub num_vertices: usize,
}

impl BatchedTrees {
    /// Total batched nodes.
    pub fn total_nodes(&self) -> usize {
        self.mg.num_nodes
    }

    /// POOL arrays `(leaves, vertices, coeff)` with every leaf owned by a
    /// `dropped` device removed and the mean-pool coefficients renormalized
    /// over the survivors — the semi-synchronous deadline's view of Eq. 31,
    /// where late updates never reach the aggregation. A vertex whose every
    /// contributor was dropped pools to zero (coefficient 0). With no drops
    /// the original arrays are returned untouched (same `Rc`s), so the
    /// default full-sync path is bit-identical.
    pub fn masked_pool(&self, dropped: &[u32]) -> PoolArrays {
        if dropped.is_empty() {
            return PoolArrays {
                leaves: self.pool_leaves.clone(),
                vertices: self.pool_vertices.clone(),
                coeff: self.pool_coeff.clone(),
                owners: self.pool_owners.clone(),
                leaf_weights: None,
            };
        }
        let mut is_dropped = vec![false; self.num_vertices];
        for &d in dropped {
            is_dropped[d as usize] = true;
        }
        let mut leaves = Vec::with_capacity(self.pool_leaves.len());
        let mut vertices = Vec::with_capacity(self.pool_vertices.len());
        let mut owners = Vec::with_capacity(self.pool_owners.len());
        let mut counts = vec![0u32; self.num_vertices];
        for ((&leaf, &vertex), &owner) in self
            .pool_leaves
            .iter()
            .zip(self.pool_vertices.iter())
            .zip(self.pool_owners.iter())
        {
            if is_dropped[owner as usize] {
                continue;
            }
            leaves.push(leaf);
            vertices.push(vertex);
            owners.push(owner);
            counts[vertex as usize] += 1;
        }
        let coeff = counts
            .iter()
            .map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 })
            .collect();
        PoolArrays {
            leaves: Rc::new(leaves),
            vertices: Rc::new(vertices),
            coeff: Rc::new(coeff),
            owners: Rc::new(owners),
            leaf_weights: None,
        }
    }

    /// POOL arrays with each device's contribution scaled by
    /// `weights[owner]` — the staleness-weighted generalization of
    /// [`BatchedTrees::masked_pool`] (Eq. 31 as a weighted mean): weight 0
    /// removes a device's leaves exactly like a mask, a fractional weight
    /// scales each of its leaf rows before the scatter-add, and each
    /// vertex's mean coefficient renormalizes by the surviving weight sum.
    /// A device may legitimately weigh more than 1 when its fresh update
    /// and a buffered stale one pool in the same round.
    ///
    /// Bit-compatibility: all-ones weights return the original arrays
    /// untouched (same `Rc`s), and a pure 0/1 mask produces integer-count
    /// coefficients identical to `masked_pool` of the zero-weight set — so
    /// the buffered policy with nothing buffered is bitwise the deadline.
    pub fn weighted_pool(&self, weights: &[f32]) -> PoolArrays {
        assert_eq!(weights.len(), self.num_vertices, "one weight per device");
        debug_assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "pool weights must be finite and non-negative"
        );
        if weights.iter().all(|&w| w == 1.0) {
            return self.masked_pool(&[]);
        }
        let mut leaves = Vec::with_capacity(self.pool_leaves.len());
        let mut vertices = Vec::with_capacity(self.pool_vertices.len());
        let mut owners = Vec::with_capacity(self.pool_owners.len());
        let mut leaf_weights = Vec::with_capacity(self.pool_leaves.len());
        let mut counts = vec![0u32; self.num_vertices];
        let mut weight_sums = vec![0.0f64; self.num_vertices];
        let mut uniform = true;
        for ((&leaf, &vertex), &owner) in self
            .pool_leaves
            .iter()
            .zip(self.pool_vertices.iter())
            .zip(self.pool_owners.iter())
        {
            let w = weights[owner as usize];
            if w == 0.0 {
                continue;
            }
            if w != 1.0 {
                uniform = false;
            }
            leaves.push(leaf);
            vertices.push(vertex);
            owners.push(owner);
            leaf_weights.push(w);
            counts[vertex as usize] += 1;
            weight_sums[vertex as usize] += w as f64;
        }
        let coeff: Vec<f32> = if uniform {
            counts
                .iter()
                .map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 })
                .collect()
        } else {
            weight_sums
                .iter()
                .map(|&s| if s == 0.0 { 0.0 } else { (1.0 / s) as f32 })
                .collect()
        };
        PoolArrays {
            leaves: Rc::new(leaves),
            vertices: Rc::new(vertices),
            coeff: Rc::new(coeff),
            owners: Rc::new(owners),
            leaf_weights: if uniform {
                None
            } else {
                Some(Rc::new(leaf_weights))
            },
        }
    }
}

/// Builds the batched forest.
///
/// `features` is the raw `[n, dim]` feature matrix; center leaves read it
/// directly (the paper: the center's feature is the only non-noised one in
/// its tree), neighbor leaves read the LDP-recovered estimates from
/// `exchange`.
pub fn build_batched(
    trees: &[DeviceTree],
    features: &[f32],
    dim: usize,
    exchange: &LdpExchange,
) -> BatchedTrees {
    let n = trees.len();
    assert_eq!(features.len(), n * dim, "feature matrix shape mismatch");
    let total_nodes: usize = trees.iter().map(|t| t.num_nodes()).sum();

    let mut init = Tensor::zeros(total_nodes, dim);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut pool_leaves: Vec<u32> = Vec::new();
    let mut pool_vertices: Vec<u32> = Vec::new();
    let mut pool_owners: Vec<u32> = Vec::new();
    let mut leaf_counts = vec![0u32; n];
    let mut tree_sizes = Vec::with_capacity(n);

    let midpoint = 0.5f32;
    let mut offset = 0u32;
    for tree in trees {
        tree_sizes.push(tree.num_nodes());
        for (a, b) in &tree.edges {
            edges.push((offset + a, offset + b));
        }
        for (local, node) in tree.nodes.iter().enumerate() {
            let bid = offset + local as u32;
            match node {
                TreeNode::Root | TreeNode::Parent(_) => {
                    // Virtual nodes: zero embedding (Eq. 25).
                }
                TreeNode::CenterLeaf(_) | TreeNode::EgoCenter => {
                    let c = tree.center as usize;
                    init.row_mut(bid as usize)
                        .copy_from_slice(&features[c * dim..(c + 1) * dim]);
                    pool_leaves.push(bid);
                    pool_vertices.push(tree.center);
                    pool_owners.push(tree.center);
                    leaf_counts[tree.center as usize] += 1;
                }
                TreeNode::NeighborLeaf(k) | TreeNode::EgoNeighbor(k) => {
                    let v = tree.neighbors[*k as usize];
                    let row = init.row_mut(bid as usize);
                    match exchange.recovered.get(&(tree.center, v)) {
                        Some(rec) => row.copy_from_slice(rec),
                        // No message (fan-out zero is impossible here, but
                        // stay safe): the information-free midpoint.
                        None => row.iter_mut().for_each(|x| *x = midpoint),
                    }
                    pool_leaves.push(bid);
                    pool_vertices.push(v);
                    pool_owners.push(tree.center);
                    leaf_counts[v as usize] += 1;
                }
            }
        }
        offset += tree.num_nodes() as u32;
    }

    let pool_coeff: Vec<f32> = leaf_counts
        .iter()
        .map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 })
        .collect();

    BatchedTrees {
        mg: MessageGraph::from_undirected(total_nodes, &edges),
        features: init,
        pool_leaves: Rc::new(pool_leaves),
        pool_vertices: Rc::new(pool_vertices),
        pool_coeff: Rc::new(pool_coeff),
        pool_owners: Rc::new(pool_owners),
        tree_sizes,
        num_vertices: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::exchange_features;
    use crate::tree::LocalGraphKind;
    use lumos_common::rng::Xoshiro256pp;
    use lumos_fed::SimNetwork;

    fn build_example() -> (Vec<DeviceTree>, Vec<f32>, usize, LdpExchange) {
        // Path 0-1-2, everyone keeps everyone.
        let trees = vec![
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 1, vec![0, 2]),
            DeviceTree::build(LocalGraphKind::VirtualNodeTree, 2, vec![1]),
        ];
        let dim = 6;
        let features: Vec<f32> = (0..3 * dim).map(|i| (i % 4) as f32 / 4.0).collect();
        let mut net = SimNetwork::new(3);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let ex = exchange_features(&features, dim, &trees, 2.0, &mut rng, &mut net);
        (trees, features, dim, ex)
    }

    #[test]
    fn batched_shapes_and_pool_indexes() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        // Trees: wl 1, 2, 1 → 4 + 7 + 4 = 15 nodes.
        assert_eq!(batch.total_nodes(), 15);
        assert_eq!(batch.features.dims(), (15, dim));
        // Leaves: 2·wl per tree = 2 + 4 + 2 = 8.
        assert_eq!(batch.pool_leaves.len(), 8);
        assert_eq!(batch.pool_vertices.len(), 8);
        // Leaf counts: vertex 0 appears as center (1x in tree 0) +
        // neighbor leaf in tree 1 → plus center copies: tree0 wl=1 → one
        // center copy. Total for 0: 1 + 1 = 2. Vertex 1: center copies 2 +
        // neighbor leaves in trees 0, 2 → 4.
        let count = |v: u32| batch.pool_vertices.iter().filter(|&&x| x == v).count();
        assert_eq!(count(0), 2);
        assert_eq!(count(1), 4);
        assert_eq!(count(2), 2);
        assert!((batch.pool_coeff[1] - 0.25).abs() < 1e-7);
        assert_eq!(batch.tree_sizes, vec![4, 7, 4]);
    }

    #[test]
    fn center_leaves_carry_raw_features() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        // Tree 0 layout: 0=root, 1=P, 2=center leaf, 3=neighbor leaf.
        let center_row = batch.features.row(2);
        assert_eq!(center_row, &features[0..dim], "center feature not noised");
        // Root/parent rows are zero.
        assert!(batch.features.row(0).iter().all(|&x| x == 0.0));
        assert!(batch.features.row(1).iter().all(|&x| x == 0.0));
        // Neighbor leaf (vertex 1's noisy feature) is a recovery: values in
        // the decode set, not the raw feature in general.
        let noisy = batch.features.row(3);
        assert!(noisy.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn every_vertex_is_pooled() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        for v in 0..3u32 {
            assert!(
                batch.pool_vertices.contains(&v),
                "vertex {v} must own at least one leaf"
            );
        }
        assert!(batch.pool_coeff.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn masked_pool_removes_late_owners_and_renormalizes() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        // No drops: the untouched arrays come back — same allocations.
        let p = batch.masked_pool(&[]);
        assert!(Rc::ptr_eq(&p.leaves, &batch.pool_leaves));
        assert!(Rc::ptr_eq(&p.vertices, &batch.pool_vertices));
        assert!(Rc::ptr_eq(&p.coeff, &batch.pool_coeff));
        assert!(p.leaf_weights.is_none());
        // Drop device 1 (the path's middle): its 4 leaves vanish.
        let p = batch.masked_pool(&[1]);
        assert_eq!(p.leaves.len(), 4);
        assert_eq!(p.vertices.len(), 4);
        // Vertex 1 keeps only its neighbor-leaf copies in trees 0 and 2.
        assert_eq!(p.vertices.iter().filter(|&&x| x == 1).count(), 2);
        assert!((p.coeff[1] - 0.5).abs() < 1e-7);
        // Vertices 0 and 2 lose the copies tree 1 carried: one survivor
        // each (their own center leaf), coefficient 1.
        assert!((p.coeff[0] - 1.0).abs() < 1e-7 && (p.coeff[2] - 1.0).abs() < 1e-7);
        // Drop everything: the pool empties and every coefficient is 0.
        let p = batch.masked_pool(&[0, 1, 2]);
        assert!(p.leaves.is_empty());
        assert!(p.coeff.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn all_ones_weights_are_the_identity_pool() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        let p = batch.weighted_pool(&[1.0; 3]);
        assert!(Rc::ptr_eq(&p.leaves, &batch.pool_leaves));
        assert!(Rc::ptr_eq(&p.vertices, &batch.pool_vertices));
        assert!(Rc::ptr_eq(&p.coeff, &batch.pool_coeff));
        assert!(p.leaf_weights.is_none());
    }

    #[test]
    fn zero_one_weights_match_the_mask_bit_for_bit() {
        // A pure 0/1 weighting is a mask: same arrays, same integer-count
        // coefficients, no per-leaf scaling op.
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        let masked = batch.masked_pool(&[1]);
        let weighted = batch.weighted_pool(&[1.0, 0.0, 1.0]);
        assert_eq!(*weighted.leaves, *masked.leaves);
        assert_eq!(*weighted.vertices, *masked.vertices);
        for (a, b) in weighted.coeff.iter().zip(masked.coeff.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(weighted.leaf_weights.is_none());
    }

    #[test]
    fn fractional_weights_scale_and_renormalize() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        // Device 1 pools at half weight (a stale update one round old at
        // decay 0.5); devices 0 and 2 are fresh.
        let p = batch.weighted_pool(&[1.0, 0.5, 1.0]);
        // Nothing is removed — all 8 leaves survive, each carrying its
        // owner's weight.
        assert_eq!(p.leaves.len(), 8);
        let lw = p.leaf_weights.as_ref().expect("fractional ⇒ scaled");
        // Owners in tree order (0,0,1,1,1,1,2,2) ⇒ weights follow.
        assert_eq!(**lw, vec![1.0, 1.0, 0.5, 0.5, 0.5, 0.5, 1.0, 1.0]);
        // Vertex 1's contributions: its center copies (2 × 0.5 from tree 1)
        // plus neighbor-leaf copies in trees 0 and 2 (2 × 1.0) ⇒ total 3,
        // coefficient 1/3.
        assert!((p.coeff[1] - 1.0 / 3.0).abs() < 1e-7);
        // Vertex 0: own center leaf (1.0) + tree 1's neighbor copy (0.5).
        assert!((p.coeff[0] - 1.0 / 1.5).abs() < 1e-7);
    }

    #[test]
    fn pool_owners_name_the_shipping_tree() {
        let (trees, features, dim, ex) = build_example();
        let batch = build_batched(&trees, &features, dim, &ex);
        assert_eq!(batch.pool_owners.len(), batch.pool_leaves.len());
        // Tree layout is sequential: owners appear in tree order.
        assert_eq!(*batch.pool_owners, vec![0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn raw_ego_batching_works_too() {
        let trees = vec![
            DeviceTree::build(LocalGraphKind::RawEgoNetwork, 0, vec![1]),
            DeviceTree::build(LocalGraphKind::RawEgoNetwork, 1, vec![0]),
        ];
        let dim = 4;
        let features = vec![0.25f32; 2 * dim];
        let mut net = SimNetwork::new(2);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let ex = exchange_features(&features, dim, &trees, 2.0, &mut rng, &mut net);
        let batch = build_batched(&trees, &features, dim, &ex);
        assert_eq!(batch.total_nodes(), 4);
        assert_eq!(batch.pool_leaves.len(), 4);
    }
}
