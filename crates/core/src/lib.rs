//! `lumos-core` — the Lumos federated GNN framework (the paper's primary
//! contribution).
//!
//! Lumos learns node embeddings in the node-level federated setting where
//! each device holds only its ego network, protecting features with ε-LDP
//! and degrees behind secure comparisons. The crate composes the substrate
//! crates into the two modules of §IV-B:
//!
//! * the **heterogeneity-aware tree constructor** —
//!   [`tree`] (virtual-node trees, Fig. 2) +
//!   [`constructor`] (greedy + MCMC trimming, Algorithms 1–3), and
//! * the **tree-based GNN trainer** —
//!   [`init`] (LDP embedding initialization, Eq. 26–27) +
//!   [`batch`] (the simulator's batched forest) +
//!   [`trainer`] (message passing, POOL, supervised/unsupervised losses).
//!
//! ```no_run
//! use lumos_core::{run_lumos, LumosConfig, TaskKind};
//! use lumos_data::{Dataset, Scale};
//! use lumos_gnn::Backbone;
//!
//! let ds = Dataset::facebook_like(Scale::Smoke);
//! let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised);
//! let report = run_lumos(&ds, &cfg);
//! println!("test accuracy = {:.3}", report.test_metric);
//! ```

#![forbid(unsafe_code)]
pub mod batch;
pub mod config;
pub mod constructor;
pub mod init;
pub mod report;
pub mod trainer;
pub mod tree;

pub use batch::{build_batched, BatchedTrees};
pub use config::{LumosConfig, TaskKind};
pub use constructor::{construct_assignment, construct_assignment_sharded};
pub use init::{exchange_features, LdpExchange};
pub use lumos_balance::{BalanceObjective, CompareBackend};
pub use lumos_sim::AggregationPolicy;
pub use lumos_topo::{Topology, TopologyConfig};
pub use report::{ConstructorReport, EpochMetrics, RunReport, SimSummary};
pub use trainer::run_lumos;
pub use tree::{DeviceTree, LocalGraphKind, TreeNode};
