//! Synthetic social-network datasets.
//!
//! The paper evaluates on the Facebook page-page graph (22,470 vertices,
//! 170,912 edges, 4,714 features, 4 classes) and the LastFM graph (7,624
//! vertices, 55,612 edges, 128 features, 18 classes) — §VIII-A. Those crawls
//! are external downloads, so this crate generates statistical stand-ins
//! (substitution #1 in DESIGN.md): homophilous power-law graphs with
//! class-conditional features in `[0,1]^d`, matched to the paper's node,
//! edge, feature and class counts at [`Scale::Paper`].

use lumos_common::dist::Normal;
use lumos_common::rng::Xoshiro256pp;
use lumos_graph::generate::{homophilous_powerlaw, PowerLawConfig};
use lumos_graph::Graph;

/// Experiment scale presets.
///
/// `Paper` matches the dataset sizes in §VIII-A; `Small` is the default for
/// the experiment harness (same shapes, ~10x smaller); `Smoke` is for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny graphs for unit/integration tests (hundreds of nodes).
    Smoke,
    /// Default harness scale (thousands of nodes).
    Small,
    /// Full paper-scale datasets.
    Paper,
}

impl Scale {
    /// Parses `"smoke" | "small" | "paper"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Self::Smoke),
            "small" => Some(Self::Small),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// Display name (the inverse of [`Scale::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Smoke => "smoke",
            Self::Small => "small",
            Self::Paper => "paper",
        }
    }
}

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name used in reports.
    pub name: String,
    /// Number of vertices (devices).
    pub num_nodes: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Feature dimensionality `d`.
    pub feature_dim: usize,
    /// Degree distribution and homophily of the graph.
    pub graph: PowerLawConfig,
    /// Fraction of feature dimensions that are informative for each class.
    pub active_dim_frac: f64,
    /// Feature value for inactive dimensions (class-independent baseline).
    pub base_level: f64,
    /// Feature value for a class's active dimensions.
    pub active_level: f64,
    /// Standard deviation of per-node feature noise.
    pub feature_noise: f64,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Facebook-like configuration at the requested scale.
    ///
    /// Paper scale: 22,470 vertices / ~170,912 edges (avg degree ≈ 15.2) /
    /// 4,714 features / 4 classes, untrimmed maximum degree > 150 (Fig. 7a).
    pub fn facebook_like(scale: Scale) -> Self {
        let (num_nodes, feature_dim, max_degree) = match scale {
            Scale::Smoke => (300, 64, 60),
            Scale::Small => (1200, 192, 150),
            Scale::Paper => (22_470, 4_714, 320),
        };
        Self {
            name: "facebook".into(),
            num_nodes,
            num_classes: 4,
            feature_dim,
            graph: PowerLawConfig {
                alpha: 2.1,
                min_degree: 4,
                max_degree,
                homophily: 0.72,
            },
            active_dim_frac: 0.3,
            base_level: 0.2,
            active_level: 0.8,
            feature_noise: 0.25,
            seed: 0xFACE_B00C,
        }
    }

    /// LastFM-like configuration at the requested scale.
    ///
    /// Paper scale: 7,624 vertices / ~55,612 edges (avg degree ≈ 14.6) /
    /// 128 features / 18 classes, untrimmed maximum degree > 100 (Fig. 7b).
    pub fn lastfm_like(scale: Scale) -> Self {
        let (num_nodes, num_classes, max_degree) = match scale {
            Scale::Smoke => (260, 6, 50),
            Scale::Small => (1000, 18, 100),
            Scale::Paper => (7_624, 18, 216),
        };
        Self {
            name: "lastfm".into(),
            num_nodes,
            num_classes,
            feature_dim: 128,
            graph: PowerLawConfig {
                alpha: 2.2,
                min_degree: 4,
                max_degree,
                homophily: 0.72,
            },
            active_dim_frac: 0.3,
            base_level: 0.15,
            active_level: 0.85,
            feature_noise: 0.25,
            seed: 0x1A57_F00D,
        }
    }
}

/// A generated dataset: global graph + features + labels.
///
/// Features are stored flat and row-major (`num_nodes x feature_dim`) and
/// bounded in `[0, 1]` as the one-bit LDP mechanism requires (§VI-A).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Global graph (never observed by devices directly).
    pub graph: Graph,
    /// Row-major `[num_nodes, feature_dim]` feature matrix in `[0,1]`.
    pub features: Vec<f32>,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// One label per vertex in `0..num_classes`.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Generates a dataset from a configuration.
    pub fn generate(cfg: &DatasetConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        // Balanced labels, then shuffled.
        let mut labels: Vec<u32> = (0..cfg.num_nodes)
            .map(|i| (i % cfg.num_classes) as u32)
            .collect();
        rng.shuffle(&mut labels);

        let graph = homophilous_powerlaw(&labels, &cfg.graph, &mut rng);

        // Class centers: each class activates a random subset of dimensions.
        // Classes share the baseline elsewhere, so noisy low-budget LDP
        // features still carry aggregate class signal across many dims.
        let active_per_class = ((cfg.feature_dim as f64) * cfg.active_dim_frac).round() as usize;
        let mut centers = vec![cfg.base_level as f32; cfg.num_classes * cfg.feature_dim];
        for c in 0..cfg.num_classes {
            let dims = rng.sample_indices(cfg.feature_dim, active_per_class.min(cfg.feature_dim));
            for d in dims {
                centers[c * cfg.feature_dim + d] = cfg.active_level as f32;
            }
        }

        let noise = Normal::new(0.0, cfg.feature_noise);
        let mut features = vec![0.0f32; cfg.num_nodes * cfg.feature_dim];
        for v in 0..cfg.num_nodes {
            let c = labels[v] as usize;
            let center = &centers[c * cfg.feature_dim..(c + 1) * cfg.feature_dim];
            let row = &mut features[v * cfg.feature_dim..(v + 1) * cfg.feature_dim];
            for (x, &m) in row.iter_mut().zip(center) {
                *x = (m + noise.sample(&mut rng) as f32).clamp(0.0, 1.0);
            }
        }

        Self {
            name: cfg.name.clone(),
            graph,
            features,
            feature_dim: cfg.feature_dim,
            labels,
            num_classes: cfg.num_classes,
        }
    }

    /// Convenience: Facebook-like dataset at a scale.
    pub fn facebook_like(scale: Scale) -> Self {
        Self::generate(&DatasetConfig::facebook_like(scale))
    }

    /// Convenience: LastFM-like dataset at a scale.
    pub fn lastfm_like(scale: Scale) -> Self {
        Self::generate(&DatasetConfig::lastfm_like(scale))
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature row of vertex `v`.
    pub fn feature(&self, v: u32) -> &[f32] {
        let v = v as usize;
        &self.features[v * self.feature_dim..(v + 1) * self.feature_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_graph::generate::edge_homophily;

    #[test]
    fn smoke_dataset_shapes() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        assert_eq!(ds.num_nodes(), 300);
        assert_eq!(ds.feature_dim, 64);
        assert_eq!(ds.num_classes, 4);
        assert_eq!(ds.features.len(), 300 * 64);
        assert_eq!(ds.labels.len(), 300);
        assert!(ds.labels.iter().all(|&l| l < 4));
        ds.graph.check_invariants().unwrap();
    }

    #[test]
    fn features_bounded_in_unit_interval() {
        let ds = Dataset::lastfm_like(Scale::Smoke);
        assert!(ds.features.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn labels_balanced() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let mut counts = vec![0usize; ds.num_classes];
        for &l in &ds.labels {
            counts[l as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "balanced by construction: {counts:?}");
    }

    #[test]
    fn graph_is_homophilous_and_heavy_tailed() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let h = edge_homophily(&ds.graph, &ds.labels);
        assert!(h > 0.55, "homophily {h}");
        assert!(ds.graph.max_degree() as f64 > 3.0 * ds.graph.avg_degree());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::facebook_like(Scale::Smoke);
        let b = Dataset::facebook_like(Scale::Smoke);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn class_centers_separate_features() {
        // Mean feature distance between same-class nodes should be smaller
        // than between different-class nodes.
        let ds = Dataset::lastfm_like(Scale::Smoke);
        let dist = |a: u32, b: u32| -> f32 {
            ds.feature(a)
                .iter()
                .zip(ds.feature(b))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for a in 0..60u32 {
            for b in (a + 1)..60u32 {
                if ds.labels[a as usize] == ds.labels[b as usize] {
                    same = (same.0 + dist(a, b), same.1 + 1);
                } else {
                    diff = (diff.0 + dist(a, b), diff.1 + 1);
                }
            }
        }
        let same_mean = same.0 / same.1 as f32;
        let diff_mean = diff.0 / diff.1 as f32;
        assert!(
            same_mean * 1.5 < diff_mean,
            "same {same_mean} vs diff {diff_mean}"
        );
    }

    #[test]
    fn paper_scale_configs_match_paper_counts() {
        let fb = DatasetConfig::facebook_like(Scale::Paper);
        assert_eq!(fb.num_nodes, 22_470);
        assert_eq!(fb.feature_dim, 4_714);
        assert_eq!(fb.num_classes, 4);
        let lf = DatasetConfig::lastfm_like(Scale::Paper);
        assert_eq!(lf.num_nodes, 7_624);
        assert_eq!(lf.feature_dim, 128);
        assert_eq!(lf.num_classes, 18);
    }
}
