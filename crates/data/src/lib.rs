//! `lumos-data` — synthetic datasets for the Lumos evaluation.
//!
//! Generates Facebook-like and LastFM-like graphs (the paper's §VIII-A
//! datasets, substituted per DESIGN.md §4) and the node/edge splits of
//! §VIII-B.

#![forbid(unsafe_code)]
pub mod dataset;
pub mod splits;

pub use dataset::{Dataset, DatasetConfig, Scale};
pub use splits::{sample_non_edges, EdgeSplit, NodeSplit};
