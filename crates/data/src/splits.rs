//! Train/validation/test splits.
//!
//! §VIII-B: supervised learning samples vertices 50%/25%/25% uniformly;
//! unsupervised link prediction samples edges 80%/5%/15% and pairs each held
//! -out edge with a sampled non-edge (negative) for ROC-AUC evaluation.

use lumos_common::rng::Xoshiro256pp;
use lumos_graph::Graph;

/// Node-level split for supervised classification.
#[derive(Debug, Clone)]
pub struct NodeSplit {
    /// `mask[v]` tells which partition vertex `v` belongs to.
    pub train_mask: Vec<bool>,
    /// Validation membership.
    pub val_mask: Vec<bool>,
    /// Test membership.
    pub test_mask: Vec<bool>,
}

impl NodeSplit {
    /// Uniform 50/25/25 split over `n` vertices, as in the paper.
    pub fn uniform(n: usize, rng: &mut Xoshiro256pp) -> Self {
        Self::with_ratios(n, 0.5, 0.25, rng)
    }

    /// Uniform split with explicit train/val fractions (test is the rest).
    ///
    /// # Panics
    /// Panics if the fractions are out of range.
    pub fn with_ratios(n: usize, train: f64, val: f64, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            train >= 0.0 && val >= 0.0 && train + val <= 1.0,
            "bad ratios"
        );
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let n_train = (n as f64 * train).round() as usize;
        let n_val = (n as f64 * val).round() as usize;
        let mut train_mask = vec![false; n];
        let mut val_mask = vec![false; n];
        let mut test_mask = vec![false; n];
        for (i, &v) in order.iter().enumerate() {
            if i < n_train {
                train_mask[v] = true;
            } else if i < n_train + n_val {
                val_mask[v] = true;
            } else {
                test_mask[v] = true;
            }
        }
        Self {
            train_mask,
            val_mask,
            test_mask,
        }
    }

    /// Number of training vertices.
    pub fn num_train(&self) -> usize {
        self.train_mask.iter().filter(|&&b| b).count()
    }

    /// Number of validation vertices.
    pub fn num_val(&self) -> usize {
        self.val_mask.iter().filter(|&&b| b).count()
    }

    /// Number of test vertices.
    pub fn num_test(&self) -> usize {
        self.test_mask.iter().filter(|&&b| b).count()
    }
}

/// Edge-level split for link prediction, with sampled negatives.
#[derive(Debug, Clone)]
pub struct EdgeSplit {
    /// Edges visible during training (message passing uses only these).
    pub train_edges: Vec<(u32, u32)>,
    /// Held-out validation edges (positives).
    pub val_edges: Vec<(u32, u32)>,
    /// Held-out test edges (positives).
    pub test_edges: Vec<(u32, u32)>,
    /// Non-edges paired with validation positives.
    pub val_negatives: Vec<(u32, u32)>,
    /// Non-edges paired with test positives.
    pub test_negatives: Vec<(u32, u32)>,
}

impl EdgeSplit {
    /// Uniform 80/5/15 split of the graph's edges plus one negative per
    /// held-out positive, as in the paper.
    pub fn uniform(g: &Graph, rng: &mut Xoshiro256pp) -> Self {
        Self::with_ratios(g, 0.8, 0.05, rng)
    }

    /// Split with explicit train/val fractions (test is the rest).
    pub fn with_ratios(g: &Graph, train: f64, val: f64, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            train >= 0.0 && val >= 0.0 && train + val <= 1.0,
            "bad ratios"
        );
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        rng.shuffle(&mut edges);
        let m = edges.len();
        let n_train = (m as f64 * train).round() as usize;
        let n_val = (m as f64 * val).round() as usize;
        let train_edges = edges[..n_train].to_vec();
        let val_edges = edges[n_train..n_train + n_val].to_vec();
        let test_edges = edges[n_train + n_val..].to_vec();
        let val_negatives = sample_non_edges(g, val_edges.len(), rng);
        let test_negatives = sample_non_edges(g, test_edges.len(), rng);
        Self {
            train_edges,
            val_edges,
            test_edges,
            val_negatives,
            test_negatives,
        }
    }

    /// The training graph: same vertices, only training edges.
    pub fn train_graph(&self, num_nodes: usize) -> Graph {
        Graph::from_edges(num_nodes, &self.train_edges)
    }
}

/// Samples `k` distinct vertex pairs that are not edges of `g` (and not
/// self-pairs). Used for link-prediction negatives and for the unsupervised
/// loss's negative sampling (Eq. 33).
pub fn sample_non_edges(g: &Graph, k: usize, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    let n = g.num_nodes() as u32;
    assert!(n >= 2, "need at least two vertices to sample non-edges");
    let mut out = Vec::with_capacity(k);
    // Membership-only; BTreeSet per the determinism contract (no HashSet in
    // non-test code — iteration order must never be able to matter).
    let mut seen = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    let max_guard = 100 * k.max(1) + 1000;
    while out.len() < k && guard < max_guard {
        guard += 1;
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_graph::generate::{erdos_renyi, PowerLawConfig};
    use lumos_graph::homophilous_powerlaw;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(77)
    }

    #[test]
    fn node_split_is_a_partition_with_paper_ratios() {
        let mut r = rng();
        let s = NodeSplit::uniform(1000, &mut r);
        for v in 0..1000 {
            let memberships = s.train_mask[v] as u8 + s.val_mask[v] as u8 + s.test_mask[v] as u8;
            assert_eq!(memberships, 1, "vertex {v} must be in exactly one split");
        }
        assert_eq!(s.num_train(), 500);
        assert_eq!(s.num_val(), 250);
        assert_eq!(s.num_test(), 250);
    }

    #[test]
    fn edge_split_partitions_edges() {
        let mut r = rng();
        let labels: Vec<u32> = (0..400).map(|v| v % 4).collect();
        let g = homophilous_powerlaw(&labels, &PowerLawConfig::default(), &mut r);
        let s = EdgeSplit::uniform(&g, &mut r);
        let total = s.train_edges.len() + s.val_edges.len() + s.test_edges.len();
        assert_eq!(total, g.num_edges());
        // Ratios approximately 80/5/15.
        let m = g.num_edges() as f64;
        assert!((s.train_edges.len() as f64 / m - 0.8).abs() < 0.01);
        assert!((s.test_edges.len() as f64 / m - 0.15).abs() < 0.01);
        // Negatives match positives in count and are true non-edges.
        assert_eq!(s.val_negatives.len(), s.val_edges.len());
        assert_eq!(s.test_negatives.len(), s.test_edges.len());
        for &(u, v) in s.test_negatives.iter().chain(&s.val_negatives) {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }

    #[test]
    fn train_graph_contains_only_train_edges() {
        let mut r = rng();
        let g = erdos_renyi(100, 0.1, &mut r);
        let s = EdgeSplit::uniform(&g, &mut r);
        let tg = s.train_graph(100);
        assert_eq!(tg.num_edges(), s.train_edges.len());
        for &(u, v) in &s.test_edges {
            assert!(!tg.has_edge(u, v), "test edge must not leak into training");
        }
    }

    #[test]
    fn non_edges_are_distinct() {
        let mut r = rng();
        let g = erdos_renyi(60, 0.05, &mut r);
        let negs = sample_non_edges(&g, 200, &mut r);
        let set: std::collections::BTreeSet<_> = negs.iter().collect();
        assert_eq!(set.len(), negs.len());
    }
}
