//! Golden-value determinism tests for the workspace PRNGs.
//!
//! Every stochastic component (graph generation, LDP coins, MCMC proposals,
//! weight init) draws from these generators, so CI failures anywhere in the
//! workspace reproduce exactly from a seed only if these streams never
//! change. The expected outputs below were computed with an independent
//! reference implementation of SplitMix64 / xoshiro256++ (the SplitMix64
//! seed-0 values also match the published test vector of Vigna's
//! `splitmix64.c`). If one of these tests ever fails, the generator
//! changed — that is a breaking change for experiment reproducibility, not
//! a tolerance issue.

use lumos_common::rng::{SplitMix64, Xoshiro256pp};

#[test]
fn splitmix64_matches_reference_vector() {
    let mut sm = SplitMix64::new(0);
    assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
}

#[test]
fn xoshiro_matches_reference_stream_seed_42() {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let expected: [u64; 8] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
        0xCB23_1C38_7484_6A73,
        0x968D_9F00_4E50_DE7D,
        0x2017_18FF_221A_3556,
        0x9AE9_4E07_0ED8_CB46,
    ];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "draw {i} diverged from golden stream");
    }
}

#[test]
fn xoshiro_matches_reference_stream_seed_deadbeef() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xDEAD_BEEF);
    let expected: [u64; 4] = [
        0x0C52_0EB8_FEA9_8EDE,
        0x2B74_A633_8B80_E0E2,
        0xBE23_8770_C379_5322,
        0x5F23_5F98_A244_EA97,
    ];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "draw {i} diverged from golden stream");
    }
}

#[test]
fn same_seed_same_stream_across_instances() {
    let mut a = Xoshiro256pp::seed_from_u64(7_654_321);
    let mut b = Xoshiro256pp::seed_from_u64(7_654_321);
    for _ in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // The float/bounded views are pure functions of the same stream.
    let mut c = Xoshiro256pp::seed_from_u64(7_654_321);
    let mut d = Xoshiro256pp::seed_from_u64(7_654_321);
    for _ in 0..1_000 {
        assert_eq!(c.next_f64().to_bits(), d.next_f64().to_bits());
        assert_eq!(c.next_below(1_000_003), d.next_below(1_000_003));
    }
}

#[test]
fn forked_children_are_deterministic_and_distinct() {
    let mut parent_a = Xoshiro256pp::seed_from_u64(99);
    let mut parent_b = Xoshiro256pp::seed_from_u64(99);
    let mut child_a = parent_a.fork();
    let mut child_b = parent_b.fork();
    for _ in 0..1_000 {
        assert_eq!(child_a.next_u64(), child_b.next_u64());
    }
    // The child stream must not mirror the parent stream.
    let mut parent = Xoshiro256pp::seed_from_u64(99);
    let mut child = parent.fork();
    let parent_next = parent.next_u64();
    let child_next = child.next_u64();
    assert_ne!(parent_next, child_next);
}

#[test]
fn clone_detaches_state() {
    let mut original = Xoshiro256pp::seed_from_u64(5);
    let mut snapshot = original.clone();
    let first_run: Vec<u64> = (0..16).map(|_| original.next_u64()).collect();
    let second_run: Vec<u64> = (0..16).map(|_| snapshot.next_u64()).collect();
    assert_eq!(first_run, second_run, "a clone must replay the same stream");
}
