//! Minimal table builder for experiment output.
//!
//! The experiment binaries print each figure/table of the paper as a
//! markdown table on stdout and optionally as CSV, so runs can be diffed and
//! pasted into `EXPERIMENTS.md` directly.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row length must match the header length.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building a row out of display values.
    pub fn push_row<I, T>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = T>,
        T: ToString,
    {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        self.row(&row)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
        println!();
    }
}

/// Formats a float with 2 decimal places — the precision the paper reports.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimal places (for AUC scores).
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["333", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a "));
        assert!(md.contains("| ---"));
        assert!(md.contains("| 333 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["x", "y"]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn row_arity_mismatch_panics() {
        let mut t = Table::new("", &["only one"]);
        t.push_row(["a", "b"]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt2(1.005), "1.00"); // f64 rounding of 1.005 is 1.00
        assert_eq!(fmt4(0.87654), "0.8765");
    }
}
