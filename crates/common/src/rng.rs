//! Deterministic pseudo-random number generators.
//!
//! The workspace uses its own small PRNGs instead of the `rand` crate so that
//! every experiment is bit-for-bit reproducible from a `u64` seed across
//! releases, and so that core algorithms (MCMC sampling, LDP coin flips) can
//! be unit-tested against exact sequences.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Used directly for seeding and for cheap one-off draws. This is the
/// recommended seeder for xoshiro-family generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator for all stochastic components.
///
/// Fast, passes BigCrush, and has a 256-bit state seeded via [`SplitMix64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator whose state is derived from `seed` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Derives an independent child generator; used to give each device or
    /// each experiment repetition its own stream.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose requires a non-empty slice");
        &xs[self.index(xs.len())]
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n) via partial
    /// Fisher–Yates; the result order is random.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from a pool of {n}");
        // For small k relative to n, Floyd's algorithm avoids O(n) setup.
        if k * 8 < n {
            // Membership-only set, but BTreeSet regardless: the determinism
            // contract bans HashSet from non-test code wholesale.
            let mut chosen = std::collections::BTreeSet::new();
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.index(j + 1);
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            out
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.index(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        }
    }
}

/// PCG32 — a compact generator kept for protocol transcripts where a small
/// state is convenient (e.g. one per simulated crypto party).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut pcg = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        pcg.next_u32();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.next_u32();
        pcg
    }

    /// Returns the next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C source.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_and_forks_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);

        let mut parent = Xoshiro256pp::seed_from_u64(42);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_stays_below_bound_and_covers_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean} too far from 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for &(n, k) in &[(10usize, 10usize), (1000, 5), (50, 25), (1, 1), (8, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::BTreeSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn pcg32_streams_differ() {
        let mut a = Pcg32::new(99, 1);
        let mut b = Pcg32::new(99, 2);
        let va: Vec<u32> = (0..4).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..4).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    #[should_panic]
    fn next_below_zero_bound_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        rng.next_below(0);
    }
}
