//! Shared infrastructure for the Lumos workspace.
//!
//! This crate deliberately has no external dependencies. It provides:
//!
//! * [`rng`] — a deterministic, seedable xoshiro256++ pseudo-random number
//!   generator. Every stochastic component in the workspace (graph
//!   generation, LDP noise, MCMC sampling, weight initialization) draws from
//!   this generator so that experiments are exactly reproducible from a seed.
//! * [`dist`] — samplers for the distributions the paper's evaluation needs:
//!   normal (Box–Muller), discrete power laws (the source of degree
//!   heterogeneity, Definition 3 in the paper), Bernoulli and categorical.
//! * [`stats`] — online moments, quantiles, histograms and empirical CDFs
//!   used to reproduce Figure 7 (workload CDF) and summary statistics.
//! * [`table`] — a small markdown/CSV table builder used by the experiment
//!   harness to print the same rows/series the paper reports.
//! * [`timer`] — wall-clock timing helpers for Figure 8 (training time).

#![forbid(unsafe_code)]
pub mod dist;
pub mod rng;
pub mod stats;
pub mod table;
pub mod timer;

pub use rng::{Pcg32, SplitMix64, Xoshiro256pp};
pub use stats::{Ecdf, Histogram, OnlineStats};
pub use table::Table;
pub use timer::Stopwatch;
