//! Wall-clock timing for the system-cost experiments (Figure 8b).

use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating elapsed wall-clock time.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Option<Instant>,
    accumulated: Duration,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self {
            started: None,
            accumulated: Duration::ZERO,
        }
    }

    /// Creates and immediately starts a stopwatch.
    pub fn started() -> Self {
        let mut sw = Self::new();
        sw.start();
        sw
    }

    /// Starts (or restarts) timing; a no-op if already running.
    #[allow(clippy::disallowed_methods)] // mirrored lumos-lint waiver below
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now()); // lumos-lint: allow(wallclock-time) — this module IS the audited wall-clock meter (Fig. 8b); results feed wall_secs fields only, never seeded state
        }
    }

    /// Stops timing and folds the elapsed span into the accumulator.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the in-flight span if running).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Accumulated time in fractional seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets to zero and stops.
    pub fn reset(&mut self) {
        self.started = None;
        self.accumulated = Duration::ZERO;
    }
}

/// Times a closure, returning its result and the elapsed seconds.
#[allow(clippy::disallowed_methods)] // mirrored lumos-lint waiver below
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now(); // lumos-lint: allow(wallclock-time) — audited metering helper; measured spans are reported, never fed back into simulation state
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.secs();
        assert!(first >= 0.004, "first span {first}");
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.secs() > first, "time must accumulate");
    }

    #[test]
    fn reset_zeroes() {
        let mut sw = Stopwatch::started();
        std::thread::sleep(Duration::from_millis(2));
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn time_it_returns_value_and_duration() {
        let (v, secs) = time_it(|| {
            std::thread::sleep(Duration::from_millis(3));
            42
        });
        assert_eq!(v, 42);
        assert!(secs >= 0.002);
    }

    #[test]
    fn double_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        sw.stop();
        assert!(sw.secs() > 0.0);
    }
}
