//! Probability distributions used across the workspace.
//!
//! The paper's setting hinges on *degree heterogeneity* (Definition 3): the
//! heavy-tailed degree distribution of real social graphs. [`PowerLaw`]
//! provides the discrete power-law sampler behind the synthetic Facebook-like
//! and LastFM-like graphs; [`Normal`] supplies feature noise and the Gaussian
//! mechanism; [`Categorical`] drives label assignment.

use crate::rng::Xoshiro256pp;

/// Normal distribution sampled via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    /// Panics if `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        Self { mean, std }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> f64 {
        // Box–Muller; u1 is kept away from zero so ln(u1) is finite.
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std * r * theta.cos()
    }

    /// Fills a buffer with samples.
    pub fn sample_into(&self, rng: &mut Xoshiro256pp, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.sample(rng);
        }
    }
}

/// Discrete bounded power law on `{min, .., max}` with `P(k) ∝ k^{-alpha}`.
///
/// This is the degree model for the synthetic social graphs: real-world
/// degree distributions follow power laws (Clauset et al., cited as [32] in
/// the paper), which is exactly what creates the straggler problem the tree
/// trimmer solves.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    min: u64,
    /// Cumulative distribution table over `min..=max` for inverse sampling.
    cdf: Vec<f64>,
}

impl PowerLaw {
    /// Creates a bounded discrete power law.
    ///
    /// # Panics
    /// Panics if `min == 0`, `min > max`, or `alpha` is non-finite.
    pub fn new(min: u64, max: u64, alpha: f64) -> Self {
        assert!(min > 0, "power law support must start at k >= 1");
        assert!(min <= max, "min must be <= max");
        assert!(alpha.is_finite(), "alpha must be finite");
        let n = (max - min + 1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in min..=max {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point rounding at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { min, cdf }
    }

    /// Draws one sample by inverse-CDF binary search.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> u64 {
        let u = rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        self.min + idx.min(self.cdf.len() - 1) as u64
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            let p = c - prev;
            prev = c;
            mean += p * (self.min + i as u64) as f64;
        }
        mean
    }
}

/// Categorical distribution over `0..weights.len()`.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has zero categories (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(12345)
    }

    #[test]
    fn normal_moments_match() {
        let mut r = rng();
        let d = Normal::new(2.0, 3.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut r = rng();
        let d = Normal::new(5.0, 0.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut r = rng();
        let d = PowerLaw::new(2, 150, 2.5);
        for _ in 0..10_000 {
            let k = d.sample(&mut r);
            assert!((2..=150).contains(&k));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        // A power law with alpha=2.2 should put far more mass on small
        // degrees than large ones, but the tail should still be populated.
        let mut r = rng();
        let d = PowerLaw::new(1, 200, 2.2);
        let n = 100_000;
        let mut small = 0usize;
        let mut large = 0usize;
        for _ in 0..n {
            let k = d.sample(&mut r);
            if k <= 3 {
                small += 1;
            }
            if k >= 50 {
                large += 1;
            }
        }
        assert!(small > n / 2, "most mass at the head: {small}");
        assert!(large > 0, "tail should be reachable");
        assert!(small > large * 20, "head must dominate tail");
    }

    #[test]
    fn power_law_mean_matches_empirical() {
        let mut r = rng();
        let d = PowerLaw::new(1, 100, 2.0);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!(
            (emp - d.mean()).abs() < 0.05,
            "emp {emp} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut r = rng();
        let d = Categorical::new(&[1.0, 2.0, 7.0]);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        let p2 = counts[2] as f64 / n as f64;
        assert!((p2 - 0.7).abs() < 0.01, "p2 {p2}");
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - 0.1).abs() < 0.01, "p0 {p0}");
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn power_law_rejects_zero_min() {
        PowerLaw::new(0, 10, 2.0);
    }
}
