//! Statistics helpers for experiment reporting.
//!
//! [`Ecdf`] reproduces the empirical CDFs of Figure 7 (workload with and
//! without tree trimming); [`OnlineStats`] and [`Histogram`] back the summary
//! numbers quoted in the paper's evaluation text.

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation in the slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Empirical cumulative distribution function over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF requires a non-empty sample");
        assert!(sample.iter().all(|x| !x.is_nan()), "ECDF rejects NaN");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self { sorted: sample }
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1);
        self.sorted[rank.min(self.sorted.len()) - 1]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Evaluates the CDF on an evenly spaced grid of `points` x-values from
    /// min to max; returns `(x, P(X<=x))` pairs. This is the series plotted
    /// in Figure 7.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "series needs at least 2 points");
        let (lo, hi) = (self.min(), self.max());
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram requires lo < hi");
        Self {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation; values outside the range are clamped to the
    /// first/last bin.
    pub fn push(&mut self, x: f64) {
        let raw = ((x - self.lo) / self.width).floor();
        let idx = (raw.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of mass in bin `i`.
    pub fn frac(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

/// Mean of a slice (0 if empty). Convenience for reporting code.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Relative change `(new - old) / old` in percent, the form the paper uses
/// for statements like "39.48% accuracy increase".
pub fn relative_change_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        s.extend(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn ecdf_eval_is_monotone_and_bounded() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(5.0), 1.0);
        assert!((e.eval(2.0) - 0.6).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..60 {
            let x = i as f64 * 0.1;
            let v = e.eval(x);
            assert!(v >= prev, "CDF must be monotone");
            prev = v;
        }
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn ecdf_series_spans_range() {
        let e = Ecdf::new(vec![0.0, 10.0, 20.0]);
        let s = e.series(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[4].0, 20.0);
        assert_eq!(s[4].1, 1.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 9.9, 100.0, -3.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 3); // 0.5, 1.5, clamped -3.0
        assert_eq!(h.counts()[4], 2); // 9.9, clamped 100.0
        assert!((h.frac(0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn relative_change_matches_paper_convention() {
        assert!((relative_change_pct(50.0, 69.74) - 39.48).abs() < 1e-9);
    }
}
